"""Figure 10: TGI vs NNI as a function of reference-point density.

The paper controls the density ρ of reference points (points/km²); we
control it through the archive trip count and report the observed mean
density alongside.  Expected shape (paper): both methods gain accuracy
with density; NNI is competitive at low density while TGI scales better —
its accuracy rises faster and its running time stays flat while NNI's
recursion cost climbs.
"""

import numpy as np

from repro.core.reference import ReferenceSearch
from repro.core.system import HRIS, HRISConfig, HRISMatcher
from repro.eval.harness import (
    ExperimentTable,
    density_family,
    evaluate_accuracy_and_time,
)
from repro.trajectory.resample import downsample

from conftest import emit

TRIP_COUNTS = [10, 30, 60, 120, 240]
INTERVAL_S = 300.0


def observed_density(scenario, interval=INTERVAL_S):
    """Mean reference density over the pairs of the scenario's queries."""
    from repro.core.hybrid import reference_density_per_km2

    hcfg = HRISConfig()
    search = ReferenceSearch(
        scenario.archive, scenario.network, hcfg.reference_config()
    )
    densities = []
    for case in scenario.queries[:4]:
        q = downsample(case.query, interval)
        for i in range(len(q) - 1):
            refs = search.search(q[i], q[i + 1])
            d = reference_density_per_km2(refs)
            if np.isfinite(d):
                densities.append(d)
    return float(np.mean(densities)) if densities else 0.0


def test_fig10_density(benchmark, results_dir):
    acc_table = ExperimentTable("Fig 10a: accuracy vs reference density", "trips")
    time_table = ExperimentTable("Fig 10b: time vs reference density", "trips")
    rho_table = ExperimentTable("Fig 10 (aux): observed density", "trips")

    family = density_family(TRIP_COUNTS)
    for trips in TRIP_COUNTS:
        scenario = family[trips]
        rho = observed_density(scenario)
        rho_table.record(trips, "rho_per_km2", rho)
        for method in ("tgi", "nni"):
            matcher = HRISMatcher(
                HRIS(
                    scenario.network,
                    scenario.archive,
                    HRISConfig(local_method=method),
                )
            )
            acc, secs = evaluate_accuracy_and_time(
                scenario.network, matcher, scenario.queries, INTERVAL_S
            )
            acc_table.record(trips, method.upper(), acc)
            time_table.record(trips, method.upper(), secs)

    emit(acc_table, results_dir, "fig10a")
    emit(time_table, results_dir, "fig10b")
    emit(rho_table, results_dir, "fig10_density")

    # Both methods must benefit from more history.
    for method in ("TGI", "NNI"):
        series = acc_table._series[method]
        assert series[TRIP_COUNTS[-1]] >= series[TRIP_COUNTS[0]] - 0.05

    # Kernel: one TGI-mode inference at the densest setting.
    scenario = family[TRIP_COUNTS[-1]]
    matcher = HRISMatcher(
        HRIS(scenario.network, scenario.archive, HRISConfig(local_method="tgi"))
    )
    query = downsample(scenario.queries[0].query, INTERVAL_S)
    benchmark.pedantic(lambda: matcher.match(query), rounds=1, iterations=1)
