"""Table II: the default parameter set of the system.

Prints the reproduction's defaults next to the paper's and asserts they
match where the parameter has a direct counterpart.
"""

from repro.core.system import HRISConfig

from conftest import emit
from repro.eval.harness import ExperimentTable

PAPER_DEFAULTS = {
    "phi (m)": 500.0,
    "tau (pts/km^2)": 200.0,
    "lambda": 4,
    "k1": 5,
    "k2": 4,
    "k3": 5,
    "alpha (m)": 500.0,
    "beta": 1.5,
}


def test_table2_defaults(benchmark, results_dir):
    cfg = HRISConfig()
    ours = {
        "phi (m)": cfg.phi,
        "tau (pts/km^2)": cfg.tau,
        "lambda": cfg.lam,
        "k1": cfg.k1,
        "k2": cfg.k2,
        "k3": cfg.k3,
        "alpha (m)": cfg.alpha,
        "beta": cfg.beta,
    }
    table = ExperimentTable("Table II: default parameters", "parameter")
    for name, value in PAPER_DEFAULTS.items():
        table.record(name, "paper", float(value))
        table.record(name, "ours", float(ours[name]))
    emit(table, results_dir, "table2")

    assert ours == PAPER_DEFAULTS

    benchmark.pedantic(HRISConfig, rounds=10, iterations=1)
