"""Ablation study: the design choices DESIGN.md §5 calls out.

Not a paper figure — a reproduction-quality check.  Each ablation disables
one mechanism of the full system and measures the accuracy impact on the
standard scenario at a 7-minute sampling interval (the regime where the
mechanisms matter most):

* ``no splicing``        — Definition 7 references off (Sec. III-A.2),
* ``no augmentation``    — traverse-graph augmentation off (Alg. 1 line 9),
* ``no reduction``       — traverse-graph reduction off (Alg. 1 line 10),
* ``raw entropy``        — the literal eq. (1) without normalisation,
* ``no shortest cand.``  — endpoint shortest path not offered per stage,
* ``no sharing``         — NNI transit-graph sharing off (affects cost
                           only; accuracy should be unchanged-ish).
"""

from repro.core.system import HRIS, HRISConfig, HRISMatcher
from repro.eval.harness import ExperimentTable, evaluate_accuracy_and_time

from conftest import emit

INTERVAL_S = 420.0

ABLATIONS = {
    "full system": {},
    "no splicing": {"enable_splicing": False},
    "no augmentation": {"use_augmentation": False},
    "no reduction": {"use_reduction": False},
    "raw entropy": {"normalize_entropy": False},
    "no shortest cand.": {"include_shortest_candidate": False},
    "no sharing": {"share_substructures": False},
}


def test_ablations(benchmark, scenario_std, results_dir):
    sc = scenario_std
    table = ExperimentTable(
        "Ablations: accuracy / seconds at a 7-minute interval", "variant"
    )
    results = {}
    for name, overrides in ABLATIONS.items():
        matcher = HRISMatcher(
            HRIS(sc.network, sc.archive, HRISConfig(**overrides))
        )
        acc, secs = evaluate_accuracy_and_time(
            sc.network, matcher, sc.queries, INTERVAL_S
        )
        results[name] = acc
        table.record(name, "accuracy", acc)
        table.record(name, "seconds", secs)
    emit(table, results_dir, "ablations")

    full = results["full system"]
    # Turning off entropy normalisation (the documented fix for the raw
    # formula's length bias) must hurt.
    assert results["raw entropy"] < full - 0.02
    # No single ablation should *improve* on the full system by much.
    for name, acc in results.items():
        assert acc <= full + 0.05, f"{name} beats the full system: {acc} > {full}"

    matcher = HRISMatcher(HRIS(sc.network, sc.archive, HRISConfig()))
    from repro.trajectory.resample import downsample

    query = downsample(sc.queries[0].query, INTERVAL_S)
    benchmark.pedantic(lambda: matcher.match(query), rounds=3, iterations=1)
