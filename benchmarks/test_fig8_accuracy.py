"""Figure 8: accuracy comparison of HRIS against the three competitors.

* Fig. 8a — accuracy vs sampling interval (3–15 min).
* Fig. 8b — accuracy vs query length (10–30 km).

Expected shape (paper): HRIS highest everywhere; ST-matching/IVMM
reasonable at 3–7 min then collapsing as the shortest-path assumption
breaks; HRIS still >60 % at a 15-minute interval.
"""

import pytest

from repro.core.system import HRIS, HRISConfig, HRISMatcher
from repro.datasets.synthetic import build_length_scenario
from repro.eval.harness import ExperimentTable, evaluate_accuracy
from repro.mapmatching import IncrementalMatcher, IVMMMatcher, STMatcher

from conftest import emit

INTERVALS_S = [180.0, 300.0, 420.0, 600.0, 900.0]
LENGTHS_M = [10_000.0, 15_000.0, 20_000.0, 25_000.0, 30_000.0]


def matcher_suite(network, archive):
    return {
        "HRIS": HRISMatcher(HRIS(network, archive, HRISConfig())),
        "IVMM": IVMMMatcher(network),
        "ST-matching": STMatcher(network),
        "incremental": IncrementalMatcher(network),
    }


def test_fig8a_sampling_rate(benchmark, scenario_std, results_dir):
    """Accuracy vs sampling interval for the four methods."""
    sc = scenario_std
    matchers = matcher_suite(sc.network, sc.archive)
    table = ExperimentTable("Fig 8a: accuracy vs sampling interval", "interval_min")
    for interval in INTERVALS_S:
        for name, matcher in matchers.items():
            acc = evaluate_accuracy(sc.network, matcher, sc.queries, interval)
            table.record(int(interval // 60), name, acc)
    emit(table, results_dir, "fig8a")

    # Reproduction targets: HRIS wins at every interval; HRIS stays usable
    # at 15 min while the baselines collapse.
    for interval in INTERVALS_S:
        x = int(interval // 60)
        hris = table._series["HRIS"][x]
        for name in ("IVMM", "ST-matching", "incremental"):
            assert hris >= table._series[name][x] - 0.02
    assert table._series["HRIS"][15] > 0.5
    assert table._series["ST-matching"][15] < 0.5

    # Benchmark kernel: one full HRIS inference at the default 3-minute rate.
    hris_matcher = matchers["HRIS"]
    from repro.trajectory.resample import downsample

    query = downsample(sc.queries[0].query, 180.0)
    benchmark.pedantic(lambda: hris_matcher.match(query), rounds=3, iterations=1)


@pytest.fixture(scope="module")
def length_scenario():
    # 44x44 grid at 500 m blocks (~21 km extent): the gap between 3-minute
    # samples spans several blocks, recreating the ambiguity regime of the
    # paper's Beijing network for long queries.
    from repro.roadnet.generators import GridCityConfig

    return build_length_scenario(
        LENGTHS_M,
        queries_per_length=4,
        ods_per_length=2,
        trips_per_od=14,
        grid=GridCityConfig(
            nx=44, ny=44, spacing=500.0, arterial_every=5, drop_fraction=0.05
        ),
        seed=101,
    )


def test_fig8b_query_length(benchmark, length_scenario, results_dir):
    """Accuracy vs query length at the default 3-minute interval."""
    ls = length_scenario
    matchers = matcher_suite(ls.network, ls.archive)
    table = ExperimentTable("Fig 8b: accuracy vs query length", "length_km")
    for target, cases in ls.cases_by_length.items():
        for name, matcher in matchers.items():
            acc = evaluate_accuracy(ls.network, matcher, cases, 180.0)
            table.record(int(target // 1000), name, acc)
    emit(table, results_dir, "fig8b")

    # HRIS leads at most lengths and decays only mildly with length, while
    # the baselines lose accuracy as queries get longer.
    wins = 0
    for target in ls.cases_by_length:
        x = int(target // 1000)
        hris = table._series["HRIS"][x]
        if all(
            hris >= table._series[n][x] - 0.02
            for n in ("IVMM", "ST-matching", "incremental")
        ):
            wins += 1
    assert wins >= len(LENGTHS_M) - 2
    assert table._series["HRIS"][30] > 0.8

    hris_matcher = matchers["HRIS"]
    from repro.trajectory.resample import downsample

    case = next(iter(ls.cases_by_length.values()))[0]
    query = downsample(case.query, 180.0)
    benchmark.pedantic(lambda: hris_matcher.match(query), rounds=1, iterations=1)
