"""Figure 12: effect of k1 (K of the K-shortest-path search in TGI).

* Fig. 12a — accuracy vs k1 at sampling intervals of 3/9/15 minutes.
* Fig. 12b — running time vs k1, with vs without graph reduction.

Expected shape (paper): accuracy saturates for small k1 (4–8 suffices);
running time grows with k1; the reduction optimisation matters more at
larger k1.
"""

import pytest

from repro.core.system import HRIS, HRISConfig, HRISMatcher
from repro.eval.harness import (
    ExperimentTable,
    evaluate_accuracy_and_time,
    sparse_scenario,
)
from repro.trajectory.resample import downsample

from conftest import emit

K1S = [1, 2, 4, 8, 12]
INTERVALS_S = [180.0, 540.0, 900.0]
TIMING_INTERVAL_S = 540.0


@pytest.fixture(scope="module")
def scenario_sparse():
    return sparse_scenario()


def test_fig12a_accuracy(benchmark, scenario_sparse, results_dir):
    sc = scenario_sparse
    table = ExperimentTable("Fig 12a: accuracy vs k1", "k1")
    for k1 in K1S:
        matcher = HRISMatcher(
            HRIS(sc.network, sc.archive, HRISConfig(k1=k1, local_method="tgi"))
        )
        for interval in INTERVALS_S:
            label = f"SR={int(interval // 60)}min"
            acc, __ = evaluate_accuracy_and_time(
                sc.network, matcher, sc.queries, interval
            )
            table.record(k1, label, acc)
    emit(table, results_dir, "fig12a")

    # A moderate k1 suffices: k1=4 reaches within a few points of k1=12.
    for interval in INTERVALS_S:
        label = f"SR={int(interval // 60)}min"
        series = table._series[label]
        assert series[4] >= series[12] - 0.08

    matcher = HRISMatcher(
        HRIS(sc.network, sc.archive, HRISConfig(k1=4, local_method="tgi"))
    )
    query = downsample(sc.queries[0].query, 540.0)
    benchmark.pedantic(lambda: matcher.match(query), rounds=3, iterations=1)


def test_fig12b_time(benchmark, scenario_sparse, results_dir):
    sc = scenario_sparse
    table = ExperimentTable(
        "Fig 12b: time vs k1, with/without reduction", "k1"
    )
    for k1 in K1S:
        for reduction, label in ((True, "with reduction"), (False, "no reduction")):
            matcher = HRISMatcher(
                HRIS(
                    sc.network,
                    sc.archive,
                    HRISConfig(k1=k1, local_method="tgi", use_reduction=reduction),
                )
            )
            __, secs = evaluate_accuracy_and_time(
                sc.network, matcher, sc.queries, TIMING_INTERVAL_S
            )
            table.record(k1, label, secs)
    emit(table, results_dir, "fig12b")

    # Running time grows with k1.
    for label in ("with reduction", "no reduction"):
        series = table._series[label]
        assert series[12] >= series[1]

    matcher = HRISMatcher(
        HRIS(sc.network, sc.archive, HRISConfig(k1=12, local_method="tgi"))
    )
    query = downsample(sc.queries[0].query, TIMING_INTERVAL_S)
    benchmark.pedantic(lambda: matcher.match(query), rounds=3, iterations=1)
