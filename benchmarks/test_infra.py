"""Infrastructure micro-benchmarks.

Not paper figures — performance tracking for the substrates every
experiment stands on.  pytest-benchmark records proper statistics here
(many rounds), unlike the figure benchmarks which only need one
representative kernel.
"""

import numpy as np
import pytest

from repro.core.reference import ReferenceSearch, ReferenceSearchConfig
from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.roadnet.generators import GridCityConfig, grid_city
from repro.roadnet.ksp import yen_k_shortest_paths
from repro.roadnet.shortest_path import dijkstra
from repro.spatial.rtree import RTree


@pytest.fixture(scope="module")
def big_network():
    return grid_city(GridCityConfig(nx=30, ny=30), np.random.default_rng(3))


@pytest.fixture(scope="module")
def points_50k():
    rng = np.random.default_rng(5)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, 20_000, size=(50_000, 2))]


def test_rtree_bulk_load_50k(benchmark, points_50k):
    def build():
        return RTree.bulk_load(
            ((BBox.from_point(p), i) for i, p in enumerate(points_50k)),
            max_entries=32,
        )

    tree = benchmark(build)
    assert len(tree) == 50_000


def test_rtree_radius_query(benchmark, points_50k):
    tree = RTree.bulk_load(
        ((BBox.from_point(p), i) for i, p in enumerate(points_50k)), max_entries=32
    )
    center = Point(10_000.0, 10_000.0)

    result = benchmark(lambda: tree.search_radius(center, 500.0))
    assert result  # the uniform cloud guarantees hits


def test_rtree_knn(benchmark, points_50k):
    tree = RTree.bulk_load(
        ((BBox.from_point(p), i) for i, p in enumerate(points_50k)), max_entries=32
    )
    center = Point(10_000.0, 10_000.0)

    result = benchmark(lambda: tree.nearest(center, 10))
    assert len(result) == 10


def test_dijkstra_900_nodes(benchmark, big_network):
    d, path = benchmark(lambda: dijkstra(big_network, 0, 899))
    assert path


def test_yen_k5_on_network(benchmark, big_network):
    def adjacency(node):
        return (
            (big_network.segment(s).end, big_network.segment(s).length)
            for s in big_network.out_segments(node)
        )

    paths = benchmark.pedantic(
        lambda: yen_k_shortest_paths(adjacency, 0, 464, 5), rounds=3, iterations=1
    )
    assert len(paths) == 5


def test_reference_search(benchmark, scenario_std):
    sc = scenario_std
    search = ReferenceSearch(
        sc.archive, sc.network, ReferenceSearchConfig(phi=500.0)
    )
    q = sc.queries[0].query
    qi, qi1 = q[0], q[len(q) - 1]

    refs = benchmark(lambda: search.search(qi, qi1))
    assert isinstance(refs, list)
