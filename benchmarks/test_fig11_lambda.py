"""Figure 11: effect of λ (the hop-neighborhood radius in TGI).

* Fig. 11a — TGI accuracy vs λ at sampling intervals of 3/9/15 minutes.
* Fig. 11b — TGI running time with vs without graph reduction.

Expected shape (paper): accuracy climbs with λ (sparser queries need a
larger λ to keep the traverse graph connected) and peaks; the reduction
optimisation costs more than it saves at tiny λ but wins as λ — and with
it the number of redundant links — grows.
"""

import pytest

from repro.core.system import HRIS, HRISConfig, HRISMatcher
from repro.eval.harness import (
    ExperimentTable,
    evaluate_accuracy_and_time,
    sparse_scenario,
)
from repro.trajectory.resample import downsample

from conftest import emit

LAMBDAS = [1, 2, 4, 6, 8]
INTERVALS_S = [180.0, 540.0, 900.0]
TIMING_INTERVAL_S = 540.0


@pytest.fixture(scope="module")
def scenario_sparse():
    return sparse_scenario()


def test_fig11a_accuracy(benchmark, scenario_sparse, results_dir):
    sc = scenario_sparse
    table = ExperimentTable("Fig 11a: TGI accuracy vs lambda", "lambda")
    for lam in LAMBDAS:
        matcher = HRISMatcher(
            HRIS(sc.network, sc.archive, HRISConfig(lam=lam, local_method="tgi"))
        )
        for interval in INTERVALS_S:
            label = f"SR={int(interval // 60)}min"
            acc, __ = evaluate_accuracy_and_time(
                sc.network, matcher, sc.queries, interval
            )
            table.record(lam, label, acc)
    emit(table, results_dir, "fig11a")

    # λ=1 (no links at all beyond augmentation) must be clearly worse than
    # the default λ=4 at every interval.
    for interval in INTERVALS_S:
        label = f"SR={int(interval // 60)}min"
        series = table._series[label]
        assert series[4] > series[1]

    matcher = HRISMatcher(
        HRIS(sc.network, sc.archive, HRISConfig(lam=4, local_method="tgi"))
    )
    query = downsample(sc.queries[0].query, 540.0)
    benchmark.pedantic(lambda: matcher.match(query), rounds=3, iterations=1)


def test_fig11b_reduction_time(benchmark, scenario_sparse, results_dir):
    sc = scenario_sparse
    table = ExperimentTable(
        "Fig 11b: TGI time vs lambda, with/without reduction", "lambda"
    )
    for lam in LAMBDAS:
        for reduction, label in ((True, "with reduction"), (False, "no reduction")):
            matcher = HRISMatcher(
                HRIS(
                    sc.network,
                    sc.archive,
                    HRISConfig(
                        lam=lam, local_method="tgi", use_reduction=reduction
                    ),
                )
            )
            __, secs = evaluate_accuracy_and_time(
                sc.network, matcher, sc.queries, TIMING_INTERVAL_S
            )
            table.record(lam, label, secs)
    emit(table, results_dir, "fig11b")

    # Time grows with λ in both variants.
    for label in ("with reduction", "no reduction"):
        series = table._series[label]
        assert series[LAMBDAS[-1]] >= series[LAMBDAS[0]] * 0.8

    matcher = HRISMatcher(
        HRIS(
            sc.network,
            sc.archive,
            HRISConfig(lam=8, local_method="tgi", use_reduction=True),
        )
    )
    query = downsample(sc.queries[0].query, TIMING_INTERVAL_S)
    benchmark.pedantic(lambda: matcher.match(query), rounds=3, iterations=1)
