"""Figure 13: effect of k2 (the constrained-kNN width in NNI).

* Fig. 13a — accuracy vs k2 at sampling intervals of 3/9/15 minutes.
* Fig. 13b — running time vs k2, with vs without substructure sharing.

Expected shape (paper): larger intervals need a larger k2 to reach their
best accuracy; time grows with k2 (wider recursion trees); sharing the
common substructures (the transit graph) cuts the kNN-search count and the
running time.
"""

import pytest

from repro.core.nni import NearestNeighborInference, NNIConfig
from repro.core.reference import ReferenceSearch
from repro.core.system import HRIS, HRISConfig, HRISMatcher
from repro.eval.harness import (
    ExperimentTable,
    evaluate_accuracy_and_time,
    standard_scenario,
)
from repro.trajectory.resample import downsample

from conftest import emit

K2S = [1, 2, 4, 6, 8]
INTERVALS_S = [180.0, 540.0, 900.0]
TIMING_INTERVAL_S = 540.0


def test_fig13a_accuracy(benchmark, scenario_std, results_dir):
    sc = scenario_std
    table = ExperimentTable("Fig 13a: accuracy vs k2", "k2")
    for k2 in K2S:
        matcher = HRISMatcher(
            HRIS(sc.network, sc.archive, HRISConfig(k2=k2, local_method="nni"))
        )
        for interval in INTERVALS_S:
            label = f"SR={int(interval // 60)}min"
            acc, __ = evaluate_accuracy_and_time(
                sc.network, matcher, sc.queries, interval
            )
            table.record(k2, label, acc)
    emit(table, results_dir, "fig13a")

    # The clear signal: a single-successor walk (k2=1) explores too little
    # and loses to every wider setting at every interval.
    for interval in INTERVALS_S:
        label = f"SR={int(interval // 60)}min"
        series = table._series[label]
        assert series[1] <= max(series[k] for k in K2S if k > 1)

    matcher = HRISMatcher(
        HRIS(sc.network, sc.archive, HRISConfig(k2=4, local_method="nni"))
    )
    query = downsample(sc.queries[0].query, 540.0)
    benchmark.pedantic(lambda: matcher.match(query), rounds=3, iterations=1)


def test_fig13b_sharing_time(benchmark, scenario_std, results_dir):
    sc = scenario_std
    time_table = ExperimentTable(
        "Fig 13b: time vs k2, with/without substructure sharing", "k2"
    )
    knn_table = ExperimentTable(
        "Fig 13b (aux): kNN searches per pair, with/without sharing", "k2"
    )
    search = ReferenceSearch(
        sc.archive, sc.network, HRISConfig().reference_config()
    )
    # One representative query, its per-pair references precomputed.
    query = downsample(sc.queries[0].query, TIMING_INTERVAL_S)
    pair_refs = [
        (query[i], query[i + 1], search.search(query[i], query[i + 1]))
        for i in range(len(query) - 1)
    ]

    for k2 in K2S:
        for sharing, label in ((True, "shared"), (False, "unshared")):
            matcher = HRISMatcher(
                HRIS(
                    sc.network,
                    sc.archive,
                    HRISConfig(
                        k2=k2, local_method="nni", share_substructures=sharing
                    ),
                )
            )
            __, secs = evaluate_accuracy_and_time(
                sc.network, matcher, sc.queries, TIMING_INTERVAL_S
            )
            time_table.record(k2, label, secs)

            nni = NearestNeighborInference(
                sc.network,
                NNIConfig(k=k2, share_substructures=sharing),
            )
            searches = 0
            for qi, qi1, refs in pair_refs:
                __, stats = nni.infer(qi.point, qi1.point, refs)
                searches += stats.n_knn_searches
            knn_table.record(k2, label, searches / max(len(pair_refs), 1))
    emit(time_table, results_dir, "fig13b")
    emit(knn_table, results_dir, "fig13b_knn")

    # Sharing cuts the kNN-search count for every k2 >= 2.  (At k2=1 the
    # single memoised successor is usually already on the walk, so the
    # shared mode pays for a fresh search on top of the memoised one.)
    for k2 in K2S:
        if k2 < 2:
            continue
        assert (
            knn_table._series["shared"][k2]
            <= knn_table._series["unshared"][k2] + 1e-9
        )

    matcher = HRISMatcher(
        HRIS(sc.network, sc.archive, HRISConfig(k2=8, local_method="nni"))
    )
    q = downsample(sc.queries[0].query, TIMING_INTERVAL_S)
    benchmark.pedantic(lambda: matcher.match(q), rounds=3, iterations=1)
