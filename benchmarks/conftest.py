"""Shared fixtures for the figure-reproduction benchmarks.

Scenarios are session-scoped: they are deterministic and shared by every
figure that uses the standard world.  Each benchmark prints its figure's
table and saves it under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from pathlib import Path

import pytest

from repro.eval.harness import standard_scenario

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scenario_std():
    """The default evaluation world (14x14 grid, 240 trips, 10 queries)."""
    return standard_scenario(seed=7, n_queries=10)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def emit(table, results_dir: Path, name: str) -> None:
    """Print a figure table and persist it."""
    text = table.format()
    print("\n" + text)
    table.save(results_dir / f"{name}.txt")
