"""Figure 9: effect of the reference search radius φ.

* Fig. 9a — accuracy vs φ at sampling intervals of 3/9/15 minutes.
* Fig. 9b — running time vs φ at the same intervals.

Expected shape (paper): accuracy rises with φ and saturates once enough
references are found (sparser queries need a larger φ); running time grows
with φ because more references flow into the local inference.
"""

import pytest

from repro.core.system import HRIS, HRISConfig, HRISMatcher
from repro.eval.harness import (
    ExperimentTable,
    evaluate_accuracy_and_time,
    sparse_scenario,
)

from conftest import emit

PHIS = [100.0, 300.0, 500.0, 700.0, 900.0]
INTERVALS_S = [180.0, 540.0, 900.0]


@pytest.fixture(scope="module")
def scenario_sparse():
    # φ matters when history is sparse and low-rate: the nearest archive
    # point of a passing trajectory can be hundreds of metres from the
    # query point, so a small radius misses it (Sec. III-A's motivation).
    return sparse_scenario()


def sweep(scenario):
    """One (accuracy, time) measurement per (φ, interval) cell."""
    acc_table = ExperimentTable("Fig 9a: accuracy vs phi", "phi_m")
    time_table = ExperimentTable("Fig 9b: time vs phi", "phi_m")
    for phi in PHIS:
        matcher = HRISMatcher(
            HRIS(scenario.network, scenario.archive, HRISConfig(phi=phi))
        )
        for interval in INTERVALS_S:
            label = f"SR={int(interval // 60)}min"
            acc, secs = evaluate_accuracy_and_time(
                scenario.network, matcher, scenario.queries, interval
            )
            acc_table.record(int(phi), label, acc)
            time_table.record(int(phi), label, secs)
    return acc_table, time_table


def test_fig9a_accuracy(benchmark, scenario_sparse, results_dir):
    acc_table, time_table = sweep(scenario_sparse)
    emit(acc_table, results_dir, "fig9a")
    emit(time_table, results_dir, "fig9b")

    # Accuracy at the default φ=500 must dominate the smallest radius for
    # every interval (more references help), and saturate rather than grow
    # without bound.
    for interval in INTERVALS_S:
        label = f"SR={int(interval // 60)}min"
        series = acc_table._series[label]
        assert series[500] >= series[100] - 0.05
        assert abs(series[900] - series[500]) < 0.15  # saturation band

    # Larger φ costs more time at the highest sampling rate.
    fast = time_table._series["SR=3min"]
    assert fast[700] >= fast[100]

    # Kernel: one inference at the default radius.
    sc = scenario_sparse
    matcher = HRISMatcher(HRIS(sc.network, sc.archive, HRISConfig(phi=500.0)))
    from repro.trajectory.resample import downsample

    query = downsample(sc.queries[0].query, 180.0)
    benchmark.pedantic(lambda: matcher.match(query), rounds=3, iterations=1)
