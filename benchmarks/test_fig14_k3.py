"""Figure 14: effect of k3 (K of the global route inference).

* Fig. 14a — average and maximum accuracy of the top-k3 global routes.
* Fig. 14b — K-GRI (dynamic programming) vs brute-force enumeration time.

Expected shape (paper): the maximum accuracy grows monotonically with k3
(more suggestions can only help) while the average rises a little and then
drops (later suggestions are worse); the dynamic program beats brute force
by orders of magnitude.
"""

import time

import numpy as np
import pytest

from repro.core.kgri import brute_force_global_routes, k_gri
from repro.core.scoring import LocalRoute
from repro.core.system import HRIS, HRISConfig
from repro.eval.harness import ExperimentTable, standard_scenario
from repro.eval.metrics import route_accuracy
from repro.roadnet.generators import manhattan_line
from repro.roadnet.route import Route
from repro.trajectory.resample import downsample

from conftest import emit

K3S = [1, 2, 4, 6, 10]
INTERVAL_S = 300.0


def test_fig14a_accuracy(benchmark, scenario_std, results_dir):
    sc = scenario_std
    hris = HRIS(sc.network, sc.archive, HRISConfig())
    table = ExperimentTable("Fig 14a: top-k3 accuracy", "k3")
    for k3 in K3S:
        avgs = []
        maxs = []
        for case in sc.queries:
            query = downsample(case.query, INTERVAL_S)
            if len(query) < 2:
                continue
            routes = hris.infer_routes(query, k3)
            accs = [
                route_accuracy(sc.network, case.truth, g.route) for g in routes
            ]
            avgs.append(float(np.mean(accs)))
            maxs.append(float(np.max(accs)))
        table.record(k3, "average", float(np.mean(avgs)))
        table.record(k3, "maximum", float(np.mean(maxs)))
    emit(table, results_dir, "fig14a")

    # Max accuracy is monotone in k3; the average eventually drops below it.
    maxima = [table._series["maximum"][k] for k in K3S]
    for a, b in zip(maxima, maxima[1:]):
        assert b >= a - 0.01
    assert table._series["average"][K3S[-1]] <= table._series["maximum"][K3S[-1]]

    query = downsample(sc.queries[0].query, INTERVAL_S)
    benchmark.pedantic(lambda: hris.infer_routes(query, 10), rounds=3, iterations=1)


def synthetic_stages(n_stages=7, routes_per_stage=5, seed=3):
    """Deterministic stages for the DP-vs-brute-force timing comparison."""
    rng = np.random.default_rng(seed)
    line = manhattan_line(n_nodes=2 * n_stages * routes_per_stage + 2, spacing=100.0)
    stages = []
    seg = 0
    for __ in range(n_stages):
        stage = []
        for __r in range(routes_per_stage):
            support = frozenset(
                int(x) for x in rng.choice(40, size=int(rng.integers(1, 8)), replace=False)
            )
            stage.append(
                LocalRoute(
                    route=Route.of([seg]),
                    popularity=float(rng.uniform(0.5, 30.0)),
                    support=support,
                )
            )
            seg += 2
        stages.append(stage)
    return line, stages


def test_fig14b_dp_vs_bruteforce(benchmark, results_dir):
    table = ExperimentTable("Fig 14b: K-GRI vs brute force (seconds)", "k3")
    line, stages = synthetic_stages()

    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    brute_secs = timed(lambda: brute_force_global_routes(line, stages, 10))
    for k3 in K3S:
        dp_secs = timed(lambda: k_gri(line, stages, k3))
        table.record(k3, "K-GRI", dp_secs)
        table.record(k3, "brute force", brute_secs)
    emit(table, results_dir, "fig14b")

    # Correctness cross-check and the orders-of-magnitude claim.
    dp = k_gri(line, stages, 5)
    bf = brute_force_global_routes(line, stages, 5)
    for a, b in zip(dp, bf):
        assert abs(a.log_score - b.log_score) < 1e-9
    slowest_dp = max(table._series["K-GRI"].values())
    assert brute_secs > 20.0 * slowest_dp

    benchmark.pedantic(lambda: k_gri(line, stages, 5), rounds=5, iterations=1)
