#!/usr/bin/env python
"""Throughput benchmark: routing engine + batch inference vs the seed path.

Measures, on the standard evaluation world:

* **seed baseline** — HRIS with every engine feature off (no landmarks,
  zero-size caches), queries inferred one at a time: the code path the
  repository shipped with;
* **engine sequential** — HRIS with the default :class:`EngineConfig`
  (ALT landmarks + bounded shared caches), still one query at a time:
  the single-query latency win;
* **table oracle** — the engine config plus ``transition_oracle="table"``
  and ``bidirectional=True``: matcher transitions served by batched
  many-to-many sweeps and residual pair routing by bidirectional ALT,
  sequential and under a forced 4-worker pool; settled-nodes-per-query
  quantifies the sweep-vs-per-pair reduction;
* **CH engine** — ``shortest_path="ch"`` + ``transition_oracle="ch_buckets"``:
  contraction-hierarchy point-to-point queries (stall-on-demand upward
  searches joined through precomputed buckets) behind the same HRIS
  workload; the contraction and bucket-warming time is reported
  separately so the per-query numbers measure queries, not
  preprocessing;
* **point-to-point** — raw ``ch_shortest_path`` vs ``bidi_astar`` on
  sampled node pairs of the scenario network: distances and paths must
  be bit-identical, and the benchmark **exits non-zero if CH settles
  more nodes than bidirectional ALT**;
* **matcher preprocessing** — the workload the table oracle targets
  head-on: HMM map matching (the Sec. II-B preprocessing step) of long
  drives over a larger grid city, where candidate end nodes rarely
  repeat and the per-pair oracle pays one full Dijkstra table per
  distinct source.  Matched through ``per_pair``, ``table`` and ``ch``
  (bucket many-to-many) engines; outputs must be identical, and the
  settled-node counts expose the many-to-many sweep saving directly;
* **batch** — :meth:`HRIS.infer_routes_batch` over the whole query set
  with the requested worker count (the auto policy forks only on
  multi-core machines), plus the forced-pool time for transparency;
* **sharded archive** — the same sequential workload served by
  :class:`ShardedArchive` instead of the monolithic in-memory backend,
  plus a per-worker emulation: the query set is split into the same
  contiguous chunks the batch pool would hand to each worker, and each
  chunk runs against a fresh sharded archive so the resident tile set
  (points, tiles, approximate index bytes) of every worker is measured;
* **remote archive** — the same sequential workload with the spatial
  tier served by ``--shards`` loopback :class:`ArchiveShardServer`
  processes (the multi-process deployment of ``docs/distributed.md``):
  per-shard resident points plus request-latency percentiles quantify
  what the socket hop costs;
* **replicated archive, degraded** — the same fleet at ``--replication``
  replicas per shard, with one replica process killed halfway through
  the query stream: the failover must be invisible (results stay
  identical to the seed baseline, zero errors surfaced) and the latency
  of the first post-kill query bounds what a replica death costs;
* **shard reference** — the same remote fleet with
  ``reference_mode="shard"``: candidate references are assembled by the
  shards over ``repro-remote-v4`` instead of from the client trip store.
  Per-query wire bytes are metered and must come in strictly below the
  whole-trip-shipping baseline (near-pair queries plus every candidate
  trajectory shipped whole), and the run is repeated on a replicated
  fleet with one replica killed mid-stream
  (``shard_reference_degraded_vs_seed``);
* **durable ingest** — the per-shard write-ahead log: ingest throughput
  and restart (replay) time under each fsync policy (always/interval/
  off), then the two chaos acceptance scenarios — a shard killed
  mid-append recovers from its WAL to bit-identical results after an
  idempotent re-push (``wal_recovery_vs_seed``), and a replica killed,
  mutated past and restarted is repaired by ``log_since``/``apply_log``
  replay from its healthy peer before rejoining the read rotation
  (``replica_catchup_vs_seed``);
* **query gateway** — the ``repro serve`` HTTP tier over loopback: every
  query is replayed through the wire and must match the seed baseline
  bit for bit (``gateway_vs_seed``), then an open-loop load generator
  offers a fixed-QPS arrival schedule and records sustained throughput,
  p50/p90/p99 serving latency, and the 429 shed count.

Every configuration must produce identical top-K routes and scores; the
benchmark verifies this and records the outcome.  Per-configuration
``stats`` blocks are **snapshot deltas** taken around each timed run, so
the counters attribute only that configuration's own work even when an
engine has warmed caches (or built hierarchies) beforehand.  Results are written as
JSON (default: ``BENCH_throughput.json`` at the repository root; smoke
runs write under ``benchmarks/results/`` so CI never clobbers the
committed numbers).

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.archive import convert_archive  # noqa: E402
from repro.core.system import HRIS, HRISConfig  # noqa: E402
from repro.eval.harness import standard_scenario  # noqa: E402
from repro.eval.metrics import route_accuracy  # noqa: E402
from repro.trajectory.resample import downsample  # noqa: E402

SEED_BASELINE = HRISConfig(
    n_landmarks=0,
    route_cache_size=0,
    candidate_cache_size=0,
    support_cache_size=0,
)


def result_keys(results):
    """Comparable identity of a batch of inferences: routes + scores."""
    return [
        [(tuple(g.route.segment_ids), round(g.log_score, 9)) for g in routes]
        for routes in results
    ]


def chunk_queries(queries, workers):
    """The contiguous per-worker chunks the batch pool would dispatch."""
    size = max(1, -(-len(queries) // workers))
    return [queries[i : i + size] for i in range(0, len(queries), size)]


def time_sequential(hris, queries):
    latencies = []
    results = []
    for query in queries:
        t0 = time.perf_counter()
        results.append(hris.infer_routes(query))
        latencies.append(time.perf_counter() - t0)
    return results, latencies


def config_stats(hris, before):
    """Engine counters attributable to one timed run (snapshot delta).

    Each configuration's ``stats`` block must report only its own work:
    snapshotting before the run and reporting the delta keeps the
    per-config cache/settled counters honest even when the engine did
    preparatory work (landmark tables, contraction, bucket warming)
    before the timed region.
    """
    return hris.engine.stats().delta(before).as_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=60, help="query count")
    parser.add_argument("--workers", type=int, default=4, help="batch workers")
    parser.add_argument(
        "--interval", type=float, default=300.0, help="query sampling interval (s)"
    )
    parser.add_argument(
        "--tile-size",
        type=float,
        default=800.0,
        help="tile edge (metres) for the sharded-archive configuration",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="loopback shard servers for the remote-archive configuration",
    )
    parser.add_argument(
        "--replication",
        type=int,
        default=2,
        help="replicas per shard for the degraded-mode configuration",
    )
    parser.add_argument(
        "--qps",
        type=float,
        default=0.0,
        help="offered load for the gateway open-loop phase "
        "(0 = 80%% of measured sequential capacity)",
    )
    parser.add_argument("--out", type=Path, default=None, help="output JSON path")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI; writes under benchmarks/results/",
    )
    args = parser.parse_args(argv)

    n_queries = 8 if args.smoke else args.queries
    out = args.out
    if out is None:
        out = (
            REPO_ROOT / "benchmarks" / "results" / "BENCH_throughput_smoke.json"
            if args.smoke
            else REPO_ROOT / "BENCH_throughput.json"
        )

    print(f"building standard scenario (seed=7, n_queries={n_queries}) ...")
    scenario = standard_scenario(seed=7, n_queries=n_queries)
    cases = []
    for case in scenario.queries:
        query = downsample(case.query, args.interval)
        if len(query) >= 2:
            cases.append((query, case.truth))
    queries = [q for q, __ in cases]
    print(f"{len(queries)} evaluable queries at {args.interval:.0f}s interval")

    # --- seed baseline: engine features off, sequential -------------------
    h_seed = HRIS(scenario.network, scenario.archive, SEED_BASELINE)
    res_seed, lat_seed = time_sequential(h_seed, queries)
    t_seed = sum(lat_seed)
    print(f"seed baseline      sequential: {t_seed:.3f}s")

    # --- engine: landmarks + caches, sequential ---------------------------
    h_engine = HRIS(scenario.network, scenario.archive, HRISConfig())
    engine_before = h_engine.engine.stats()
    res_engine, lat_engine = time_sequential(h_engine, queries)
    t_engine = sum(lat_engine)
    engine_stats = config_stats(h_engine, engine_before)
    print(f"engine             sequential: {t_engine:.3f}s")

    # --- table oracle + bidirectional ALT: batched transitions ------------
    table_cfg = HRISConfig(transition_oracle="table", bidirectional=True)
    h_table = HRIS(scenario.network, scenario.archive, table_cfg)
    table_before = h_table.engine.stats()
    res_table, lat_table = time_sequential(h_table, queries)
    t_table = sum(lat_table)
    table_stats = config_stats(h_table, table_before)
    print(
        f"table oracle       sequential: {t_table:.3f}s  "
        f"settled {table_stats['settled_nodes']:.0f} nodes "
        f"({table_stats['sweeps']:.0f} sweeps, "
        f"{table_stats['fallback_searches']:.0f} fallbacks)"
    )

    h_tb = HRIS(scenario.network, scenario.archive, table_cfg)
    t0 = time.perf_counter()
    res_tb = h_tb.infer_routes_batch(
        queries, workers=args.workers, use_processes=True
    )
    t_tb = time.perf_counter() - t0
    print(f"table oracle batch workers={args.workers} (forced pool): {t_tb:.3f}s")

    # --- contraction hierarchy: CH queries + bucket oracle ----------------
    # Contraction and bucket completion are offline preprocessing (they
    # are what `--ch-cache` persists), so they run — and are reported —
    # outside the timed query region.
    import numpy as np  # noqa: E402

    from repro.roadnet.contraction import ch_shortest_path  # noqa: E402
    from repro.roadnet.shortest_path import SearchStats, bidi_astar  # noqa: E402

    ch_cfg = HRISConfig(shortest_path="ch", transition_oracle="ch_buckets")
    h_ch = HRIS(scenario.network, scenario.archive, ch_cfg)
    t0 = time.perf_counter()
    hierarchy = h_ch.engine.hierarchy  # contraction happens here
    t_ch_contract = time.perf_counter() - t0
    t0 = time.perf_counter()
    hierarchy.prepare_for_fork()  # complete every backward bucket up front
    t_ch_buckets = time.perf_counter() - t0
    ch_before = h_ch.engine.stats()
    res_ch, lat_ch = time_sequential(h_ch, queries)
    t_ch = sum(lat_ch)
    ch_stats = config_stats(h_ch, ch_before)
    print(
        f"ch engine          sequential: {t_ch:.3f}s  "
        f"settled {ch_stats['settled_nodes']:.0f} nodes "
        f"({ch_stats['ch_stalls']:.0f} stalls, "
        f"{ch_stats['sweeps']:.0f} sweeps)  "
        f"[contraction {t_ch_contract:.3f}s + buckets {t_ch_buckets:.3f}s, "
        f"{hierarchy.num_shortcuts} shortcuts]"
    )

    # --- point-to-point: raw CH query vs bidirectional ALT ----------------
    # The acceptance gate for the CH tier: on sampled node pairs the CH
    # query must return bit-identical (distance, path) AND settle no more
    # nodes than bidirectional ALT.  The benchmark exits non-zero if CH
    # settles more.
    n_pairs = 12 if args.smoke else 60
    node_ids = sorted(n.node_id for n in scenario.network.nodes())
    pair_rng = np.random.default_rng(23)
    pairs = [
        (node_ids[int(a)], node_ids[int(b)])
        for a, b in (
            pair_rng.choice(len(node_ids), size=2, replace=False)
            for __ in range(n_pairs)
        )
    ]
    alt_landmarks = h_engine.engine.landmarks
    bidi_st = SearchStats()
    t0 = time.perf_counter()
    res_p2p_bidi = [
        bidi_astar(scenario.network, s, t, landmarks=alt_landmarks, stats=bidi_st)
        for s, t in pairs
    ]
    t_p2p_bidi = time.perf_counter() - t0
    ch_st = SearchStats()
    t0 = time.perf_counter()
    res_p2p_ch = [
        ch_shortest_path(
            scenario.network, hierarchy, s, t, landmarks=alt_landmarks, stats=ch_st
        )
        for s, t in pairs
    ]
    t_p2p_ch = time.perf_counter() - t0
    p2p_identical = res_p2p_ch == res_p2p_bidi
    ch_settles_fewer = ch_st.settled <= bidi_st.settled
    print(
        f"point-to-point ({n_pairs} pairs): "
        f"bidi-ALT {t_p2p_bidi:.3f}s ({bidi_st.settled} settled)  "
        f"ch {t_p2p_ch:.3f}s ({ch_st.settled} settled, {ch_st.stalls} stalls)  "
        f"({'OK' if ch_settles_fewer else 'FAIL: CH settled more than bidi-ALT'})"
    )

    # --- matcher preprocessing: per-pair vs table vs ch buckets -----------
    # The standard scenario's network is small enough that the per-pair
    # oracle's LRU amortises its full tables across queries; map-matching
    # long drives on a larger grid is where distinct sources dominate and
    # the many-to-many sweeps actually change the wall clock.
    from repro.mapmatching.hmm import HMMConfig, HMMMatcher  # noqa: E402
    from repro.roadnet.engine import EngineConfig, RoutingEngine  # noqa: E402
    from repro.roadnet.generators import GridCityConfig, grid_city  # noqa: E402
    from repro.roadnet.shortest_path import (  # noqa: E402
        shortest_route_between_nodes,
    )
    from repro.trajectory.simulate import DriveConfig, drive_route  # noqa: E402

    grid_n = 12 if args.smoke else 20
    n_drives = 3 if args.smoke else 6
    match_city = grid_city(
        GridCityConfig(nx=grid_n, ny=grid_n, drop_fraction=0.08, one_way_fraction=0.1),
        np.random.default_rng(41),
    )
    match_nodes = len(list(match_city.nodes()))
    drive_rng = np.random.default_rng(5)
    match_trajs = []
    for k in range(n_drives):
        a, b = drive_rng.choice(match_nodes, size=2, replace=False)
        __, route = shortest_route_between_nodes(match_city, int(a), int(b))
        if not route.segment_ids:
            continue
        drive = drive_route(
            match_city,
            route,
            traj_id=k,
            config=DriveConfig(sample_interval_s=15.0, gps_sigma_m=12.0),
            rng=np.random.default_rng(100 + k),
        )
        match_trajs.append(drive.trajectory)

    matcher_rows = {}
    matcher_outputs = {}
    for kind, eng_cfg in (
        ("per_pair", EngineConfig()),
        ("table", EngineConfig(transition_oracle="table", bidirectional=True)),
        ("ch", EngineConfig(shortest_path="ch", transition_oracle="ch_buckets")),
    ):
        eng = RoutingEngine(match_city, eng_cfg)
        t0 = time.perf_counter()
        eng.hierarchy  # contraction for the ch kind (None for the others)
        t_pre = time.perf_counter() - t0
        matcher = HMMMatcher(match_city, HMMConfig(), engine=eng)
        t0 = time.perf_counter()
        matched = [matcher.match(t) for t in match_trajs]
        t_kind = time.perf_counter() - t0
        eng_st = eng.stats()
        matcher_rows[kind] = {
            "preprocess_s": round(t_pre, 4),
            "total_s": round(t_kind, 4),
            "settled_nodes": eng_st.settled_nodes,
            "sweeps": eng_st.sweeps,
            "fallback_searches": eng_st.fallback_searches,
            "ch_stalls": eng_st.ch_stalls,
        }
        matcher_outputs[kind] = [
            (
                tuple(m.route.segment_ids),
                tuple(
                    None if c is None else c.segment.segment_id for c in m.matched
                ),
            )
            for m in matched
        ]
    t_match_pp = matcher_rows["per_pair"]["total_s"]
    t_match_tb = matcher_rows["table"]["total_s"]
    t_match_ch = matcher_rows["ch"]["total_s"]
    # "Beats" on matcher preprocessing is gated on settled nodes — the
    # metric the table oracle's own win over per-pair is quoted in.  The
    # flat table's per-pop constant is smaller (no shortcut unpacking, no
    # re-accumulation), so its wall clock stays competitive on small
    # grids; the bucket join must do strictly less *search work*.
    matcher_ch_settles_fewer = (
        matcher_rows["ch"]["settled_nodes"] <= matcher_rows["table"]["settled_nodes"]
    )
    print(
        f"matcher preprocessing ({match_nodes}-node grid, "
        f"{sum(len(t) for t in match_trajs)} points): "
        f"per_pair {t_match_pp:.3f}s "
        f"({matcher_rows['per_pair']['settled_nodes']} settled)  "
        f"table {t_match_tb:.3f}s "
        f"({matcher_rows['table']['settled_nodes']} settled)  "
        f"ch {t_match_ch:.3f}s "
        f"({matcher_rows['ch']['settled_nodes']} settled, "
        f"contraction {matcher_rows['ch']['preprocess_s']:.3f}s)  "
        f"({'OK' if matcher_ch_settles_fewer else 'FAIL: ch buckets settled more than the table'})"
    )

    # --- batch: workers=1 then the requested worker count -----------------
    h_b1 = HRIS(scenario.network, scenario.archive, HRISConfig())
    t0 = time.perf_counter()
    res_b1 = h_b1.infer_routes_batch(queries, workers=1)
    t_b1 = time.perf_counter() - t0
    print(f"batch workers=1              : {t_b1:.3f}s")

    h_bn = HRIS(scenario.network, scenario.archive, HRISConfig())
    t0 = time.perf_counter()
    res_bn = h_bn.infer_routes_batch(queries, workers=args.workers)
    t_bn = time.perf_counter() - t0
    print(f"batch workers={args.workers} (auto policy): {t_bn:.3f}s")

    h_bf = HRIS(scenario.network, scenario.archive, HRISConfig())
    t0 = time.perf_counter()
    res_bf = h_bf.infer_routes_batch(
        queries, workers=args.workers, use_processes=True
    )
    t_forced = time.perf_counter() - t0
    print(f"batch workers={args.workers} (forced pool): {t_forced:.3f}s")

    # --- sharded archive: same workload, tiled backend --------------------
    sharded = convert_archive(scenario.archive, "sharded", args.tile_size)
    h_sharded = HRIS(scenario.network, sharded, HRISConfig())
    res_sharded, lat_sharded = time_sequential(h_sharded, queries)
    t_sharded = sum(lat_sharded)
    mono_bytes = scenario.archive.index_nbytes()
    print(
        f"sharded (tile={args.tile_size:.0f}m) sequential: {t_sharded:.3f}s  "
        f"resident {sharded.resident_points}/{sharded.num_points} pts, "
        f"{sharded.resident_tiles}/{sharded.total_tiles} tiles"
    )

    # Per-worker residency: run each pool chunk against its own fresh
    # sharded archive, as a forked worker would, and measure what it
    # actually materialises.
    per_worker = []
    for i, chunk in enumerate(chunk_queries(queries, args.workers)):
        arch = convert_archive(scenario.archive, "sharded", args.tile_size)
        arch.prepare_for_fork()
        h_w = HRIS(scenario.network, arch, HRISConfig())
        for query in chunk:
            h_w.infer_routes(query)
        per_worker.append(
            {
                "worker": i,
                "queries": len(chunk),
                "resident_points": arch.resident_points,
                "resident_tiles": arch.resident_tiles,
                "index_bytes": arch.index_nbytes(),
            }
        )
    resident_fractions = [
        w["resident_points"] / sharded.num_points for w in per_worker
    ]
    print(
        "per-worker resident points: "
        + ", ".join(str(w["resident_points"]) for w in per_worker)
        + f"  (archive total {sharded.num_points})"
    )

    # --- remote archive: spatial tier behind loopback shard servers -------
    from repro.core.remote import ArchiveShardServer  # noqa: E402

    servers = [
        ArchiveShardServer(i, args.shards, args.tile_size).start()
        for i in range(args.shards)
    ]
    addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
    remote = convert_archive(scenario.archive, "remote", args.tile_size, addrs)
    h_remote = HRIS(scenario.network, remote, HRISConfig())
    remote.reset_latencies()  # measure the query phase, not the push
    res_remote, lat_remote = time_sequential(h_remote, queries)
    t_remote = sum(lat_remote)
    rpc = sorted(remote.request_latencies)
    shard_stats = remote.shard_stats()
    remote.close()
    for server in servers:
        server.stop()

    def percentile(sorted_vals, q):
        return sorted_vals[min(len(sorted_vals) - 1, int(q * len(sorted_vals)))]

    print(
        f"remote ({args.shards} shards, tile={args.tile_size:.0f}m) "
        f"sequential: {t_remote:.3f}s  {len(rpc)} requests, "
        f"p50={percentile(rpc, 0.50) * 1e3:.2f}ms "
        f"p99={percentile(rpc, 0.99) * 1e3:.2f}ms"
    )

    # --- replicated archive: R replicas/shard, one killed mid-run ---------
    rep_servers = [
        ArchiveShardServer(i, args.shards, args.tile_size, replica_id=r).start()
        for i in range(args.shards)
        for r in range(args.replication)
    ]
    rep_addrs = [f"127.0.0.1:{s.address[1]}" for s in rep_servers]
    replicated = convert_archive(
        scenario.archive, "remote", args.tile_size, rep_addrs, args.replication
    )
    h_rep = HRIS(scenario.network, replicated, HRISConfig())
    replicated.reset_latencies()
    kill_at = max(1, len(queries) // 2)
    res_rep = []
    lat_rep = []
    failover_latency = None
    for qi, query in enumerate(queries):
        if qi == kill_at:
            rep_servers[0].stop()  # replica 0 of shard 0 dies mid-run
        t0 = time.perf_counter()
        res_rep.append(h_rep.infer_routes(query))
        dt = time.perf_counter() - t0
        lat_rep.append(dt)
        if qi == kill_at:
            failover_latency = dt
    t_rep = sum(lat_rep)
    rep_health = replicated.replica_health()
    rep_stats = replicated.backend_stats()
    replicated.close()
    for server in rep_servers:
        server.stop()
    print(
        f"replicated ({args.shards}x{args.replication}, one replica killed at "
        f"query {kill_at}): {t_rep:.3f}s  failovers={rep_stats['failovers']}, "
        f"first post-kill query {failover_latency * 1e3:.1f}ms"
    )

    # --- shard-side reference assembly (reference_mode="shard") -----------
    # Same fleet shape as the remote configuration, but the reference
    # candidates are assembled by the shards (repro-remote-v4) instead of
    # from the client trip store.  The client-side baseline's wire cost is
    # its near-pair range queries plus what a naive remote trip store
    # would ship: every candidate trajectory, whole, as v3 point rows.
    ref_servers = [
        ArchiveShardServer(i, args.shards, args.tile_size).start()
        for i in range(args.shards)
    ]
    ref_addrs = [f"127.0.0.1:{s.address[1]}" for s in ref_servers]
    remote_ref = convert_archive(scenario.archive, "remote", args.tile_size, ref_addrs)

    pulls = []  # unique trajectory ids the local-mode kernel reads, per query
    orig_trajectory = remote_ref.trajectory

    def counting_trajectory(tid):
        pulls[-1].add(tid)
        return orig_trajectory(tid)

    remote_ref.trajectory = counting_trajectory
    h_ref_local = HRIS(scenario.network, remote_ref, HRISConfig())
    res_ref_local = []
    ref_local_lat = []
    ref_local_wire = []
    for query in queries:
        pulls.append(set())
        wire0 = remote_ref.wire_meter.total_bytes
        routes, detail = h_ref_local.infer_routes_with_details(query)
        res_ref_local.append(routes)
        ref_local_lat.append(detail.reference_time_s)
        ref_local_wire.append(remote_ref.wire_meter.total_bytes - wire0)
    remote_ref.trajectory = orig_trajectory

    def whole_trip_frame_bytes(tid):
        """Bytes to ship trajectory ``tid`` whole, as one v3 span frame."""
        rows = [
            [tid, i, o.point.x, o.point.y, o.t]
            for i, o in enumerate(orig_trajectory(tid).points)
        ]
        payload = json.dumps(
            {"spans": [[tid, rows]]}, separators=(",", ":")
        ).encode("utf-8")
        return 4 + len(payload)  # length-prefixed frame

    ref_baseline_wire = [
        near + sum(whole_trip_frame_bytes(tid) for tid in sorted(q_pulls))
        for near, q_pulls in zip(ref_local_wire, pulls)
    ]

    h_ref_shard = HRIS(
        scenario.network, remote_ref, HRISConfig(reference_mode="shard")
    )
    res_ref_shard = []
    ref_shard_lat = []
    ref_shard_wire = []
    for query in queries:
        wire0 = remote_ref.wire_meter.total_bytes
        routes, detail = h_ref_shard.infer_routes_with_details(query)
        res_ref_shard.append(routes)
        ref_shard_lat.append(detail.reference_time_s)
        ref_shard_wire.append(remote_ref.wire_meter.total_bytes - wire0)
    remote_ref.close()
    for server in ref_servers:
        server.stop()

    def mean(vals):
        return sum(vals) / len(vals)

    wire_below_whole_trips = mean(ref_shard_wire) < mean(ref_baseline_wire)
    print(
        f"shard reference ({args.shards} shards): assembly "
        f"{sum(ref_shard_lat):.3f}s vs local {sum(ref_local_lat):.3f}s; "
        f"wire {mean(ref_shard_wire):.0f} B/query vs "
        f"{mean(ref_baseline_wire):.0f} B/query shipping whole trips "
        f"({'OK' if wire_below_whole_trips else 'FAIL: not below baseline'})"
    )

    # Degraded run of the same mode: R replicas/shard, one killed mid-run.
    ref_rep_servers = [
        ArchiveShardServer(i, args.shards, args.tile_size, replica_id=r).start()
        for i in range(args.shards)
        for r in range(args.replication)
    ]
    ref_rep_addrs = [f"127.0.0.1:{s.address[1]}" for s in ref_rep_servers]
    ref_rep = convert_archive(
        scenario.archive, "remote", args.tile_size, ref_rep_addrs, args.replication
    )
    h_ref_rep = HRIS(scenario.network, ref_rep, HRISConfig(reference_mode="shard"))
    res_ref_rep = []
    for qi, query in enumerate(queries):
        if qi == kill_at:
            ref_rep_servers[0].stop()  # replica 0 of shard 0 dies mid-run
        res_ref_rep.append(h_ref_rep.infer_routes(query))
    ref_rep_stats = ref_rep.backend_stats()
    ref_rep.close()
    for server in ref_rep_servers:
        server.stop()
    print(
        f"shard reference degraded ({args.shards}x{args.replication}, one "
        f"replica killed at query {kill_at}): "
        f"failovers={ref_rep_stats['failovers']}, "
        f"{ref_rep_stats['healthy_replicas']}/{ref_rep_stats['total_replicas']} "
        f"replicas healthy"
    )

    # --- durable ingest: fsync policies, crash recovery, log catch-up -----
    # Three sub-phases around the per-shard write-ahead log:
    #   * ingest throughput under each fsync policy, plus the restart
    #     (replay) time the journal costs;
    #   * a shard killed mid-append (CrashAfter: request received, no
    #     reply), restarted from its WAL, idempotently re-pushed — query
    #     results must match the seed bit for bit (wal_recovery_vs_seed);
    #   * a replica killed, mutated past, restarted on the same port and
    #     *repaired* by log_since/apply_log replay from its healthy peer
    #     before returning to rotation (replica_catchup_vs_seed).
    import shutil  # noqa: E402
    import tempfile  # noqa: E402

    from repro.core.chaos import CrashAfter  # noqa: E402
    from repro.core.remote import (  # noqa: E402
        RemoteShardedArchive,
        ShardUnavailableError,
    )

    wal_root = Path(tempfile.mkdtemp(prefix="repro-wal-bench-"))

    def start_wal_fleet(tag, fsync="always", replication=1):
        fleet = [
            ArchiveShardServer(
                i,
                args.shards,
                args.tile_size,
                replica_id=r,
                wal_dir=wal_root / tag / f"shard{i}-r{r}",
                fsync=fsync,
            ).start()
            for i in range(args.shards)
            for r in range(replication)
        ]
        return fleet, [f"127.0.0.1:{s.address[1]}" for s in fleet]

    def wait_wal_closed(server):
        """CrashAfter/stop release the WAL from a helper thread."""
        deadline = time.perf_counter() + 10.0
        while server._wal._fh is not None and time.perf_counter() < deadline:
            time.sleep(0.01)

    total_points = scenario.archive.num_points
    wal_ingest = {}
    for policy in ("always", "interval", "off"):
        fleet, fleet_addrs = start_wal_fleet(f"ingest-{policy}", fsync=policy)
        t0 = time.perf_counter()
        ingest = convert_archive(
            scenario.archive, "remote", args.tile_size, fleet_addrs
        )
        t_ingest = time.perf_counter() - t0
        policy_wal = ingest.backend_stats()["wal"]
        ingest.close()
        unflushed_at_close = sum(s.stop() for s in fleet)
        t0 = time.perf_counter()
        reborn_fleet = [
            ArchiveShardServer(
                i,
                args.shards,
                args.tile_size,
                wal_dir=wal_root / f"ingest-{policy}" / f"shard{i}-r0",
                fsync=policy,
            )
            for i in range(args.shards)
        ]
        t_recover = time.perf_counter() - t0
        recovered_points = sum(s.num_points for s in reborn_fleet)
        for server in reborn_fleet:
            server.start()
            server.stop()
        wal_ingest[policy] = {
            "ingest_s": round(t_ingest, 4),
            "points_per_s": round(total_points / t_ingest, 1),
            "records_appended": policy_wal["records_appended"],
            "fsyncs": policy_wal["fsyncs"],
            "unflushed_at_close": unflushed_at_close,
            "recovery_s": round(t_recover, 4),
            "recovery_complete": recovered_points == total_points,
        }
        print(
            f"wal ingest fsync={policy:8s}: {t_ingest:.3f}s "
            f"({total_points / t_ingest:.0f} pts/s, "
            f"{policy_wal['fsyncs']} fsyncs), recovery {t_recover:.3f}s "
            f"({'OK' if recovered_points == total_points else 'FAIL: lossy'})"
        )

    # Kill-mid-append recovery: identity against the seed baseline.
    wal_servers, wal_addrs = start_wal_fleet("recovery")
    crash_nth = 3
    wal_servers[0].fault_hook = CrashAfter(wal_servers[0], op="insert", nth=crash_nth)
    crash_seen = False
    try:
        convert_archive(scenario.archive, "remote", args.tile_size, wal_addrs)
    except ShardUnavailableError:
        crash_seen = True
    wait_wal_closed(wal_servers[0])
    t0 = time.perf_counter()
    reborn0 = ArchiveShardServer(
        0,
        args.shards,
        args.tile_size,
        wal_dir=wal_root / "recovery" / "shard0-r0",
    ).start()
    t_wal_recover = time.perf_counter() - t0
    recovered_lsn = reborn0._lsn
    wal_addrs[0] = f"127.0.0.1:{reborn0.address[1]}"
    # Idempotent re-push of the whole feed: rows acked pre-crash are
    # already resident and append nothing; only the lost tail journals.
    wal_remote = convert_archive(scenario.archive, "remote", args.tile_size, wal_addrs)
    h_walrec = HRIS(scenario.network, wal_remote, HRISConfig())
    res_walrec, __ = time_sequential(h_walrec, queries)
    walrec_wal = wal_remote.backend_stats()["wal"]
    wal_remote.close()
    for server in [reborn0] + wal_servers[1:]:
        server.stop()
    print(
        f"wal recovery (shard 0 killed on insert #{crash_nth}): "
        f"crash {'seen' if crash_seen else 'MISSED'}, "
        f"recovered lsn {recovered_lsn} in {t_wal_recover * 1e3:.1f}ms, "
        f"re-push left {walrec_wal['unflushed_records']} unflushed"
    )

    # Replica log catch-up: kill a replica, mutate past it, restart it on
    # the same port, and let the breaker probe repair it by log replay.
    cu_servers, cu_addrs = start_wal_fleet("catchup", replication=args.replication)
    catchup = RemoteShardedArchive(
        cu_addrs,
        replication=args.replication,
        breaker_cooldown_s=0.05,
        jitter_seed=0,
    )
    trip_ids = sorted(scenario.archive._trajectories)
    missed = max(1, len(trip_ids) // 10)
    for tid in trip_ids[:-missed]:
        catchup._restore(scenario.archive._trajectories[tid])
    dead = cu_servers[0]  # replica 0 of shard 0
    dead_port = dead.address[1]
    dead.stop()
    wait_wal_closed(dead)
    for tid in trip_ids[-missed:]:  # mutations the dead replica misses
        catchup._restore(scenario.archive._trajectories[tid])
    catchup._next_id = max(catchup._next_id, scenario.archive._next_id)
    revived = ArchiveShardServer(
        0,
        args.shards,
        args.tile_size,
        replica_id=0,
        port=dead_port,
        wal_dir=wal_root / "catchup" / "shard0-r0",
    ).start()
    time.sleep(0.1)  # let the breaker cooldown lapse so probes fire
    h_catchup = HRIS(scenario.network, catchup, HRISConfig())
    res_catchup, __ = time_sequential(h_catchup, queries)
    catchup_stats = catchup.backend_stats()
    catchup.close()
    for server in [revived] + cu_servers[1:]:
        server.stop()
    shutil.rmtree(wal_root, ignore_errors=True)
    catchup_repaired = (
        catchup_stats["catchups"] >= 1
        and catchup_stats["healthy_replicas"] == catchup_stats["total_replicas"]
    )
    print(
        f"replica catch-up ({args.shards}x{args.replication}, replica 0 of "
        f"shard 0 missed {missed} trips): catchups="
        f"{catchup_stats['catchups']}, "
        f"{catchup_stats['catchup_records']} records replayed, "
        f"{catchup_stats['healthy_replicas']}/{catchup_stats['total_replicas']} "
        f"replicas healthy ({'OK' if catchup_repaired else 'FAIL: not repaired'})"
    )

    # --- query gateway: the HTTP serving tier over loopback ---------------
    # Identity phase first: every query through the wire, sequentially —
    # JSON round-trips floats exactly, so the served routes and scores
    # must match the seed baseline bit for bit.  Then an open-loop load
    # generator: arrivals on a fixed schedule at the offered QPS, one
    # connection per request, so a slow reply never delays the next
    # arrival and queueing shows up as latency (or 429s), not as a
    # slower client.
    import threading  # noqa: E402

    from repro.serve import (  # noqa: E402
        GatewayClient,
        GatewayConfig,
        InferenceGateway,
        hris_backends,
    )
    from repro.serve.metrics import percentile as nearest_rank  # noqa: E402

    gw_workers = args.workers
    h_gw = HRIS(scenario.network, scenario.archive, HRISConfig())
    gateway = InferenceGateway(
        hris_backends(h_gw, gw_workers),
        GatewayConfig(max_inflight=4 * gw_workers, max_queue=4 * gw_workers),
    )
    gw_host, gw_port = gateway.start()

    gw_identity_keys = []
    with GatewayClient(gw_host, gw_port) as client:
        for query in queries:
            reply = client.infer(query)
            if reply.status != 200:
                raise RuntimeError(f"gateway identity phase: {reply.payload}")
            gw_identity_keys.append(reply.route_keys())

    offered_qps = args.qps
    if not offered_qps:
        # Offer ~80% of the measured sequential capacity so the
        # committed numbers show sustained serving, not pure shed.
        # Inference is CPU-bound Python, so extra workers buy queueing
        # depth and coalescing, not throughput — no worker multiplier.
        offered_qps = round(0.8 * len(queries) / t_engine, 2)
    n_requests = min(4 * len(queries), 240)
    gw_lock = threading.Lock()
    gw_samples = []  # (status, latency_s)

    def fire(query, fire_at):
        time.sleep(max(0.0, fire_at - time.perf_counter()))
        t0 = time.perf_counter()
        try:
            with GatewayClient(gw_host, gw_port) as c:
                status = c.infer(query).status
        except OSError:
            status = -1
        dt = time.perf_counter() - t0
        with gw_lock:
            gw_samples.append((status, dt))

    load_start = time.perf_counter() + 0.2
    gens = [
        threading.Thread(
            target=fire,
            args=(queries[i % len(queries)], load_start + i / offered_qps),
            daemon=True,
        )
        for i in range(n_requests)
    ]
    for th in gens:
        th.start()
    for th in gens:
        th.join()
    gw_wall = time.perf_counter() - load_start
    with GatewayClient(gw_host, gw_port) as client:
        gw_metrics = client.metrics().payload
    gateway.stop()

    gw_ok_lat = sorted(dt for st, dt in gw_samples if st == 200)
    gw_shed = sum(1 for st, __ in gw_samples if st == 429)
    gw_errors = sum(1 for st, __ in gw_samples if st not in (200, 429))
    gw_coalesced = gw_metrics["endpoints"]["/v1/infer"]["coalesced"]
    print(
        f"gateway ({gw_workers} workers, open loop {offered_qps:.1f} qps "
        f"offered): {len(gw_ok_lat)}/{n_requests} served in {gw_wall:.3f}s "
        f"({len(gw_ok_lat) / gw_wall:.1f} qps), {gw_shed} shed, "
        f"{gw_coalesced} coalesced, "
        f"p99={nearest_rank(gw_ok_lat, 99.0) * 1e3:.1f}ms"
    )

    # --- identity: every configuration must agree exactly -----------------
    ref = result_keys(res_seed)
    identical = {
        "engine_vs_seed": result_keys(res_engine) == ref,
        "table_oracle_vs_seed": result_keys(res_table) == ref,
        "table_oracle_batch_vs_seed": result_keys(res_tb) == ref,
        "ch_vs_seed": result_keys(res_ch) == ref,
        "p2p_ch_vs_bidi": p2p_identical,
        "matcher_table_vs_per_pair": matcher_outputs["table"]
        == matcher_outputs["per_pair"],
        "matcher_ch_vs_per_pair": matcher_outputs["ch"]
        == matcher_outputs["per_pair"],
        "batch1_vs_seed": result_keys(res_b1) == ref,
        "batch_vs_seed": result_keys(res_bn) == ref,
        "forced_pool_vs_seed": result_keys(res_bf) == ref,
        "sharded_vs_seed": result_keys(res_sharded) == ref,
        "remote_vs_seed": result_keys(res_remote) == ref,
        "replicated_degraded_vs_seed": result_keys(res_rep) == ref,
        "shard_reference_vs_seed": result_keys(res_ref_shard) == ref
        and result_keys(res_ref_local) == ref,
        "shard_reference_degraded_vs_seed": result_keys(res_ref_rep) == ref,
        "wal_recovery_vs_seed": result_keys(res_walrec) == ref and crash_seen,
        "replica_catchup_vs_seed": result_keys(res_catchup) == ref
        and catchup_repaired,
        "gateway_vs_seed": gw_identity_keys == ref,
    }
    print(f"identity: {identical}")
    accuracy = sum(
        route_accuracy(scenario.network, truth, routes[0].route)
        for (__, truth), routes in zip(cases, res_seed)
        if routes
    ) / len(cases)

    report = {
        "benchmark": "bench_throughput",
        "smoke": args.smoke,
        "machine": {
            "cpu_count": multiprocessing.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workload": {
            "scenario": "standard_scenario(seed=7)",
            "n_queries": len(queries),
            "interval_s": args.interval,
            "workers": args.workers,
            "mean_accuracy_AL": round(accuracy, 4),
        },
        "seed_baseline": {
            "total_s": round(t_seed, 4),
            "mean_latency_s": round(t_seed / len(queries), 4),
        },
        "engine_sequential": {
            "total_s": round(t_engine, 4),
            "mean_latency_s": round(t_engine / len(queries), 4),
            "settled_nodes_per_query": round(
                engine_stats["settled_nodes"] / len(queries), 2
            ),
            "stats": engine_stats,
        },
        "engine_table_oracle": {
            "total_s": round(t_table, 4),
            "mean_latency_s": round(t_table / len(queries), 4),
            f"workers_{args.workers}_forced_pool_total_s": round(t_tb, 4),
            "settled_nodes_per_query": round(
                table_stats["settled_nodes"] / len(queries), 2
            ),
            "settled_reduction_vs_engine": round(
                engine_stats["settled_nodes"]
                / max(1.0, table_stats["settled_nodes"]),
                3,
            ),
            "stats": table_stats,
        },
        "engine_ch": {
            "total_s": round(t_ch, 4),
            "mean_latency_s": round(t_ch / len(queries), 4),
            "contraction_s": round(t_ch_contract, 4),
            "bucket_warm_s": round(t_ch_buckets, 4),
            "num_shortcuts": hierarchy.num_shortcuts,
            "settled_nodes_per_query": round(
                ch_stats["settled_nodes"] / len(queries), 2
            ),
            "settled_reduction_vs_table_oracle": round(
                table_stats["settled_nodes"]
                / max(1.0, ch_stats["settled_nodes"]),
                3,
            ),
            "speedup_vs_table_oracle": round(t_table / t_ch, 3),
            "stats": ch_stats,
        },
        "point_to_point": {
            "pairs": len(pairs),
            "bidi_alt": {
                "total_s": round(t_p2p_bidi, 4),
                "settled_nodes": bidi_st.settled,
            },
            "ch": {
                "total_s": round(t_p2p_ch, 4),
                "settled_nodes": ch_st.settled,
                "stalls": ch_st.stalls,
            },
            "identical": p2p_identical,
            "ch_settles_fewer": ch_settles_fewer,
            "settled_reduction_ch_vs_bidi": round(
                bidi_st.settled / max(1, ch_st.settled), 3
            ),
            "speedup_ch_vs_bidi": round(t_p2p_bidi / max(1e-9, t_p2p_ch), 3),
        },
        "matcher_preprocessing": {
            "grid_nodes": match_nodes,
            "trajectories": len(match_trajs),
            "points": sum(len(t) for t in match_trajs),
            "per_pair": matcher_rows["per_pair"],
            "table": matcher_rows["table"],
            "ch": matcher_rows["ch"],
            "speedup_table_vs_per_pair": round(t_match_pp / t_match_tb, 3),
            "settled_reduction_table_vs_per_pair": round(
                matcher_rows["per_pair"]["settled_nodes"]
                / max(1, matcher_rows["table"]["settled_nodes"]),
                3,
            ),
            "speedup_ch_vs_table": round(t_match_tb / t_match_ch, 3),
            "ch_settles_fewer": matcher_ch_settles_fewer,
            "settled_reduction_ch_vs_table": round(
                matcher_rows["table"]["settled_nodes"]
                / max(1, matcher_rows["ch"]["settled_nodes"]),
                3,
            ),
        },
        "batch": {
            "workers_1_total_s": round(t_b1, 4),
            f"workers_{args.workers}_total_s": round(t_bn, 4),
            f"workers_{args.workers}_forced_pool_total_s": round(t_forced, 4),
            "queries_per_s": round(len(queries) / t_bn, 3),
        },
        "sharded_archive": {
            "tile_size_m": args.tile_size,
            "total_s": round(t_sharded, 4),
            "mean_latency_s": round(t_sharded / len(queries), 4),
            "queries_per_s": round(len(queries) / t_sharded, 3),
            "archive_points": sharded.num_points,
            "resident_points": sharded.resident_points,
            "resident_tiles": sharded.resident_tiles,
            "total_tiles": sharded.total_tiles,
            "index_bytes": sharded.index_nbytes(),
            "monolithic_index_bytes": mono_bytes,
            "per_worker": per_worker,
            "per_worker_mean_resident_fraction": round(
                sum(resident_fractions) / len(resident_fractions), 4
            ),
            "per_worker_max_resident_fraction": round(
                max(resident_fractions), 4
            ),
        },
        "remote_archive": {
            "num_shards": args.shards,
            "tile_size_m": args.tile_size,
            "total_s": round(t_remote, 4),
            "mean_latency_s": round(t_remote / len(queries), 4),
            "queries_per_s": round(len(queries) / t_remote, 3),
            "overhead_vs_sharded": round(t_remote / t_sharded, 3),
            "requests": len(rpc),
            "request_latency_s": {
                "p50": round(percentile(rpc, 0.50), 6),
                "p90": round(percentile(rpc, 0.90), 6),
                "p99": round(percentile(rpc, 0.99), 6),
                "max": round(rpc[-1], 6),
            },
            "per_shard": [
                {
                    "shard": s["shard_index"],
                    "num_points": s["num_points"],
                    "num_tiles": s["num_tiles"],
                    "resident_points": s["resident_points"],
                    "resident_tiles": s["resident_tiles"],
                    "index_bytes": s["index_bytes"],
                }
                for s in shard_stats
            ],
        },
        "replicated_archive": {
            "num_shards": args.shards,
            "replication": args.replication,
            "killed": {"shard": 0, "replica": 0, "before_query": kill_at},
            "total_s": round(t_rep, 4),
            "mean_latency_s": round(t_rep / len(queries), 4),
            "first_post_kill_query_s": round(failover_latency, 4),
            "overhead_vs_unreplicated": round(t_rep / t_remote, 3),
            "failovers": rep_stats["failovers"],
            "demotions": rep_stats["demotions"],
            "healthy_replicas": rep_stats["healthy_replicas"],
            "total_replicas": rep_stats["total_replicas"],
            "per_shard_health": rep_health,
        },
        "shard_reference": {
            "num_shards": args.shards,
            "tile_size_m": args.tile_size,
            "reference_assembly_s": {
                "local_total": round(sum(ref_local_lat), 4),
                "local_mean": round(mean(ref_local_lat), 5),
                "shard_total": round(sum(ref_shard_lat), 4),
                "shard_mean": round(mean(ref_shard_lat), 5),
            },
            "wire_bytes_per_query": {
                "local_near_pair_only": round(mean(ref_local_wire), 1),
                "whole_trip_shipping_baseline": round(mean(ref_baseline_wire), 1),
                "shard_assembly": round(mean(ref_shard_wire), 1),
            },
            "mean_trips_pulled_per_query": round(
                mean([len(p) for p in pulls]), 2
            ),
            "wire_reduction_vs_whole_trips": round(
                mean(ref_baseline_wire) / max(1.0, mean(ref_shard_wire)), 3
            ),
            "wire_below_whole_trip_baseline": wire_below_whole_trips,
            "degraded": {
                "replication": args.replication,
                "killed": {"shard": 0, "replica": 0, "before_query": kill_at},
                "failovers": ref_rep_stats["failovers"],
                "healthy_replicas": ref_rep_stats["healthy_replicas"],
                "total_replicas": ref_rep_stats["total_replicas"],
            },
        },
        "wal_durability": {
            "fsync_policies": wal_ingest,
            "crash_recovery": {
                "killed_on_insert": crash_nth,
                "crash_seen": crash_seen,
                "recovered_lsn": recovered_lsn,
                "recovery_s": round(t_wal_recover, 4),
                "wal_after_repush": walrec_wal,
            },
            "replica_catchup": {
                "num_shards": args.shards,
                "replication": args.replication,
                "missed_trips": missed,
                "catchups": catchup_stats["catchups"],
                "catchup_records": catchup_stats["catchup_records"],
                "restorations": catchup_stats["restorations"],
                "healthy_replicas": catchup_stats["healthy_replicas"],
                "total_replicas": catchup_stats["total_replicas"],
                "repaired": catchup_repaired,
            },
        },
        "gateway": {
            "workers": gw_workers,
            "max_inflight": 4 * gw_workers,
            "max_queue": 4 * gw_workers,
            "open_loop": {
                "offered_qps": offered_qps,
                "requests": n_requests,
                "served": len(gw_ok_lat),
                "shed_429": gw_shed,
                "errors": gw_errors,
                "coalesced": gw_coalesced,
                "wall_s": round(gw_wall, 4),
                "achieved_qps": round(len(gw_ok_lat) / gw_wall, 3),
                "latency_s": {
                    "p50": round(nearest_rank(gw_ok_lat, 50.0), 6),
                    "p90": round(nearest_rank(gw_ok_lat, 90.0), 6),
                    "p99": round(nearest_rank(gw_ok_lat, 99.0), 6),
                    "max": round(gw_ok_lat[-1], 6) if gw_ok_lat else 0.0,
                },
            },
        },
        "speedups": {
            "single_query_engine_vs_seed": round(t_seed / t_engine, 3),
            "single_query_table_oracle_vs_seed": round(t_seed / t_table, 3),
            "single_query_ch_vs_seed": round(t_seed / t_ch, 3),
            "table_oracle_vs_engine_sequential": round(t_engine / t_table, 3),
            "ch_vs_table_oracle": round(t_table / t_ch, 3),
            "p2p_ch_vs_bidi_alt": round(t_p2p_bidi / max(1e-9, t_p2p_ch), 3),
            "matcher_table_vs_per_pair": round(t_match_pp / t_match_tb, 3),
            "matcher_ch_vs_table": round(t_match_tb / t_match_ch, 3),
            "batch_vs_seed_baseline": round(t_seed / t_bn, 3),
            "batch_vs_engine_sequential": round(t_engine / t_bn, 3),
        },
        "identical_results": identical,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")
    print(
        f"single-query speedup {report['speedups']['single_query_engine_vs_seed']}x, "
        f"batch speedup {report['speedups']['batch_vs_seed_baseline']}x vs seed"
    )
    if not wire_below_whole_trips:
        print(
            "FAIL: shard-mode reference assembly did not beat whole-trip "
            "shipping on wire bytes"
        )
    if not ch_settles_fewer:
        print(
            "FAIL: the CH query settled more nodes than bidirectional ALT "
            "on the point-to-point phase"
        )
    if not matcher_ch_settles_fewer:
        print(
            "FAIL: the CH bucket oracle settled more nodes than the "
            "distance-table oracle on matcher preprocessing"
        )
    return (
        0
        if all(identical.values())
        and wire_below_whole_trips
        and ch_settles_fewer
        and matcher_ch_settles_fewer
        else 1
    )


if __name__ == "__main__":
    raise SystemExit(main())
