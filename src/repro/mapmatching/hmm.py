"""HMM map matching (Newson & Krumm style).

Not one of the paper's competitors, but the de-facto standard matcher today.
It serves two roles in this reproduction:

* the *preprocessing* map-matching step (Sec. II-B aligns archive GPS points
  onto segments before the route inference ever sees them), and
* the ground-truthing of high-sampling-rate trajectories in tests.

Emission is gaussian in the projection distance; transition favours
candidates whose network detour matches the straight-line hop
(``exp(-|d_route - d_euclid| / beta)``); decoding is Viterbi in log space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.mapmatching.base import (
    DEFAULT_GPS_SIGMA,
    MapMatcher,
    MatchResult,
    find_candidates,
    stitch_route,
)
from repro.roadnet.network import CandidateEdge, RoadNetwork
from repro.roadnet.shortest_path import DistanceOracle
from repro.trajectory.model import Trajectory

__all__ = ["HMMConfig", "HMMMatcher"]


@dataclass(frozen=True, slots=True)
class HMMConfig:
    """HMM matcher parameters.

    Attributes:
        radius: Candidate search radius in metres.
        max_candidates: Candidates kept per point.
        sigma: GPS error std-dev (emission model).
        beta: Scale of the detour penalty in metres (transition model).
        max_route_distance: Bound on candidate-to-candidate route searches.
    """

    radius: float = 100.0
    max_candidates: int = 5
    sigma: float = DEFAULT_GPS_SIGMA
    beta: float = 200.0
    max_route_distance: float = 50_000.0


class HMMMatcher(MapMatcher):
    """Viterbi decoder over the candidate lattice.

    Args:
        engine: Optional :class:`~repro.roadnet.engine.RoutingEngine` used
            for memoised candidate lookups, cached stitch bridges and the
            engine-owned transition oracle (per-pair or many-to-many table,
            per ``EngineConfig.transition_oracle`` — bit-identical results
            either way).  Without an engine a local per-pair
            :class:`DistanceOracle` preserves the seed behaviour.
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: HMMConfig = HMMConfig(),
        engine=None,
    ) -> None:
        self._network = network
        self._config = config
        self._engine = engine
        if engine is not None:
            self._oracle = engine.transition_oracle(config.max_route_distance)
        else:
            self._oracle = DistanceOracle(network, config.max_route_distance)

    def match(self, trajectory: Trajectory) -> MatchResult:
        cfg = self._config
        pts = trajectory.points
        n = len(pts)
        layers: List[List[CandidateEdge]] = [
            find_candidates(
                self._network,
                p.point,
                cfg.radius,
                cfg.max_candidates,
                engine=self._engine,
            )
            for p in pts
        ]

        def log_emission(c: CandidateEdge) -> float:
            z = c.distance / cfg.sigma
            return -0.5 * z * z

        score: List[List[float]] = [[log_emission(c) for c in layers[0]]]
        parent: List[List[int]] = [[-1] * len(layers[0])]

        inf = math.inf
        beta = cfg.beta
        oracle_prepare = self._oracle.prepare
        for i in range(1, n):
            d_euclid = pts[i].point.distance_to(pts[i - 1].point)
            # Frontier batching: announce this step's source/target node
            # sets so a table oracle covers them with one paused sweep per
            # source (the per-pair oracle builds its full tables instead).
            # Both return per-source plain dicts, exact for every announced
            # target, so the inner pair loop stays at dict.get speed.
            prev_score = score[i - 1]
            tables = oracle_prepare(
                (
                    c.segment.end
                    for k, c in enumerate(layers[i - 1])
                    if prev_score[k] != -inf
                ),
                (c.segment.start for c in layers[i]),
            )
            # Per-previous-candidate state hoisted out of the pair loop: the
            # distance table, segment id, offset and tail length are the
            # same for every current candidate, so fetch them once.  The
            # inlined arithmetic below mirrors
            # DistanceOracle.route_distance_between_projections exactly.
            prev_info: List[Optional[tuple]] = []
            for k, prev_cand in enumerate(layers[i - 1]):
                sc = score[i - 1][k]
                if sc == -inf:
                    prev_info.append(None)
                    continue
                seg = prev_cand.segment
                off = prev_cand.projection.offset
                prev_info.append(
                    (sc, seg.segment_id, off, seg.length - off, tables[seg.end])
                )
            cur: List[float] = []
            par: List[int] = []
            for cand in layers[i]:
                emit = log_emission(cand)
                cand_seg = cand.segment
                cand_id = cand_seg.segment_id
                cand_off = cand.projection.offset
                cand_start = cand_seg.start
                best_val = -inf
                best_k = -1
                for k, info in enumerate(prev_info):
                    if info is None:
                        continue
                    sc, prev_id, prev_off, tail, table = info
                    if prev_id == cand_id and cand_off >= prev_off:
                        d_route = cand_off - prev_off
                    else:
                        via = table.get(cand_start, inf)
                        if via == inf:
                            continue
                        d_route = tail + via + cand_off
                    val = sc + -abs(d_route - d_euclid) / beta + emit
                    if val > best_val:
                        best_val = val
                        best_k = k
                cur.append(best_val)
                par.append(best_k)
            if all(v == -math.inf for v in cur):
                cur = [log_emission(c) for c in layers[i]]
                par = [-1] * len(cur)
            score.append(cur)
            parent.append(par)

        chosen: List[Optional[CandidateEdge]] = [None] * n
        if layers[-1]:
            j = max(range(len(score[-1])), key=lambda idx: score[-1][idx])
            for i in range(n - 1, -1, -1):
                if j < 0 or not layers[i]:
                    if layers[i]:
                        j = max(range(len(score[i])), key=lambda idx: score[i][idx])
                        chosen[i] = layers[i][j]
                        j = parent[i][j]
                    continue
                chosen[i] = layers[i][j]
                j = parent[i][j]

        segments = [c.segment.segment_id for c in chosen if c is not None]
        route = stitch_route(self._network, segments, engine=self._engine)
        return MatchResult(route=route, matched=tuple(chosen))
