"""HMM map matching (Newson & Krumm style).

Not one of the paper's competitors, but the de-facto standard matcher today.
It serves two roles in this reproduction:

* the *preprocessing* map-matching step (Sec. II-B aligns archive GPS points
  onto segments before the route inference ever sees them), and
* the ground-truthing of high-sampling-rate trajectories in tests.

Emission is gaussian in the projection distance; transition favours
candidates whose network detour matches the straight-line hop
(``exp(-|d_route - d_euclid| / beta)``); decoding is Viterbi in log space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.mapmatching.base import (
    DEFAULT_GPS_SIGMA,
    MapMatcher,
    MatchResult,
    find_candidates,
    stitch_route,
)
from repro.roadnet.network import CandidateEdge, RoadNetwork
from repro.roadnet.shortest_path import DistanceOracle
from repro.trajectory.model import Trajectory

__all__ = ["HMMConfig", "HMMMatcher"]


@dataclass(frozen=True, slots=True)
class HMMConfig:
    """HMM matcher parameters.

    Attributes:
        radius: Candidate search radius in metres.
        max_candidates: Candidates kept per point.
        sigma: GPS error std-dev (emission model).
        beta: Scale of the detour penalty in metres (transition model).
        max_route_distance: Bound on candidate-to-candidate route searches.
    """

    radius: float = 100.0
    max_candidates: int = 5
    sigma: float = DEFAULT_GPS_SIGMA
    beta: float = 200.0
    max_route_distance: float = 50_000.0


class HMMMatcher(MapMatcher):
    """Viterbi decoder over the candidate lattice."""

    def __init__(self, network: RoadNetwork, config: HMMConfig = HMMConfig()) -> None:
        self._network = network
        self._config = config
        self._oracle = DistanceOracle(network, config.max_route_distance)

    def match(self, trajectory: Trajectory) -> MatchResult:
        cfg = self._config
        pts = trajectory.points
        n = len(pts)
        layers: List[List[CandidateEdge]] = [
            find_candidates(self._network, p.point, cfg.radius, cfg.max_candidates)
            for p in pts
        ]

        def log_emission(c: CandidateEdge) -> float:
            z = c.distance / cfg.sigma
            return -0.5 * z * z

        score: List[List[float]] = [[log_emission(c) for c in layers[0]]]
        parent: List[List[int]] = [[-1] * len(layers[0])]

        for i in range(1, n):
            d_euclid = pts[i].point.distance_to(pts[i - 1].point)
            cur: List[float] = []
            par: List[int] = []
            for cand in layers[i]:
                emit = log_emission(cand)
                best_val = -math.inf
                best_k = -1
                for k, prev_cand in enumerate(layers[i - 1]):
                    if score[i - 1][k] == -math.inf:
                        continue
                    d_route = self._oracle.route_distance_between_projections(
                        prev_cand.segment.segment_id,
                        prev_cand.projection.offset,
                        cand.segment.segment_id,
                        cand.projection.offset,
                    )
                    if math.isinf(d_route):
                        continue
                    log_trans = -abs(d_route - d_euclid) / cfg.beta
                    val = score[i - 1][k] + log_trans + emit
                    if val > best_val:
                        best_val = val
                        best_k = k
                cur.append(best_val)
                par.append(best_k)
            if all(v == -math.inf for v in cur):
                cur = [log_emission(c) for c in layers[i]]
                par = [-1] * len(cur)
            score.append(cur)
            parent.append(par)

        chosen: List[Optional[CandidateEdge]] = [None] * n
        if layers[-1]:
            j = max(range(len(score[-1])), key=lambda idx: score[-1][idx])
            for i in range(n - 1, -1, -1):
                if j < 0 or not layers[i]:
                    if layers[i]:
                        j = max(range(len(score[i])), key=lambda idx: score[i][idx])
                        chosen[i] = layers[i][j]
                        j = parent[i][j]
                    continue
                chosen[i] = layers[i][j]
                j = parent[i][j]

        segments = [c.segment.segment_id for c in chosen if c is not None]
        route = stitch_route(self._network, segments)
        return MatchResult(route=route, matched=tuple(chosen))
