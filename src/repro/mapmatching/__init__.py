"""Map-matching algorithms: the paper's competitors plus an HMM matcher."""

from repro.mapmatching.base import (
    DEFAULT_GPS_SIGMA,
    MapMatcher,
    MatchResult,
    find_candidates,
    gps_probability,
    stitch_route,
)
from repro.mapmatching.geometric import GeometricConfig, GeometricMatcher
from repro.mapmatching.hmm import HMMConfig, HMMMatcher
from repro.mapmatching.incremental import IncrementalConfig, IncrementalMatcher
from repro.mapmatching.ivmm import IVMMConfig, IVMMMatcher
from repro.mapmatching.stmatching import STMatcher, STMatchingConfig

__all__ = [
    "DEFAULT_GPS_SIGMA",
    "GeometricConfig",
    "GeometricMatcher",
    "HMMConfig",
    "HMMMatcher",
    "IVMMConfig",
    "IVMMMatcher",
    "IncrementalConfig",
    "IncrementalMatcher",
    "MapMatcher",
    "MatchResult",
    "STMatcher",
    "STMatchingConfig",
    "find_candidates",
    "gps_probability",
    "stitch_route",
]
