"""IVMM — Interactive Voting-based Map Matching (Yuan et al. [23]).

IVMM extends ST-Matching with two ideas, both reproduced here:

* *position context weighting*: when deciding point ``i``, the static score
  matrix of every other point ``j`` is damped by
  ``ω_i(j) = exp(-(d(p_i, p_j)/β)²)`` so near points influence the decision
  more than far ones, and
* *interactive voting*: for every candidate ``c_i^k``, the globally optimal
  candidate sequence **constrained to pass through** ``c_i^k`` is computed
  (with the matrices weighted for point ``i``); that sequence casts one vote
  for each of its candidates.  Every point finally adopts its most-voted
  candidate.

The constrained optimum is found with one forward and one backward dynamic
program per (point, weighting) pair, combined at the pinned candidate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.mapmatching.base import (
    DEFAULT_GPS_SIGMA,
    MapMatcher,
    MatchResult,
    find_candidates,
    gps_probability,
    stitch_route,
)
from repro.roadnet.network import CandidateEdge, RoadNetwork
from repro.roadnet.shortest_path import DistanceOracle
from repro.trajectory.model import Trajectory

__all__ = ["IVMMConfig", "IVMMMatcher"]


@dataclass(frozen=True, slots=True)
class IVMMConfig:
    """IVMM parameters.

    Attributes:
        radius: Candidate search radius in metres.
        max_candidates: Candidates kept per GPS point.
        sigma: GPS error std-dev for the observation probability.
        beta: Distance scale (metres) of the position-context weight.
        max_route_distance: Bound on candidate-to-candidate route searches.
    """

    radius: float = 100.0
    max_candidates: int = 4
    sigma: float = DEFAULT_GPS_SIGMA
    beta: float = 7_000.0
    max_route_distance: float = 50_000.0


class IVMMMatcher(MapMatcher):
    """Interactive voting matcher.

    Args:
        engine: Optional :class:`~repro.roadnet.engine.RoutingEngine` — the
            matcher then shares the engine's candidate cache, stitch bridges
            and transition oracle (per-pair or table; results identical).
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: IVMMConfig = IVMMConfig(),
        engine=None,
    ) -> None:
        self._network = network
        self._config = config
        self._engine = engine
        if engine is not None:
            self._oracle = engine.transition_oracle(config.max_route_distance)
        else:
            self._oracle = DistanceOracle(network, config.max_route_distance)

    def match(self, trajectory: Trajectory) -> MatchResult:
        cfg = self._config
        pts = trajectory.points
        n = len(pts)
        layers: List[List[CandidateEdge]] = [
            find_candidates(
                self._network,
                p.point,
                cfg.radius,
                cfg.max_candidates,
                engine=self._engine,
            )
            for p in pts
        ]

        obs: List[List[float]] = [
            [gps_probability(c.distance, cfg.sigma) for c in layer]
            for layer in layers
        ]
        # Static transition matrices: trans[i][k][j] is the F_s·F_t score of
        # moving from candidate k of point i-1 to candidate j of point i,
        # already multiplied by the observation probability of the target.
        trans: List[List[List[float]]] = [[]]
        for i in range(1, n):
            dt = pts[i].t - pts[i - 1].t
            d_euclid = pts[i].point.distance_to(pts[i - 1].point)
            # The full frontier product of this step is about to be scored:
            # let a table oracle cover it with one paused sweep per source.
            self._oracle.prepare(
                (c.segment.end for c in layers[i - 1]),
                (c.segment.start for c in layers[i]),
            )
            matrix: List[List[float]] = []
            for prev_cand in layers[i - 1]:
                row = [
                    obs[i][j] * self._edge_score(prev_cand, cand, d_euclid, dt)
                    for j, cand in enumerate(layers[i])
                ]
                matrix.append(row)
            trans.append(matrix)

        votes: Dict[Tuple[int, int], int] = {}
        sequence_score: Dict[Tuple[int, int], float] = {}
        for i in range(n):
            if not layers[i]:
                continue
            weights = [self._omega(pts[i].point.distance_to(pts[j].point)) for j in range(n)]
            fwd, fwd_par = self._forward(layers, obs, trans, weights)
            bwd, bwd_par = self._backward(layers, obs, trans, weights)
            for k in range(len(layers[i])):
                path = self._constrained_path(
                    i, k, layers, fwd, fwd_par, bwd, bwd_par
                )
                if path is None:
                    continue
                total = fwd[i][k] + bwd[i][k] - weights[i] * obs[i][k]
                for point_idx, cand_idx in enumerate(path):
                    if cand_idx < 0:
                        continue
                    key = (point_idx, cand_idx)
                    votes[key] = votes.get(key, 0) + 1
                    prev_score = sequence_score.get(key, -math.inf)
                    if total > prev_score:
                        sequence_score[key] = total

        chosen: List[Optional[CandidateEdge]] = []
        for i in range(n):
            if not layers[i]:
                chosen.append(None)
                continue
            best_j = max(
                range(len(layers[i])),
                key=lambda j: (
                    votes.get((i, j), 0),
                    sequence_score.get((i, j), -math.inf),
                ),
            )
            chosen.append(layers[i][best_j])

        segments = [c.segment.segment_id for c in chosen if c is not None]
        route = stitch_route(self._network, segments, engine=self._engine)
        return MatchResult(route=route, matched=tuple(chosen))

    # ----------------------------------------------------------- internals

    def _omega(self, distance: float) -> float:
        z = distance / self._config.beta
        return math.exp(-z * z)

    def _edge_score(
        self,
        prev_cand: CandidateEdge,
        cand: CandidateEdge,
        d_euclid: float,
        dt: float,
    ) -> float:
        d_route = self._oracle.route_distance_between_projections(
            prev_cand.segment.segment_id,
            prev_cand.projection.offset,
            cand.segment.segment_id,
            cand.projection.offset,
        )
        if math.isinf(d_route):
            return 0.0
        transmission = 1.0 if d_route <= 0.0 else min(1.0, d_euclid / d_route)
        if dt <= 0.0:
            return transmission
        avg_speed = d_route / dt
        limits = [prev_cand.segment.speed_limit, cand.segment.speed_limit]
        num = sum(v * avg_speed for v in limits)
        den = math.sqrt(sum(v * v for v in limits)) * math.sqrt(
            len(limits) * avg_speed * avg_speed
        )
        f_t = 1.0 if den == 0.0 else num / den
        return transmission * f_t

    def _forward(
        self,
        layers: List[List[CandidateEdge]],
        obs: List[List[float]],
        trans: List[List[List[float]]],
        weights: List[float],
    ) -> Tuple[List[List[float]], List[List[int]]]:
        """Weighted forward DP.  fwd[i][j]: best score of a path ending at
        candidate j of point i."""
        n = len(layers)
        fwd: List[List[float]] = [[weights[0] * v for v in obs[0]]]
        par: List[List[int]] = [[-1] * len(layers[0])]
        for i in range(1, n):
            scores = [-math.inf] * len(layers[i])
            parents = [-1] * len(layers[i])
            for j in range(len(layers[i])):
                for k in range(len(layers[i - 1])):
                    if fwd[i - 1][k] == -math.inf:
                        continue
                    val = fwd[i - 1][k] + weights[i] * trans[i][k][j]
                    if val > scores[j]:
                        scores[j] = val
                        parents[j] = k
            if all(v == -math.inf for v in scores):
                scores = [weights[i] * v for v in obs[i]]
                parents = [-1] * len(scores)
            fwd.append(scores)
            par.append(parents)
        return fwd, par

    def _backward(
        self,
        layers: List[List[CandidateEdge]],
        obs: List[List[float]],
        trans: List[List[List[float]]],
        weights: List[float],
    ) -> Tuple[List[List[float]], List[List[int]]]:
        """Weighted backward DP.  bwd[i][j]: best score of a path starting at
        candidate j of point i (inclusive of its own weighted observation)."""
        n = len(layers)
        bwd: List[List[float]] = [[] for __ in range(n)]
        par: List[List[int]] = [[] for __ in range(n)]
        bwd[n - 1] = [weights[n - 1] * v for v in obs[n - 1]]
        par[n - 1] = [-1] * len(layers[n - 1])
        for i in range(n - 2, -1, -1):
            scores = [-math.inf] * len(layers[i])
            parents = [-1] * len(layers[i])
            for j in range(len(layers[i])):
                for k in range(len(layers[i + 1])):
                    if bwd[i + 1][k] == -math.inf:
                        continue
                    val = (
                        weights[i] * obs[i][j]
                        + weights[i + 1] * trans[i + 1][j][k]
                        + bwd[i + 1][k]
                        - weights[i + 1] * obs[i + 1][k]
                    )
                    if val > scores[j]:
                        scores[j] = val
                        parents[j] = k
            if all(v == -math.inf for v in scores):
                scores = [weights[i] * v for v in obs[i]]
                parents = [-1] * len(scores)
            bwd[i] = scores
            par[i] = parents
        return bwd, par

    def _constrained_path(
        self,
        pin_i: int,
        pin_k: int,
        layers: List[List[CandidateEdge]],
        fwd: List[List[float]],
        fwd_par: List[List[int]],
        bwd: List[List[float]],
        bwd_par: List[List[int]],
    ) -> Optional[List[int]]:
        """The candidate index per point of the best sequence through
        candidate ``pin_k`` of point ``pin_i`` (``-1`` for empty layers)."""
        n = len(layers)
        if fwd[pin_i][pin_k] == -math.inf or bwd[pin_i][pin_k] == -math.inf:
            return None
        path = [-1] * n
        path[pin_i] = pin_k
        j = pin_k
        for i in range(pin_i, 0, -1):
            j = fwd_par[i][j]
            if j < 0:
                break
            path[i - 1] = j
        j = pin_k
        for i in range(pin_i, n - 1):
            j = bwd_par[i][j]
            if j < 0:
                break
            path[i + 1] = j
        return path
