"""ST-Matching (Lou et al. [22]): map matching for low-sampling-rate GPS.

The published algorithm, reproduced faithfully:

1. *Candidate preparation* — for each GPS point, the nearest road segments
   within a radius, each with its projection.
2. *Spatial analysis* — observation probability ``N(c)`` (gaussian in the
   projection distance) times transmission probability
   ``V(c_prev → c) = d_euclid / d_route`` (the shortest-path detour ratio).
3. *Temporal analysis* — cosine similarity between the speed limits along
   the connecting path and the average travel speed between the two points.
4. *Result matching* — a Viterbi-style dynamic program over the candidate
   graph maximising the summed ``F_s · F_t`` score, then stitching the best
   candidate sequence into a connected route.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.mapmatching.base import (
    DEFAULT_GPS_SIGMA,
    MapMatcher,
    MatchResult,
    find_candidates,
    gps_probability,
    stitch_route,
)
from repro.roadnet.network import CandidateEdge, RoadNetwork
from repro.roadnet.shortest_path import DistanceOracle
from repro.trajectory.model import Trajectory

__all__ = ["STMatchingConfig", "STMatcher"]


@dataclass(frozen=True, slots=True)
class STMatchingConfig:
    """ST-Matching parameters (defaults follow the published evaluation).

    Attributes:
        radius: Candidate search radius in metres.
        max_candidates: Candidates kept per GPS point.
        sigma: GPS error std-dev for the observation probability.
        max_route_distance: Bound on candidate-to-candidate route searches.
    """

    radius: float = 100.0
    max_candidates: int = 5
    sigma: float = DEFAULT_GPS_SIGMA
    max_route_distance: float = 50_000.0


class STMatcher(MapMatcher):
    """Spatial-temporal candidate-graph matcher.

    Args:
        engine: Optional :class:`~repro.roadnet.engine.RoutingEngine` — the
            matcher then shares the engine's candidate cache, stitch bridges
            and transition oracle (per-pair or table; results identical).
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: STMatchingConfig = STMatchingConfig(),
        engine=None,
    ) -> None:
        self._network = network
        self._config = config
        self._engine = engine
        if engine is not None:
            self._oracle = engine.transition_oracle(config.max_route_distance)
        else:
            self._oracle = DistanceOracle(network, config.max_route_distance)

    def match(self, trajectory: Trajectory) -> MatchResult:
        cfg = self._config
        pts = trajectory.points
        layers: List[List[CandidateEdge]] = [
            find_candidates(
                self._network,
                p.point,
                cfg.radius,
                cfg.max_candidates,
                engine=self._engine,
            )
            for p in pts
        ]

        # Viterbi over the candidate graph.  score[i][j]: best cumulative
        # score of any path ending at candidate j of point i.
        n = len(pts)
        score: List[List[float]] = []
        parent: List[List[int]] = []
        first = [gps_probability(c.distance, cfg.sigma) for c in layers[0]]
        score.append(first)
        parent.append([-1] * len(first))

        for i in range(1, n):
            cur_scores: List[float] = []
            cur_parent: List[int] = []
            dt = pts[i].t - pts[i - 1].t
            d_euclid = pts[i].point.distance_to(pts[i - 1].point)
            # Announce this step's frontier product so a table oracle can
            # cover it with one paused sweep per source (per-pair: no-op).
            prev_scores = score[i - 1]
            self._oracle.prepare(
                (
                    c.segment.end
                    for k, c in enumerate(layers[i - 1])
                    if prev_scores[k] != -math.inf
                ),
                (c.segment.start for c in layers[i]),
            )
            for j, cand in enumerate(layers[i]):
                obs = gps_probability(cand.distance, cfg.sigma)
                best_val = -math.inf
                best_k = -1
                for k, prev_cand in enumerate(layers[i - 1]):
                    if score[i - 1][k] == -math.inf:
                        continue
                    fs_ft = self._edge_score(prev_cand, cand, d_euclid, dt)
                    val = score[i - 1][k] + obs * fs_ft
                    if val > best_val:
                        best_val = val
                        best_k = k
                cur_scores.append(best_val)
                cur_parent.append(best_k)
            # Degenerate layer: nothing reachable — restart scoring here so
            # the matcher degrades gracefully instead of failing the query.
            if all(v == -math.inf for v in cur_scores):
                cur_scores = [
                    gps_probability(c.distance, cfg.sigma) for c in layers[i]
                ]
                cur_parent = [-1] * len(cur_scores)
            score.append(cur_scores)
            parent.append(cur_parent)

        chosen = self._backtrack(layers, score, parent)
        segments = [c.segment.segment_id for c in chosen if c is not None]
        route = stitch_route(self._network, segments, engine=self._engine)
        return MatchResult(route=route, matched=tuple(chosen))

    # ----------------------------------------------------------- internals

    def _edge_score(
        self,
        prev_cand: CandidateEdge,
        cand: CandidateEdge,
        d_euclid: float,
        dt: float,
    ) -> float:
        """``F_s · F_t`` between two consecutive candidates."""
        d_route = self._oracle.route_distance_between_projections(
            prev_cand.segment.segment_id,
            prev_cand.projection.offset,
            cand.segment.segment_id,
            cand.projection.offset,
        )
        if math.isinf(d_route):
            return 0.0
        # Transmission probability: straight-line over route distance.
        if d_route <= 0.0:
            transmission = 1.0
        else:
            transmission = min(1.0, d_euclid / d_route)
        f_t = self._temporal(prev_cand, cand, d_route, dt)
        return transmission * f_t

    def _temporal(
        self,
        prev_cand: CandidateEdge,
        cand: CandidateEdge,
        d_route: float,
        dt: float,
    ) -> float:
        """Cosine similarity between path speed limits and actual speed.

        The published F_t compares the vector of speed constraints along the
        connecting path with the (constant) average speed vector.  With the
        two endpoint segments as the dominant terms, we use their limits —
        the full path expansion changes nothing qualitatively and keeps the
        oracle cache hot.
        """
        if dt <= 0.0:
            return 1.0
        avg_speed = d_route / dt
        limits = [prev_cand.segment.speed_limit, cand.segment.speed_limit]
        num = sum(v * avg_speed for v in limits)
        den = math.sqrt(sum(v * v for v in limits)) * math.sqrt(
            len(limits) * avg_speed * avg_speed
        )
        if den == 0.0:
            return 1.0
        return num / den

    def _backtrack(
        self,
        layers: List[List[CandidateEdge]],
        score: List[List[float]],
        parent: List[List[int]],
    ) -> List[Optional[CandidateEdge]]:
        n = len(layers)
        chosen: List[Optional[CandidateEdge]] = [None] * n
        if not layers[-1]:
            return chosen
        j = max(range(len(score[-1])), key=lambda idx: score[-1][idx])
        for i in range(n - 1, -1, -1):
            if j < 0 or not layers[i]:
                # A restart boundary or empty layer: re-pick the local best.
                if layers[i]:
                    j = max(range(len(score[i])), key=lambda idx: score[i][idx])
                    chosen[i] = layers[i][j]
                    j = parent[i][j]
                continue
            chosen[i] = layers[i][j]
            j = parent[i][j]
        return chosen
