"""Shared map-matching infrastructure.

Every matcher in this package — the incremental baseline, ST-Matching, IVMM
and the HMM matcher — shares the same three building blocks, factored out
here so comparisons isolate algorithmic differences:

* candidate search (Definition 5 with a nearest-segment fallback),
* a gaussian GPS observation model, and
* route stitching: bridging consecutive matched segments with network
  shortest paths to produce one connected :class:`Route`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geo.point import Point
from repro.roadnet.network import CandidateEdge, RoadNetwork
from repro.roadnet.route import Route
from repro.roadnet.shortest_path import shortest_route_between_segments
from repro.trajectory.model import Trajectory

__all__ = [
    "MatchResult",
    "gps_probability",
    "find_candidates",
    "stitch_route",
    "MapMatcher",
]

#: Default GPS error std-dev in metres (the 20 m of ST-Matching / IVMM).
DEFAULT_GPS_SIGMA = 20.0


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Output of a map matcher.

    Attributes:
        route: The matched connected route.
        matched: The chosen candidate edge per GPS point (None where the
            matcher could not place a point, e.g. off-map outliers).
    """

    route: Route
    matched: Tuple[Optional[CandidateEdge], ...]


def gps_probability(distance: float, sigma: float = DEFAULT_GPS_SIGMA) -> float:
    """Gaussian observation density N(0, sigma) of a projection distance."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    z = distance / sigma
    return math.exp(-0.5 * z * z) / (math.sqrt(2.0 * math.pi) * sigma)


def find_candidates(
    network: RoadNetwork,
    point: Point,
    radius: float,
    max_candidates: int = 5,
    engine=None,
) -> List[CandidateEdge]:
    """Candidate edges of a point, nearest first, never empty if the network
    has segments.

    Uses the Definition 5 radius search and falls back to the k nearest
    segments when no segment lies within ``radius`` (an outlier GPS point
    must still be matched somewhere).  When an ``engine``
    (:class:`~repro.roadnet.engine.RoutingEngine`) is given, the radius
    search goes through its memoised candidate-edge cache.
    """
    if engine is not None:
        hits = engine.candidate_edges(point, radius)
    else:
        hits = network.candidate_edges(point, radius)
    if not hits:
        hits = network.nearest_segments(point, max_candidates)
    return hits[:max_candidates]


def stitch_route(
    network: RoadNetwork, matched_segments: Sequence[int], engine=None
) -> Route:
    """Connect a sequence of matched segments into one route.

    Consecutive duplicates collapse; non-adjacent consecutive segments are
    bridged with the network shortest path.  Unreachable bridges are skipped
    (the route continues from the next segment) rather than failing, which
    mirrors how deployed matchers tolerate map defects.  An ``engine``
    routes the bridges through its cache with the ALT heuristic.
    """
    ids: List[int] = []
    for sid in matched_segments:
        if not ids:
            ids.append(sid)
            continue
        if sid == ids[-1]:
            continue
        if network.are_connected(ids[-1], sid):
            ids.append(sid)
            continue
        if engine is not None:
            gap, bridge = engine.shortest_route_between_segments(ids[-1], sid)
        else:
            gap, bridge = shortest_route_between_segments(network, ids[-1], sid)
        if math.isinf(gap):
            ids.append(sid)  # tolerate the break
            continue
        # bridge includes both endpoints; drop the leading duplicate.
        ids.extend(bridge.segment_ids[1:])
    return Route.of(ids).dedupe_consecutive()


class MapMatcher:
    """Interface for map matchers: ``match(trajectory) -> MatchResult``."""

    def match(self, trajectory: Trajectory) -> MatchResult:
        raise NotImplementedError
