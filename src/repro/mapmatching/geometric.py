"""Pure geometric map matching — the naive lower-bound baseline.

Matches every GPS point independently to its nearest road segment and
stitches the results with shortest paths.  No temporal reasoning, no
look-back, no probabilities: the floor every serious matcher must beat,
useful for calibrating how much the smarter algorithms actually buy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.mapmatching.base import (
    MapMatcher,
    MatchResult,
    find_candidates,
    stitch_route,
)
from repro.roadnet.network import CandidateEdge, RoadNetwork
from repro.trajectory.model import Trajectory

__all__ = ["GeometricConfig", "GeometricMatcher"]


@dataclass(frozen=True, slots=True)
class GeometricConfig:
    """Parameters of the geometric matcher.

    Attributes:
        radius: Candidate search radius in metres.
    """

    radius: float = 50.0


class GeometricMatcher(MapMatcher):
    """Nearest-segment-per-point matching."""

    def __init__(
        self, network: RoadNetwork, config: GeometricConfig = GeometricConfig()
    ) -> None:
        self._network = network
        self._config = config

    def match(self, trajectory: Trajectory) -> MatchResult:
        chosen: List[Optional[CandidateEdge]] = []
        for gps in trajectory.points:
            candidates = find_candidates(
                self._network, gps.point, self._config.radius, max_candidates=1
            )
            chosen.append(candidates[0] if candidates else None)
        segments = [c.segment.segment_id for c in chosen if c is not None]
        return MatchResult(
            route=stitch_route(self._network, segments), matched=tuple(chosen)
        )
