"""Incremental map matching (Greenfeld [21]).

The classic online algorithm: each GPS point is matched using geometric
similarity *and* the matching decision taken for the previous point.  The
score of a candidate combines:

* proximity — closer segments score higher,
* orientation — segments aligned with the heading implied by the previous
  GPS point score higher, and
* continuity — candidates topologically reachable from the previous match
  with little detour are preferred.

The paper uses this matcher as the representative of high-sampling-rate-era
algorithms, which degrade badly as the interval grows — reproducing that
degradation is part of Figure 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.geo.point import Point
from repro.mapmatching.base import (
    MapMatcher,
    MatchResult,
    find_candidates,
    stitch_route,
)
from repro.roadnet.network import CandidateEdge, RoadNetwork
from repro.roadnet.shortest_path import DistanceOracle
from repro.trajectory.model import Trajectory

__all__ = ["IncrementalConfig", "IncrementalMatcher"]


@dataclass(frozen=True, slots=True)
class IncrementalConfig:
    """Weights of the incremental score.

    Attributes:
        radius: Candidate search radius in metres.
        max_candidates: Candidates considered per point.
        proximity_weight: Weight of the distance term.
        orientation_weight: Weight of the heading-alignment term.
        continuity_weight: Weight of the topological-continuity term.
        detour_scale: Network detour (metres) at which continuity decays
            to 1/e.
        max_route_distance: Bound on the continuity gap searches.
    """

    radius: float = 50.0
    max_candidates: int = 5
    proximity_weight: float = 10.0
    orientation_weight: float = 2.0
    continuity_weight: float = 3.0
    detour_scale: float = 500.0
    max_route_distance: float = 50_000.0


class IncrementalMatcher(MapMatcher):
    """Greedy point-by-point matcher with look-back of one point.

    Args:
        engine: Optional :class:`~repro.roadnet.engine.RoutingEngine` — the
            matcher then shares the engine's candidate cache, stitch bridges
            and transition oracle (per-pair or table; results identical).
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: IncrementalConfig = IncrementalConfig(),
        engine=None,
    ) -> None:
        self._network = network
        self._config = config
        self._engine = engine
        if engine is not None:
            self._oracle = engine.transition_oracle(config.max_route_distance)
        else:
            self._oracle = DistanceOracle(
                network, max_distance=config.max_route_distance
            )

    def match(self, trajectory: Trajectory) -> MatchResult:
        cfg = self._config
        chosen: List[Optional[CandidateEdge]] = []
        prev: Optional[CandidateEdge] = None
        prev_point: Optional[Point] = None

        for gps in trajectory.points:
            candidates = find_candidates(
                self._network,
                gps.point,
                cfg.radius,
                cfg.max_candidates,
                engine=self._engine,
            )
            if not candidates:
                chosen.append(None)
                continue
            if prev is not None:
                # Single-source frontier of this step's continuity gaps.
                self._oracle.prepare(
                    (prev.segment.end,),
                    (c.segment.start for c in candidates),
                )
            best = max(
                candidates,
                key=lambda c: self._score(c, gps.point, prev, prev_point),
            )
            chosen.append(best)
            prev = best
            prev_point = gps.point

        segments = [c.segment.segment_id for c in chosen if c is not None]
        route = stitch_route(self._network, segments, engine=self._engine)
        return MatchResult(route=route, matched=tuple(chosen))

    # ------------------------------------------------------------ scoring

    def _score(
        self,
        candidate: CandidateEdge,
        point: Point,
        prev: Optional[CandidateEdge],
        prev_point: Optional[Point],
    ) -> float:
        cfg = self._config
        score = cfg.proximity_weight / (1.0 + candidate.distance)
        if prev is None or prev_point is None:
            return score
        score += cfg.orientation_weight * self._orientation(candidate, point, prev_point)
        score += cfg.continuity_weight * self._continuity(candidate, prev)
        return score

    def _orientation(
        self, candidate: CandidateEdge, point: Point, prev_point: Point
    ) -> float:
        """Cosine alignment between movement heading and segment heading."""
        move = point - prev_point
        seg = candidate.segment
        direction = seg.polyline[-1] - seg.polyline[0]
        mn = move.norm()
        dn = direction.norm()
        if mn == 0.0 or dn == 0.0:
            return 0.0
        return move.dot(direction) / (mn * dn)

    def _continuity(self, candidate: CandidateEdge, prev: CandidateEdge) -> float:
        """Exponentially decaying preference for small network detours."""
        if candidate.segment.segment_id == prev.segment.segment_id:
            return 1.0
        gap = self._oracle.distance(prev.segment.end, candidate.segment.start)
        if math.isinf(gap):
            return 0.0
        return math.exp(-gap / self._config.detour_scale)
