"""repro — HRIS: History-based Route Inference System.

A full Python reproduction of "Reducing Uncertainty of Low-Sampling-Rate
Trajectories" (Zheng, Zheng, Xie, Zhou — ICDE 2012): infer the likely
routes of a sparsely sampled GPS trajectory from historical travel
patterns.

Quickstart::

    from repro import build_scenario, HRIS, HRISConfig
    from repro.trajectory import downsample
    from repro.eval import route_accuracy

    scenario = build_scenario()
    hris = HRIS(scenario.network, scenario.archive, HRISConfig())
    case = scenario.queries[0]
    query = downsample(case.query, 180.0)        # 3-minute sampling
    routes = hris.infer_routes(query, k=5)
    print(route_accuracy(scenario.network, case.truth, routes[0].route))
"""

from repro.core import (
    HRIS,
    GlobalRoute,
    HRISConfig,
    HRISMatcher,
    InMemoryArchive,
    ShardedArchive,
    TrajectoryArchive,
)
from repro.datasets import Scenario, ScenarioConfig, build_scenario
from repro.roadnet import RoadNetwork, Route
from repro.trajectory import GPSPoint, Trajectory

__version__ = "1.0.0"

__all__ = [
    "HRIS",
    "GPSPoint",
    "GlobalRoute",
    "HRISConfig",
    "HRISMatcher",
    "InMemoryArchive",
    "RoadNetwork",
    "ShardedArchive",
    "Route",
    "Scenario",
    "ScenarioConfig",
    "Trajectory",
    "TrajectoryArchive",
    "build_scenario",
    "__version__",
]
