"""Synthetic dataset generation (substitute for the paper's taxi archive)."""

from repro.datasets.io import load_scenario, save_scenario
from repro.datasets.synthetic import (
    LengthScenario,
    QueryCase,
    Scenario,
    ScenarioConfig,
    alternative_routes,
    build_length_scenario,
    build_scenario,
    zipf_weights,
)

__all__ = [
    "LengthScenario",
    "QueryCase",
    "Scenario",
    "ScenarioConfig",
    "alternative_routes",
    "build_length_scenario",
    "load_scenario",
    "save_scenario",
    "build_scenario",
    "zipf_weights",
]
