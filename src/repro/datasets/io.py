"""Scenario persistence.

Saves a built scenario to a directory as three artefacts — the road
network, the archive trips and the query cases — so experiments can be
generated once and shared or re-run from disk (and so the CLI has a
working-set format).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.core.archive import make_archive
from repro.datasets.synthetic import QueryCase, Scenario, ScenarioConfig
from repro.roadnet.io import load_network, save_network
from repro.roadnet.route import Route
from repro.trajectory.io import load_trajectories, save_trajectories, trajectory_from_dict, trajectory_to_dict

__all__ = ["save_scenario", "load_scenario"]

_NETWORK_FILE = "network.json"
_ARCHIVE_FILE = "archive.jsonl"
_QUERIES_FILE = "queries.json"


def save_scenario(scenario: Scenario, directory: Union[str, Path]) -> Path:
    """Write a scenario's network, archive and queries to ``directory``.

    Returns:
        The directory path.  Demand-model internals (OD routes and choice
        probabilities) are not persisted — they are generator metadata, not
        inputs to the inference.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_network(scenario.network, directory / _NETWORK_FILE)
    save_trajectories(scenario.archive.trajectories(), directory / _ARCHIVE_FILE)
    queries = [
        {
            "query": trajectory_to_dict(case.query),
            "truth": list(case.truth.segment_ids),
        }
        for case in scenario.queries
    ]
    with open(directory / _QUERIES_FILE, "w", encoding="utf-8") as f:
        json.dump({"format": "repro-queries-v1", "cases": queries}, f)
    return directory


def load_scenario(
    directory: Union[str, Path],
    archive_backend: str = "memory",
    tile_size: Optional[float] = None,
    shard_addrs: Optional[Sequence[str]] = None,
    replication: Optional[int] = None,
    pool_size: Optional[int] = None,
) -> Scenario:
    """Read a scenario saved by :func:`save_scenario`.

    Args:
        directory: The scenario directory.
        archive_backend: Spatial backend the archive is loaded into —
            ``"memory"`` (one R-tree, the default), ``"sharded"`` (tiled,
            see :class:`~repro.core.archive.ShardedArchive`) or
            ``"remote"`` (tiles served by shard-server processes, see
            :mod:`repro.core.remote`).  Query results are identical
            whichever backend serves them.
        tile_size: Tile side in metres for the sharded/remote backends.
        shard_addrs: ``host:port`` shard servers (remote backend only).
            Archive points are pushed to the owning shards as trips load;
            pushes are idempotent, so pre-seeded fleets are fine.
        replication: Expected replicas per shard (remote backend only);
            the handshake fails unless every shard has exactly this many
            servers among ``shard_addrs``.
        pool_size: Persistent connections kept per replica (remote
            backend only); concurrent servers raise it to their worker
            count so shard requests multiplex instead of serialising.

    Raises:
        FileNotFoundError: If any artefact is missing.
        ValueError: On format mismatches or an unknown backend.
    """
    directory = Path(directory)
    network = load_network(directory / _NETWORK_FILE)
    archive = make_archive(
        archive_backend, tile_size, shard_addrs, replication, pool_size
    )
    for trip in load_trajectories(directory / _ARCHIVE_FILE):
        archive.add(trip)
    with open(directory / _QUERIES_FILE, "r", encoding="utf-8") as f:
        payload = json.load(f)
    if payload.get("format") != "repro-queries-v1":
        raise ValueError(f"unknown queries format: {payload.get('format')!r}")
    queries = [
        QueryCase(
            query=trajectory_from_dict(case["query"]),
            truth=Route.of([int(s) for s in case["truth"]]),
        )
        for case in payload["cases"]
    ]
    return Scenario(
        network=network,
        archive=archive,
        od_routes=[],
        route_probabilities=[],
        queries=queries,
        config=ScenarioConfig(),
    )
