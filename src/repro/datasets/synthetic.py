"""Synthetic evaluation scenarios (the paper's data substrate, rebuilt).

The paper evaluates on 3 months of Beijing taxi GPS plus GeoLife query
trajectories.  :func:`build_scenario` generates the equivalent laboratory:

* a synthetic city road network,
* an OD demand model whose route choice is **Zipf-skewed over a few
  alternatives per OD pair** — Observation 1 ("travel patterns between
  certain locations are often highly skewed") holds by construction,
* an archive of simulated taxi trips at **mixed sampling intervals**
  (the data-quality condition of Sec. I-B: high- and low-rate history
  co-exist), whose samples interleave across trips — Observation 2,
* background trips with random ODs (irrelevant traffic the inference must
  shrug off), and
* query cases: high-rate noisy drives over known routes, to be downsampled
  to each experiment's target interval, with the exact driven route as
  ground truth.

Everything is deterministic given the config seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.archive import ArchiveBackend, TrajectoryArchive
from repro.roadnet.generators import GridCityConfig, grid_city
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route
from repro.roadnet.shortest_path import node_path_to_route
from repro.trajectory.model import Trajectory
from repro.trajectory.simulate import DriveConfig, drive_route

__all__ = [
    "QueryCase",
    "ScenarioConfig",
    "Scenario",
    "LengthScenario",
    "build_scenario",
    "build_length_scenario",
    "alternative_routes",
    "zipf_weights",
]


@dataclass(frozen=True, slots=True)
class QueryCase:
    """One evaluation query: a high-rate trajectory plus its true route."""

    query: Trajectory
    truth: Route


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """Scenario generator parameters.

    Attributes:
        grid: Road-network generator config.
        n_od_pairs: Origin/destination pairs in the demand model.
        routes_per_od: Alternative routes generated per OD pair.
        zipf_s: Skew exponent of the route-choice distribution (larger =
            more skewed towards the top route; Observation 1).
        min_od_distance: Minimum straight-line OD separation in metres.
        n_archive_trips: Demand-model trips simulated into the archive.
        n_background_trips: Random-OD trips added as irrelevant traffic.
        archive_intervals: Sampling intervals (s) present in the archive.
        archive_interval_weights: Mixture weights of those intervals.
        gps_sigma: GPS noise std-dev in metres.
        query_interval: Sampling interval (s) of the high-rate queries.
        n_queries: Number of query cases generated.
        seed: Master random seed.
    """

    grid: GridCityConfig = GridCityConfig()
    n_od_pairs: int = 12
    routes_per_od: int = 3
    zipf_s: float = 1.5
    min_od_distance: float = 4_000.0
    n_archive_trips: int = 240
    n_background_trips: int = 30
    archive_intervals: Tuple[float, ...] = (30.0, 60.0, 120.0, 300.0)
    archive_interval_weights: Tuple[float, ...] = (0.25, 0.30, 0.30, 0.15)
    gps_sigma: float = 15.0
    query_interval: float = 15.0
    n_queries: int = 8
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_od_pairs < 1 or self.routes_per_od < 1:
            raise ValueError("need at least one OD pair and one route per OD")
        if len(self.archive_intervals) != len(self.archive_interval_weights):
            raise ValueError("interval mixture lengths differ")
        if abs(sum(self.archive_interval_weights) - 1.0) > 1e-9:
            raise ValueError("interval weights must sum to 1")


@dataclass(slots=True)
class Scenario:
    """A fully built evaluation world."""

    network: RoadNetwork
    archive: ArchiveBackend
    od_routes: List[List[Route]]
    route_probabilities: List[np.ndarray]
    queries: List[QueryCase]
    config: ScenarioConfig


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalised Zipf weights ``1/rank^s`` for ``n`` ranks."""
    if n < 1:
        raise ValueError("n must be at least 1")
    w = np.array([1.0 / (rank**s) for rank in range(1, n + 1)])
    return w / w.sum()


def alternative_routes(
    network: RoadNetwork,
    source: int,
    target: int,
    n: int,
    rng: np.random.Generator,
    spread: float = 0.25,
) -> List[Route]:
    """Up to ``n`` distinct plausible routes between two vertices.

    Routes model real driver behaviour: they minimise **travel time**
    (length / speed limit), not distance, so in a city with arterial speed
    classes the popular routes detour onto big roads and differ from the
    geometric shortest path — the regime in which the shortest-path
    assumption behind distance-based map matchers breaks down (the paper's
    motivation for HRIS).  The first route is the unperturbed time-optimal
    one; the rest come from time searches under randomly perturbed segment
    costs (``U(1, 1+spread)`` per segment, emulating day-to-day traffic).
    """
    routes: List[Route] = []
    seen: set = set()

    def add(route: Route) -> None:
        if route.segment_ids and route.segment_ids not in seen:
            seen.add(route.segment_ids)
            routes.append(route)

    fastest = _perturbed_fastest(network, source, target, None, rng)
    if fastest is None:
        return []
    add(fastest)

    attempts = 0
    while len(routes) < n and attempts < n * 6:
        attempts += 1
        factors = {
            seg.segment_id: 1.0 + spread * float(rng.random())
            for seg in network.segments()
        }
        route = _perturbed_fastest(network, source, target, factors, rng)
        if route is not None:
            add(route)
    return routes[:n]


def _perturbed_fastest(
    network: RoadNetwork,
    source: int,
    target: int,
    factors: Optional[dict],
    rng: np.random.Generator,
) -> Optional[Route]:
    """Dijkstra on (optionally perturbed) free-flow travel time."""
    import heapq

    dist = {source: 0.0}
    prev: dict = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == target:
            node_path = [target]
            while node_path[-1] != source:
                node_path.append(prev[node_path[-1]])
            node_path.reverse()
            return node_path_to_route(network, node_path)
        for sid in network.out_segments(u):
            seg = network.segment(sid)
            cost = seg.travel_time
            if factors is not None:
                cost *= factors[sid]
            nd = d + cost
            if nd < dist.get(seg.end, math.inf):
                dist[seg.end] = nd
                prev[seg.end] = u
                heapq.heappush(heap, (nd, seg.end))
    return None


def _pick_od_pairs(
    network: RoadNetwork, config: ScenarioConfig, rng: np.random.Generator
) -> List[Tuple[int, int]]:
    node_ids = [n.node_id for n in network.nodes()]
    pairs: List[Tuple[int, int]] = []
    attempts = 0
    while len(pairs) < config.n_od_pairs and attempts < config.n_od_pairs * 50:
        attempts += 1
        a, b = rng.choice(node_ids, size=2, replace=False)
        a, b = int(a), int(b)
        separation = network.node(a).point.distance_to(network.node(b).point)
        if separation >= config.min_od_distance:
            pairs.append((a, b))
    if len(pairs) < config.n_od_pairs:
        raise RuntimeError(
            "could not find enough OD pairs at the requested separation; "
            "lower min_od_distance or enlarge the network"
        )
    return pairs


def build_scenario(config: ScenarioConfig = ScenarioConfig()) -> Scenario:
    """Generate network, demand model, archive and query cases.

    Raises:
        RuntimeError: When the network cannot support the requested OD
            separations.
    """
    rng = np.random.default_rng(config.seed)
    network = grid_city(config.grid, rng)

    od_pairs = _pick_od_pairs(network, config, rng)
    od_routes: List[List[Route]] = []
    route_probabilities: List[np.ndarray] = []
    for source, target in od_pairs:
        routes = alternative_routes(network, source, target, config.routes_per_od, rng)
        if not routes:
            continue
        od_routes.append(routes)
        route_probabilities.append(zipf_weights(len(routes), config.zipf_s))
    if not od_routes:
        raise RuntimeError("no routable OD pairs were generated")

    interval_weights = np.array(config.archive_interval_weights)
    archive = TrajectoryArchive()
    traj_id = 0

    def simulate_trip(route: Route, interval: float) -> Trajectory:
        nonlocal traj_id
        start = float(rng.uniform(0.0, 86_400.0))
        drive = drive_route(
            network,
            route,
            traj_id,
            start_time=start,
            config=DriveConfig(
                sample_interval_s=interval,
                gps_sigma_m=config.gps_sigma,
            ),
            rng=rng,
        )
        traj_id += 1
        return drive.trajectory

    # Demand-model trips: OD uniform, route Zipf, interval from the mixture.
    for __ in range(config.n_archive_trips):
        od_idx = int(rng.integers(len(od_routes)))
        route_idx = int(rng.choice(len(od_routes[od_idx]), p=route_probabilities[od_idx]))
        interval = float(rng.choice(config.archive_intervals, p=interval_weights))
        archive.add(simulate_trip(od_routes[od_idx][route_idx], interval))

    # Background noise: random short ODs, random routes.
    node_ids = [n.node_id for n in network.nodes()]
    added = 0
    while added < config.n_background_trips:
        a, b = rng.choice(node_ids, size=2, replace=False)
        routes = alternative_routes(network, int(a), int(b), 1, rng)
        if not routes:
            continue
        interval = float(rng.choice(config.archive_intervals, p=interval_weights))
        archive.add(simulate_trip(routes[0], interval))
        added += 1

    # Query cases: same demand model, high-rate sampling, exact ground truth.
    queries: List[QueryCase] = []
    for __ in range(config.n_queries):
        od_idx = int(rng.integers(len(od_routes)))
        route_idx = int(rng.choice(len(od_routes[od_idx]), p=route_probabilities[od_idx]))
        route = od_routes[od_idx][route_idx]
        drive = drive_route(
            network,
            route,
            traj_id,
            start_time=float(rng.uniform(0.0, 86_400.0)),
            config=DriveConfig(
                sample_interval_s=config.query_interval,
                gps_sigma_m=config.gps_sigma,
            ),
            rng=rng,
        )
        traj_id += 1
        queries.append(QueryCase(query=drive.trajectory, truth=drive.route))

    return Scenario(
        network=network,
        archive=archive,
        od_routes=od_routes,
        route_probabilities=route_probabilities,
        queries=queries,
        config=config,
    )


@dataclass(slots=True)
class LengthScenario:
    """A world with query cases grouped by target route length (Fig. 8b)."""

    network: RoadNetwork
    archive: ArchiveBackend
    cases_by_length: dict


def build_length_scenario(
    lengths_m: Sequence[float],
    queries_per_length: int = 4,
    ods_per_length: int = 2,
    trips_per_od: int = 20,
    routes_per_od: int = 3,
    zipf_s: float = 1.5,
    length_tolerance: float = 0.2,
    grid: Optional[GridCityConfig] = None,
    seed: int = 97,
) -> LengthScenario:
    """Build a large-extent world with queries at controlled route lengths.

    Used by the query-length experiment (the paper's Fig. 8b, 10–30 km):
    for every target length, OD pairs whose fastest route falls within
    ``length_tolerance`` of the target are selected, populated with archive
    demand and queried.

    Raises:
        RuntimeError: When no OD pair matching a target length exists on
            the generated network (enlarge the grid).
    """
    rng = np.random.default_rng(seed)
    grid = grid if grid is not None else GridCityConfig(
        nx=20, ny=20, spacing=1_500.0, arterial_every=4, drop_fraction=0.05
    )
    network = grid_city(grid, rng)
    node_ids = [n.node_id for n in network.nodes()]
    archive = TrajectoryArchive()
    interval_choices = (30.0, 60.0, 120.0, 300.0)
    interval_weights = np.array((0.25, 0.30, 0.30, 0.15))
    cases_by_length: dict = {}
    traj_id = 0

    def add_trip(route: Route, interval: float) -> None:
        nonlocal traj_id
        drive = drive_route(
            network,
            route,
            traj_id,
            start_time=float(rng.uniform(0.0, 86_400.0)),
            config=DriveConfig(sample_interval_s=interval, gps_sigma_m=15.0),
            rng=rng,
        )
        archive.add(drive.trajectory)
        traj_id += 1

    for target in lengths_m:
        found = []
        attempts = 0
        while len(found) < ods_per_length and attempts < 400:
            attempts += 1
            a, b = rng.choice(node_ids, size=2, replace=False)
            a, b = int(a), int(b)
            separation = network.node(a).point.distance_to(network.node(b).point)
            # Grid routes run ~1.2-1.5x the straight line; pre-filter.
            if not (target / 1.7 <= separation <= target / 1.02):
                continue
            routes = alternative_routes(network, a, b, routes_per_od, rng)
            if not routes:
                continue
            if abs(routes[0].length(network) - target) > length_tolerance * target:
                continue
            found.append(routes)
        if not found:
            raise RuntimeError(
                f"no OD pair with a ~{target:.0f} m fastest route; enlarge "
                "the network"
            )

        probs = [zipf_weights(len(routes), zipf_s) for routes in found]
        for routes, p in zip(found, probs):
            for __ in range(trips_per_od):
                idx = int(rng.choice(len(routes), p=p))
                interval = float(rng.choice(interval_choices, p=interval_weights))
                add_trip(routes[idx], interval)

        cases = []
        for q in range(queries_per_length):
            od_idx = q % len(found)
            routes = found[od_idx]
            idx = int(rng.choice(len(routes), p=probs[od_idx]))
            drive = drive_route(
                network,
                routes[idx],
                traj_id,
                start_time=float(rng.uniform(0.0, 86_400.0)),
                config=DriveConfig(sample_interval_s=15.0, gps_sigma_m=15.0),
                rng=rng,
            )
            traj_id += 1
            cases.append(QueryCase(query=drive.trajectory, truth=drive.route))
        cases_by_length[float(target)] = cases

    return LengthScenario(
        network=network, archive=archive, cases_by_length=cases_by_length
    )
