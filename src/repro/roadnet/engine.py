"""The batched inference routing engine: ALT search behind shared caches.

One :class:`RoutingEngine` lives inside each :class:`~repro.core.system.HRIS`
instance and is threaded through every component that touches the road
network on the hot path — the traverse-graph construction, NNI's endpoint
checks and walk matching, route scoring, global stitching and the
shortest-path fallback.  It bundles:

* a :class:`~repro.roadnet.shortest_path.LandmarkIndex` feeding the ALT
  lower bound into every A* run,
* a segment-pair **route cache** — the same corridor bridges are rebuilt
  constantly across query pairs and across queries of a batch,
* a **candidate-edge cache** — reference points recur across pairs/queries
  and their Definition 5 lookups dominate the profile,
* a **reference-support cache** — the traversed-segment set of a reference
  is needed by both the traverse graph and the scoring stage, and
* an LRU-bounded :class:`~repro.roadnet.shortest_path.DistanceOracle`.

Every cache is exact-keyed, so engine-backed inference returns bit-identical
results to the uncached seed code path; the engine only changes *when* work
is done, never *what* is computed.  All state is read-only after warmup from
the caller's perspective, and fork-shared by the batch worker pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geo.point import Point
from repro.roadnet.cache import CacheStats, LRUCache
from repro.roadnet.contraction import (
    CHBucketOracle,
    ContractionHierarchy,
    ch_shortest_route_between_nodes,
    ch_shortest_route_between_segments,
)
from repro.roadnet.network import CandidateEdge, RoadNetwork
from repro.roadnet.route import Route
from repro.roadnet.shortest_path import (
    DistanceOracle,
    LandmarkIndex,
    SearchStats,
    shortest_route_between_nodes,
    shortest_route_between_segments,
)
from repro.roadnet.table_oracle import DistanceTableOracle

__all__ = [
    "EngineConfig",
    "EngineStats",
    "RoutingEngine",
    "SHORTEST_PATHS",
    "TRANSITION_ORACLES",
]

#: The oracle kind serving matcher transition lookups (see ``EngineConfig``).
TRANSITION_ORACLES = ("per_pair", "table", "ch_buckets")

#: The algorithm behind residual single-pair route searches.
SHORTEST_PATHS = ("astar", "bidi", "ch")


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Cache and heuristic knobs of the routing engine.

    Attributes:
        n_landmarks: Landmarks of the ALT index (0 disables ALT — A* falls
            back to the euclidean bound, the seed heuristic).
        route_cache_size: Entries of the segment-pair route cache
            (0 disables).
        candidate_cache_size: Entries of the candidate-edge cache.
        support_cache_size: Entries of the reference-support cache.
        oracle_sources: Source tables/rows held by each distance oracle.
        oracle_max_distance: Search bound of the engine's own oracle.
        transition_oracle: ``"per_pair"`` (one full bounded Dijkstra per
            source, the seed discipline), ``"table"`` (many-to-many
            frontier sweeps via
            :class:`~repro.roadnet.table_oracle.DistanceTableOracle`) or
            ``"ch_buckets"`` (bucket joins over a contraction hierarchy
            via :class:`~repro.roadnet.contraction.CHBucketOracle`).
            Results are bit-identical; only the work differs.
        shortest_path: The algorithm behind residual single-pair route
            searches: ``"astar"`` (unidirectional ALT A*, the seed
            discipline), ``"bidi"`` (meet-in-the-middle
            :func:`~repro.roadnet.shortest_path.bidi_astar`) or ``"ch"``
            (contraction-hierarchy queries with stall-on-demand).
            Identical routes in every case.
        bidirectional: Legacy alias: with ``shortest_path="astar"`` this
            selects the bidirectional search, exactly as before the
            ``shortest_path`` knob existed.  Ignored for the other values.
    """

    n_landmarks: int = 8
    route_cache_size: int = 65_536
    candidate_cache_size: int = 65_536
    support_cache_size: int = 16_384
    oracle_sources: int = 2_048
    oracle_max_distance: float = math.inf
    transition_oracle: str = "per_pair"
    shortest_path: str = "astar"
    bidirectional: bool = False

    def __post_init__(self) -> None:
        if self.transition_oracle not in TRANSITION_ORACLES:
            raise ValueError(
                f"unknown transition_oracle {self.transition_oracle!r}"
            )
        if self.shortest_path not in SHORTEST_PATHS:
            raise ValueError(f"unknown shortest_path {self.shortest_path!r}")

    @property
    def route_method(self) -> str:
        """The effective single-pair algorithm (resolving the legacy flag)."""
        if self.shortest_path == "astar" and self.bidirectional:
            return "bidi"
        return self.shortest_path

    @property
    def needs_hierarchy(self) -> bool:
        return self.route_method == "ch" or self.transition_oracle == "ch_buckets"


@dataclass(slots=True)
class EngineStats:
    """A snapshot of every engine counter (all deltas are per-snapshot).

    ``oracle`` aggregates the source-row hit/miss/eviction counters of
    *every* engine-owned transition oracle (one per distinct search bound),
    so matcher transition traffic shows up here — the seed engine kept a
    private, never-used oracle and reported zeros.  ``sweeps`` and
    ``fallback_searches`` are non-zero only for the table and bucket
    oracles: frontier sweeps / forward upward searches run and stray
    single-pair fallbacks taken.  ``ch_stalls`` counts stall-on-demand
    prunes of the contraction-hierarchy searches (zero for the other
    tiers).
    """

    route_cache: CacheStats = field(default_factory=CacheStats)
    candidate_cache: CacheStats = field(default_factory=CacheStats)
    support_cache: CacheStats = field(default_factory=CacheStats)
    oracle: CacheStats = field(default_factory=CacheStats)
    searches: int = 0
    settled_nodes: int = 0
    landmarks: int = 0
    sweeps: int = 0
    fallback_searches: int = 0
    ch_stalls: int = 0

    def delta(self, earlier: "EngineStats") -> "EngineStats":
        return EngineStats(
            route_cache=self.route_cache.delta(earlier.route_cache),
            candidate_cache=self.candidate_cache.delta(earlier.candidate_cache),
            support_cache=self.support_cache.delta(earlier.support_cache),
            oracle=self.oracle.delta(earlier.oracle),
            searches=self.searches - earlier.searches,
            settled_nodes=self.settled_nodes - earlier.settled_nodes,
            landmarks=self.landmarks,
            sweeps=self.sweeps - earlier.sweeps,
            fallback_searches=self.fallback_searches - earlier.fallback_searches,
            ch_stalls=self.ch_stalls - earlier.ch_stalls,
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat counter mapping for reports and the benchmark JSON."""
        out: Dict[str, float] = {
            "searches": self.searches,
            "settled_nodes": self.settled_nodes,
            "landmarks": self.landmarks,
            "sweeps": self.sweeps,
            "fallback_searches": self.fallback_searches,
            "ch_stalls": self.ch_stalls,
        }
        for name, cache in (
            ("route_cache", self.route_cache),
            ("candidate_cache", self.candidate_cache),
            ("support_cache", self.support_cache),
            ("oracle", self.oracle),
        ):
            out[f"{name}_hits"] = cache.hits
            out[f"{name}_misses"] = cache.misses
            out[f"{name}_evictions"] = cache.evictions
        return out


class RoutingEngine:
    """Shared routing services for one HRIS instance (or one batch worker)."""

    def __init__(
        self,
        network: RoadNetwork,
        config: EngineConfig = EngineConfig(),
        landmarks: Optional[LandmarkIndex] = None,
        hierarchy: Optional[ContractionHierarchy] = None,
    ) -> None:
        """Args:
            landmarks: Optional prebuilt (e.g. persisted and reloaded)
                landmark index to reuse.  Ignored when
                ``config.n_landmarks == 0`` — that explicitly disables ALT.
            hierarchy: Optional prebuilt (e.g. persisted and reloaded)
                contraction hierarchy to reuse.  Only consulted when the
                config selects a CH tier; built on demand otherwise absent.
        """
        self._network = network
        self._config = config
        if config.n_landmarks <= 0:
            self._landmarks = None
        elif landmarks is not None:
            self._landmarks = landmarks
        else:
            self._landmarks = LandmarkIndex.build(network, config.n_landmarks)
        self._hierarchy = hierarchy
        self._route_cache: "LRUCache[Tuple[int, int], Tuple[float, Route]]" = LRUCache(
            config.route_cache_size
        )
        self._node_route_cache: "LRUCache[Tuple[int, int], Tuple[float, Route]]" = (
            LRUCache(config.route_cache_size)
        )
        self._candidate_cache: "LRUCache[Tuple[float, float, float], Tuple[CandidateEdge, ...]]" = LRUCache(
            config.candidate_cache_size
        )
        self._support_cache: "LRUCache[Tuple[Tuple[Point, ...], float], frozenset]" = (
            LRUCache(config.support_cache_size)
        )
        self._search_stats = SearchStats()
        # One transition oracle per distinct search bound: the bound is part
        # of each matcher's model, so oracles are keyed by it and all feed
        # the same aggregated stats.
        self._transition_oracles: Dict[float, object] = {}
        self._oracle = self.transition_oracle(config.oracle_max_distance)

    # ------------------------------------------------------------ properties

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def landmarks(self) -> Optional[LandmarkIndex]:
        return self._landmarks

    @property
    def hierarchy(self) -> Optional[ContractionHierarchy]:
        """The engine's contraction hierarchy.

        Built on first access when the config selects a CH tier; ``None``
        for the other tiers (nothing is contracted that is never queried).
        """
        if self._hierarchy is None and self._config.needs_hierarchy:
            self._hierarchy = ContractionHierarchy.build(self._network)
        return self._hierarchy

    @property
    def oracle(self):
        """The engine's own distance oracle (at ``oracle_max_distance``)."""
        return self._oracle

    def transition_oracle(self, max_distance: float = math.inf):
        """The engine-owned transition oracle for one search bound.

        Matchers fetch their oracle here instead of building a private
        :class:`DistanceOracle`, so the oracle kind follows
        ``config.transition_oracle`` and all hit/miss/sweep counters land
        in :meth:`stats`.  One oracle is kept per distinct ``max_distance``
        (the bound is part of each matcher's model) and shared by every
        component using that bound.
        """
        oracle = self._transition_oracles.get(max_distance)
        if oracle is None:
            if self._config.transition_oracle == "ch_buckets":
                oracle = CHBucketOracle(
                    self._network,
                    self.hierarchy,
                    max_distance=max_distance,
                    max_rows=self._config.oracle_sources,
                    landmarks=self._landmarks,
                    search_stats=self._search_stats,
                )
            elif self._config.transition_oracle == "table":
                oracle = DistanceTableOracle(
                    self._network,
                    max_distance=max_distance,
                    max_rows=self._config.oracle_sources,
                    landmarks=self._landmarks,
                    search_stats=self._search_stats,
                )
            else:
                oracle = DistanceOracle(
                    self._network,
                    max_distance=max_distance,
                    max_sources=self._config.oracle_sources,
                )
            self._transition_oracles[max_distance] = oracle
        return oracle

    # --------------------------------------------------------------- routing

    def shortest_route_between_segments(
        self, from_segment: int, to_segment: int
    ) -> Tuple[float, Route]:
        """Cached segment-to-segment shortest route (tier per config)."""
        if self._config.route_method == "ch":
            return self._route_cache.get_or_compute(
                (from_segment, to_segment),
                lambda: ch_shortest_route_between_segments(
                    self._network,
                    self.hierarchy,
                    from_segment,
                    to_segment,
                    landmarks=self._landmarks,
                    stats=self._search_stats,
                ),
            )
        return self._route_cache.get_or_compute(
            (from_segment, to_segment),
            lambda: shortest_route_between_segments(
                self._network,
                from_segment,
                to_segment,
                landmarks=self._landmarks,
                stats=self._search_stats,
                bidirectional=self._config.route_method == "bidi",
            ),
        )

    def shortest_route_between_nodes(
        self, source: int, target: int
    ) -> Tuple[float, Route]:
        """Cached node-to-node shortest route (tier per config)."""
        if self._config.route_method == "ch":
            return self._node_route_cache.get_or_compute(
                (source, target),
                lambda: ch_shortest_route_between_nodes(
                    self._network,
                    self.hierarchy,
                    source,
                    target,
                    landmarks=self._landmarks,
                    stats=self._search_stats,
                ),
            )
        return self._node_route_cache.get_or_compute(
            (source, target),
            lambda: shortest_route_between_nodes(
                self._network,
                source,
                target,
                landmarks=self._landmarks,
                stats=self._search_stats,
                bidirectional=self._config.route_method == "bidi",
            ),
        )

    def distance(self, source: int, target: int) -> float:
        """Node-to-node network distance via the shared oracle."""
        return self._oracle.distance(source, target)

    # -------------------------------------------------------------- geometry

    def candidate_edges(self, p: Point, epsilon: float) -> List[CandidateEdge]:
        """Cached Definition 5 lookup (exact same result as the network's).

        A fresh list is returned so callers may slice or extend it freely;
        the cached tuple itself is immutable.
        """
        cached = self._candidate_cache.get_or_compute(
            (p.x, p.y, epsilon),
            lambda: tuple(self._network.candidate_edges(p, epsilon)),
        )
        return list(cached)

    def traversed_segments(self, reference, candidate_radius: float) -> frozenset:
        """Cached traversed-segment set of a reference.

        Keyed by the reference's point tuple (references are re-identified
        per search call, but their geometry recurs across pairs, queries and
        the scoring stage).
        """
        from repro.core.reference import reference_traversed_segments

        return self._support_cache.get_or_compute(
            (reference.points, candidate_radius),
            lambda: frozenset(
                reference_traversed_segments(
                    self._network,
                    reference,
                    candidate_radius,
                    candidate_lookup=self.candidate_edges,
                )
            ),
        )

    # ------------------------------------------------------------ accounting

    def stats(self) -> EngineStats:
        """A point-in-time snapshot of all engine counters."""
        oracle_stats = CacheStats()
        settled = self._search_stats.settled
        stalls = self._search_stats.stalls
        sweeps = 0
        fallbacks = 0
        for oracle in self._transition_oracles.values():
            snap = oracle.stats
            oracle_stats.hits += snap.hits
            oracle_stats.misses += snap.misses
            oracle_stats.evictions += snap.evictions
            settled += oracle.settled_nodes
            sweeps += getattr(oracle, "sweeps", 0)
            fallbacks += getattr(oracle, "fallbacks", 0)
            stalls += getattr(oracle, "stalls", 0)
        return EngineStats(
            route_cache=self._route_cache.stats.snapshot(),
            candidate_cache=self._candidate_cache.stats.snapshot(),
            support_cache=self._support_cache.stats.snapshot(),
            oracle=oracle_stats,
            searches=self._search_stats.searches,
            settled_nodes=settled,
            landmarks=len(self._landmarks) if self._landmarks else 0,
            sweeps=sweeps,
            fallback_searches=fallbacks,
            ch_stalls=stalls,
        )

    def prepare_for_fork(self) -> None:
        """Compact mutable oracle state before a batch pool forks.

        Table-oracle rows seal their pending heaps into tuples so workers
        share the warmed rows copy-on-write; the contraction hierarchy
        completes its bucket cache so workers join instead of rebuilding;
        per-pair oracles have nothing to seal.  Results-neutral either way.
        """
        for oracle in self._transition_oracles.values():
            seal = getattr(oracle, "prepare_for_fork", None)
            if seal is not None:
                seal()
        if self._hierarchy is not None:
            self._hierarchy.prepare_for_fork()

    def clear_caches(self) -> None:
        """Drop cached values (landmark tables are kept — they are exact)."""
        self._route_cache.clear()
        self._node_route_cache.clear()
        self._candidate_cache.clear()
        self._support_cache.clear()
        for oracle in self._transition_oracles.values():
            oracle.clear()
