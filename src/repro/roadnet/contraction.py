"""Contraction hierarchies: offline preprocessing for near-constant queries.

The routing tiers so far (ALT, bidirectional ALT, PHAST-style table
sweeps) all pay per-query work proportional to the searched ball.  A
contraction hierarchy moves that work offline: nodes are *contracted* one
by one in importance order, inserting *shortcut* edges that preserve all
shortest-path distances among the remaining nodes.  Afterwards every
shortest path has an up-down representation — it climbs to a single peak
along edges into higher-ranked nodes, then descends — so a query only
explores the two tiny upward search spaces.

Three pieces live here:

* :class:`ContractionHierarchy` — the preprocessing (edge-difference
  ordering with lazy updates and a deterministic node-id tie-break,
  bounded witness searches, shortcuts recording their contracted middle
  node), the upward/downward adjacency, per-node backward search spaces
  (*buckets*), and shortcut unpacking back to original edges.
* :func:`ch_shortest_path` / the route helpers — point-to-point queries
  with stall-on-demand whose distance **and node path are bit-identical
  to** :func:`~repro.roadnet.shortest_path.dijkstra`: the canonical
  min-id predecessor chain is reconstructed by a backward walk validated
  through exact left-to-right re-accumulated labels (unpacked from the
  hierarchy), with the same fall-back discipline ``bidi_astar`` uses
  when float round-off defeats the stitching.
* :class:`CHBucketOracle` — a bucket-based many-to-many backend with the
  exact ``prepare`` / ``table`` / ``distance`` surface of
  :class:`~repro.roadnet.table_oracle.DistanceTableOracle`: backward
  upward spaces deposit per-target buckets, one forward upward search
  per source row joins them, and every served distance is unpacked and
  re-accumulated left-to-right so it bit-matches the ``dijkstra_all``
  tables.

Why re-accumulation makes the floats exact: a settled Dijkstra label is
the minimum over paths of the *left-to-right* float sum of edge weights.
Shortcut weights are sums in contraction order, so hierarchy-space labels
can drift by ulps; instead of returning them, every distance handed out
is recomputed left-to-right along the unpacked original-edge path — on
tie-free networks that path is the unique shortest path, and on tie-heavy
integral grids every optimal path sums exactly, so the result is the seed
float in both regimes (the residual adversarial-tie risk is exactly the
one ``bidi_astar`` already accepts, and the canonical walk falls back to
the unidirectional search when it bites).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.roadnet.cache import LRUCache
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route
from repro.roadnet.shortest_path import (
    LandmarkIndex,
    SearchStats,
    _min_in_edges,
    _search,
    combined_heuristic,
    node_path_to_route,
)

__all__ = [
    "ContractionHierarchy",
    "CHBucketOracle",
    "ch_shortest_path",
    "ch_shortest_route_between_nodes",
    "ch_shortest_route_between_segments",
]

#: Witness searches stop after settling this many nodes; an inconclusive
#: search conservatively inserts the shortcut (correct, just denser).
WITNESS_SETTLE_LIMIT = 500

#: Witness paths longer than this many hops are not searched for.
WITNESS_HOP_LIMIT = 16

#: Candidate filter of the canonical walk: hierarchy-space label sums are
#: compared with this *relative* slack before the exact unpacked label is
#: computed.  Purely a performance filter — equality is always decided on
#: the exact left-to-right floats — but it must comfortably exceed the few
#: ulps of drift a handful of float additions can introduce.
_LABEL_FILTER_RTOL = 1e-9

_NO_MIDDLE = -1


def _build_base_graph(
    network: RoadNetwork,
) -> Tuple[Dict[int, Dict[int, float]], Dict[int, Dict[int, float]]]:
    """Adjacency of the min-parallel-weight simple digraph.

    Parallel segments collapse to their cheapest weight — the same
    discipline as ``_min_in_edges`` and ``cheapest_segment_between``, so
    unpacked hierarchy paths re-accumulate to the seed floats.
    """
    out_adj: Dict[int, Dict[int, float]] = {n.node_id: {} for n in network.nodes()}
    in_adj: Dict[int, Dict[int, float]] = {n.node_id: {} for n in network.nodes()}
    for seg in network.segments():
        w = seg.length
        if w < out_adj[seg.start].get(seg.end, math.inf):
            out_adj[seg.start][seg.end] = w
            in_adj[seg.end][seg.start] = w
    return out_adj, in_adj


def _witness_search(
    out_adj: Dict[int, Dict[int, float]],
    source: int,
    targets: Iterable[int],
    excluded: int,
    cutoff: float,
    settle_limit: int,
    hop_limit: int,
) -> Dict[int, float]:
    """Bounded Dijkstra from ``source`` avoiding ``excluded``.

    Returns the distances of the targets it managed to settle within the
    limits; callers treat an absent target as "no witness found" and
    insert the shortcut, which is always safe.
    """
    dist: Dict[int, float] = {source: 0.0}
    hops: Dict[int, int] = {source: 0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled: set = set()
    remaining = set(targets)
    found: Dict[int, float] = {}
    budget = settle_limit
    while heap and remaining and budget > 0:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if d > cutoff:
            break
        settled.add(u)
        budget -= 1
        if u in remaining:
            found[u] = d
            remaining.discard(u)
            if not remaining:
                break
        hu = hops[u]
        if hu >= hop_limit:
            continue
        for v, w in out_adj[u].items():
            if v == excluded:
                continue
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                hops[v] = hu + 1
                heapq.heappush(heap, (nd, v))
    return found


class ContractionHierarchy:
    """A contracted road network: node ranks, shortcut edges, buckets.

    Built offline by :meth:`build` (or reloaded from the ``repro-ch-v1``
    persistence, see :mod:`repro.roadnet.io`); immutable afterwards apart
    from the lazily filled per-node bucket cache, which
    :meth:`prepare_for_fork` completes so forked batch workers share it
    copy-on-write.

    The stored state is just ``rank`` (contraction order per node) and
    ``edges`` (``(u, v) -> (weight, middle)``, middle ``-1`` for original
    edges); the upward/downward adjacency is derived.
    """

    def __init__(
        self, rank: Dict[int, int], edges: Dict[Tuple[int, int], Tuple[float, int]]
    ) -> None:
        self._rank = dict(rank)
        self._edges = dict(edges)
        up: Dict[int, List[Tuple[int, float]]] = {}
        down_in: Dict[int, List[Tuple[int, float]]] = {}
        for (a, b), (w, __) in self._edges.items():
            if self._rank[b] > self._rank[a]:
                up.setdefault(a, []).append((b, w))
            else:
                down_in.setdefault(b, []).append((a, w))
        # Ascending neighbour id: the canonical, reproducible scan order.
        self._up: Dict[int, Tuple[Tuple[int, float], ...]] = {
            u: tuple(sorted(vs)) for u, vs in up.items()
        }
        self._down_in: Dict[int, Tuple[Tuple[int, float], ...]] = {
            v: tuple(sorted(us)) for v, us in down_in.items()
        }
        # node -> {peak: (distance, parent-toward-node)} — the backward
        # upward search space, i.e. the many-to-many bucket entries.
        self._buckets: Dict[int, Dict[int, Tuple[float, int]]] = {}
        self.bucket_builds = 0
        self.bucket_settled = 0

    # ------------------------------------------------------------ building

    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        witness_settle_limit: int = WITNESS_SETTLE_LIMIT,
        witness_hop_limit: int = WITNESS_HOP_LIMIT,
    ) -> "ContractionHierarchy":
        """Contract every node in edge-difference order.

        The priority queue holds ``(edge_difference, node_id)`` pairs, so
        ties break towards the smaller node id; priorities are lazily
        re-evaluated on pop (contracting neighbours changes them) and the
        node is re-queued when it no longer wins.  Deterministic: building
        twice yields the identical hierarchy.
        """
        out_adj, in_adj = _build_base_graph(network)
        edges: Dict[Tuple[int, int], Tuple[float, int]] = {}
        for u, nbrs in out_adj.items():
            for v, w in nbrs.items():
                edges[(u, v)] = (w, _NO_MIDDLE)

        def shortcuts_for(v: int) -> List[Tuple[int, int, float]]:
            ins = sorted((u, w) for u, w in in_adj[v].items() if u != v)
            outs = sorted((w_node, w) for w_node, w in out_adj[v].items() if w_node != v)
            needed: List[Tuple[int, int, float]] = []
            for u, w_uv in ins:
                cutoffs = {t: w_uv + w_vt for t, w_vt in outs if t != u}
                if not cutoffs:
                    continue
                found = _witness_search(
                    out_adj,
                    u,
                    cutoffs,
                    v,
                    max(cutoffs.values()),
                    witness_settle_limit,
                    witness_hop_limit,
                )
                for t, sw in cutoffs.items():
                    d = found.get(t)
                    if d is not None and d <= sw:
                        continue  # a witness path avoids v
                    needed.append((u, t, sw))
            return needed

        def priority(v: int) -> int:
            removed = len(in_adj[v]) + len(out_adj[v])
            return len(shortcuts_for(v)) - removed

        heap: List[Tuple[int, int]] = [
            (priority(v), v) for v in sorted(out_adj)
        ]
        heapq.heapify(heap)
        rank: Dict[int, int] = {}
        while heap:
            __, v = heapq.heappop(heap)
            if v in rank:
                continue
            entry = (priority(v), v)  # lazy update: neighbours may have changed
            if heap and entry > heap[0]:
                heapq.heappush(heap, entry)
                continue
            for u, t, sw in shortcuts_for(v):
                if sw < out_adj[u].get(t, math.inf):
                    out_adj[u][t] = sw
                    in_adj[t][u] = sw
                    edges[(u, t)] = (sw, v)
            for u in in_adj.pop(v):
                if u != v:
                    out_adj[u].pop(v, None)
            for t in out_adj.pop(v):
                if t != v:
                    in_adj[t].pop(v, None)
            rank[v] = len(rank)
        return cls(rank, edges)

    # ---------------------------------------------------------- inspection

    @property
    def rank(self) -> Dict[int, int]:
        """Contraction order per node (higher = more important)."""
        return self._rank

    @property
    def edges(self) -> Dict[Tuple[int, int], Tuple[float, int]]:
        """``(u, v) -> (weight, middle)``; middle is -1 for original edges."""
        return self._edges

    @property
    def num_nodes(self) -> int:
        return len(self._rank)

    @property
    def num_shortcuts(self) -> int:
        return sum(1 for __, mid in self._edges.values() if mid != _NO_MIDDLE)

    def matches(self, network: RoadNetwork) -> bool:
        """Cheap structural check that this hierarchy covers ``network``."""
        return set(self._rank) == {n.node_id for n in network.nodes()}

    # ------------------------------------------------------------ searches

    def forward_space(
        self,
        source: int,
        max_distance: float = math.inf,
        stats: Optional[SearchStats] = None,
    ) -> Tuple[Dict[int, float], Dict[int, int]]:
        """The forward upward search space of ``source``.

        Upward Dijkstra with stall-on-demand (strict ``<`` test against
        the opposite-direction adjacency, so nodes whose upward label is
        already optimal — in particular every query's peak — are never
        pruned).  Stalled nodes keep their label in the returned dict
        (harmless for joins: every label is a real path length) but are
        not relaxed.

        Returns ``(dist, parent)``; ``parent`` maps each reached node to
        its predecessor on the upward tree path from ``source``.
        """
        return self._upward_search(
            source, self._up, self._down_in, max_distance, stats
        )

    def pruned_forward_space(
        self,
        source: int,
        bucket: Dict[int, Tuple[float, int]],
        max_distance: float = math.inf,
        stats: Optional[SearchStats] = None,
    ) -> Tuple[Dict[int, float], Dict[int, int]]:
        """Forward upward space pruned by one target's bucket.

        Identical labels and parents to :meth:`forward_space` for every
        node it settles, but the search joins each settled node against
        ``bucket`` as it goes and stops once the queue minimum *strictly*
        exceeds the best join found — the standard CH stopping criterion.
        Because the stop test is strict and bucket distances are
        non-negative, every node whose upward distance is ``<=`` the
        final best join is still settled, so the join minimum, its
        min-peak-id tie-break, and the labels of every node on a
        canonical shortest path are exactly those of the unpruned space.
        """
        return self._upward_search(
            source, self._up, self._down_in, max_distance, stats, bucket
        )

    def bucket(self, target: int) -> Dict[int, Tuple[float, int]]:
        """The backward upward space of ``target`` — its bucket entries.

        Maps each node ``v`` that can reach ``target`` descending from a
        peak to ``(distance v->target, parent)`` where ``parent`` is the
        next hierarchy node towards ``target``.  Built once per node and
        cached: bucket work is preprocessing (a pure function of the
        hierarchy, tallied in ``bucket_settled``), never query work.
        """
        entries = self._buckets.get(target)
        if entries is None:
            dist, parent = self._upward_search(
                target, self._down_in, self._up, math.inf, None
            )
            entries = {v: (d, parent.get(v, target)) for v, d in dist.items()}
            self._buckets[target] = entries
            self.bucket_builds += 1
            self.bucket_settled += len(entries)
        return entries

    def cached_bucket(self, target: int) -> Optional[Dict[int, Tuple[float, int]]]:
        """``target``'s bucket if already built, else ``None`` (no build)."""
        return self._buckets.get(target)

    def _upward_search(
        self,
        source: int,
        adj: Dict[int, Tuple[Tuple[int, float], ...]],
        stall_adj: Dict[int, Tuple[Tuple[int, float], ...]],
        max_distance: float,
        stats: Optional[SearchStats],
        bucket: Optional[Dict[int, Tuple[float, int]]] = None,
    ) -> Tuple[Dict[int, float], Dict[int, int]]:
        # This is the innermost loop of every hierarchy operation (rows,
        # buckets, queries), so the dict/heap methods are bound to locals.
        dist: Dict[int, float] = {source: 0.0}
        parent: Dict[int, int] = {}
        settled: Dict[int, float] = {}
        best_join = math.inf
        heap: List[Tuple[float, int]] = [(0.0, source)]
        pop = heapq.heappop
        push = heapq.heappush
        dist_get = dist.get
        adj_get = adj.get
        stall_get = stall_adj.get
        bucket_get = None if bucket is None else bucket.get
        inf = math.inf
        empty: Tuple[Tuple[int, float], ...] = ()
        while heap:
            d, u = pop(heap)
            if u in settled:
                continue
            if d > max_distance or d > best_join:
                break
            settled[u] = d
            if bucket_get is not None:
                # Stalled labels join too (they are real path lengths and
                # the unpruned space keeps them), so update before the
                # stall check.
                entry = bucket_get(u)
                if entry is not None and d + entry[0] < best_join:
                    best_join = d + entry[0]
            stalled = False
            for w, weight in stall_get(u, empty):
                dw = dist_get(w)
                if dw is not None and dw + weight < d:
                    stalled = True
                    break
            if stalled:
                # A stalled pop is counted in ``stalls`` only: the label
                # is disproved (a shorter path reaches u through a higher
                # node) and the node's edges are never relaxed, so it is
                # not settled work — just one heap pop and a comparison.
                if stats is not None:
                    stats.stalls += 1
                continue
            if stats is not None:
                stats.settled += 1
            for v, weight in adj_get(u, empty):
                nd = d + weight
                if nd < dist_get(v, inf):
                    dist[v] = nd
                    parent[v] = u
                    push(heap, (nd, v))
        return settled, parent

    # ----------------------------------------------------------- unpacking

    def unpack_edge(self, a: int, b: int, out: List[int]) -> None:
        """Append the original node chain of hierarchy edge ``a -> b``
        (excluding ``a`` itself) to ``out``, recursing through middles."""
        stack = [(a, b)]
        while stack:
            x, y = stack.pop()
            mid = self._edges[(x, y)][1]
            if mid == _NO_MIDDLE:
                out.append(y)
            else:
                stack.append((mid, y))
                stack.append((x, mid))

    def unpack_join(
        self,
        source: int,
        peak: int,
        target: int,
        forward_parent: Dict[int, int],
        bucket: Dict[int, Tuple[float, int]],
    ) -> List[int]:
        """The original node path ``source -> peak -> target`` of one join.

        The up half follows ``forward_parent`` back from ``peak``, the
        down half follows the bucket's parents towards ``target``; every
        hierarchy edge on the way is unpacked to original edges.
        """
        chain = [peak]
        while chain[-1] != source:
            chain.append(forward_parent[chain[-1]])
        chain.reverse()
        x = peak
        while x != target:
            x = bucket[x][1]
            chain.append(x)
        path = [source]
        for a, b in zip(chain, chain[1:]):
            self.unpack_edge(a, b, path)
        return path

    def unpack_join_tree(
        self,
        source: int,
        peak: int,
        target: int,
        forward_parent: Dict[int, int],
        backward_parent: Dict[int, int],
    ) -> List[int]:
        """Like :meth:`unpack_join` with a backward search tree's parents.

        The down half follows ``backward_parent`` (each node's
        predecessor in the backward upward search rooted at ``target``,
        i.e. the next hierarchy node towards it) instead of bucket
        entries — the identical chain, since bucket parents are built
        from the same search.
        """
        chain = [peak]
        while chain[-1] != source:
            chain.append(forward_parent[chain[-1]])
        chain.reverse()
        x = peak
        while x != target:
            x = backward_parent[x]
            chain.append(x)
        path = [source]
        for a, b in zip(chain, chain[1:]):
            self.unpack_edge(a, b, path)
        return path

    # ----------------------------------------------------------- lifecycle

    def prepare_for_fork(self) -> None:
        """Complete the bucket cache before a batch pool forks.

        Buckets are a pure function of the hierarchy; filling the cache
        now lets every forked worker share the entries copy-on-write
        instead of each rebuilding the ones it touches.
        """
        for node in self._rank:
            self.bucket(node)


# --------------------------------------------------------------- queries


def _reaccumulate(network: RoadNetwork, path: Sequence[int]) -> float:
    """Left-to-right float sum along a node path — the seed's exact float."""
    d = 0.0
    for u, v in zip(path, path[1:]):
        sid = network.cheapest_segment_between(u, v)
        d += network.segment(sid).length
    return d


class _ExactLabels:
    """Per-query exact distance labels ``d(source, u)``.

    Joins the query's one forward upward space with each node's cached
    bucket, then *unpacks* the best join and re-accumulates its original
    edges left-to-right — so the label is the float the unidirectional
    search computes, not the hierarchy-space sum.  ``approx`` exposes the
    raw join sum for the walk's cheap candidate filter.
    """

    __slots__ = (
        "_hierarchy",
        "_network",
        "_source",
        "_dist_f",
        "_parent_f",
        "_joins",
        "_exact",
    )

    def __init__(
        self,
        hierarchy: ContractionHierarchy,
        network: RoadNetwork,
        source: int,
        dist_f: Dict[int, float],
        parent_f: Dict[int, int],
    ) -> None:
        self._hierarchy = hierarchy
        self._network = network
        self._source = source
        self._dist_f = dist_f
        self._parent_f = parent_f
        self._joins: Dict[int, Tuple[float, int]] = {}
        self._exact: Dict[int, float] = {}

    def _join(self, u: int) -> Tuple[float, int]:
        """Best ``(hierarchy-space distance, peak)`` join towards ``u``."""
        cached = self._joins.get(u)
        if cached is not None:
            return cached
        dist_f = self._dist_f
        best = math.inf
        best_peak = -1
        for v, (db, __) in self._hierarchy.bucket(u).items():
            df = dist_f.get(v)
            if df is None:
                continue
            j = df + db
            if j < best or (j == best and v < best_peak):
                best = j
                best_peak = v
        result = (best, best_peak)
        self._joins[u] = result
        return result

    def approx(self, u: int) -> float:
        """The raw join sum — drifts from the exact label by ulps at most."""
        return self._join(u)[0]

    def exact(self, u: int) -> float:
        """Left-to-right float distance along the best join, unpacked."""
        cached = self._exact.get(u)
        if cached is not None:
            return cached
        best, best_peak = self._join(u)
        if math.isinf(best):
            d = math.inf
        else:
            path = self._hierarchy.unpack_join(
                self._source, best_peak, u, self._parent_f, self._hierarchy.bucket(u)
            )
            d = _reaccumulate(self._network, path)
        self._exact[u] = d
        return d


def _canonical_ch_path(
    network: RoadNetwork, source: int, target: int, labels: _ExactLabels
) -> Optional[List[int]]:
    """Reconstruct the canonical min-id predecessor chain from CH labels.

    The same backward depth-first walk as ``_canonical_bidi_path``, but
    every candidate is validated through one label form: the exact
    left-to-right float ``d(source, u)`` (see :class:`_ExactLabels`).
    Because a settled Dijkstra label satisfies ``g(prev) + w == g(v)``
    *as floats*, and the exact labels reproduce those g-values whenever
    shortest paths are unique or tie sums are exact, the accepted chain
    is precisely the chain ``dijkstra`` reconstructs.  The cheap
    hierarchy-space filter only skips candidates that are provably off
    by far more than float drift; equality is always decided on the
    exact labels.

    Returns None when no branch closes (adversarial round-off only);
    callers fall back to the unidirectional search.
    """
    path = [target]
    on_path = {target}
    iters = [iter(_min_in_edges(network, target))]
    while iters:
        v = path[-1]
        lv = labels.exact(v)
        advanced = False
        for u, w in iters[-1]:
            if u in on_path:
                continue
            ja = labels.approx(u)
            if math.isinf(ja):
                continue
            if abs(ja + w - lv) > _LABEL_FILTER_RTOL * (abs(lv) + 1.0):
                continue
            if labels.exact(u) + w != lv:
                continue
            if u == source:
                path.append(u)
                path.reverse()
                return path
            path.append(u)
            on_path.add(u)
            iters.append(iter(_min_in_edges(network, u)))
            advanced = True
            break
        if not advanced:
            iters.pop()
            on_path.discard(path.pop())
    return None


def ch_shortest_path(
    network: RoadNetwork,
    hierarchy: ContractionHierarchy,
    source: int,
    target: int,
    max_distance: float = math.inf,
    landmarks: Optional[LandmarkIndex] = None,
    stats: Optional[SearchStats] = None,
) -> Tuple[float, List[int]]:
    """Hierarchy shortest path with the canonical tie-break.

    One stall-on-demand forward upward search from ``source`` joined
    against ``target``'s cached bucket gives the distance; the canonical
    min-id node path is then reconstructed by the exact-label walk, and
    the returned distance is re-accumulated left-to-right along it — the
    identical ``(distance, node_path)`` of
    :func:`~repro.roadnet.shortest_path.dijkstra`.

    The forward search is pruned by the target's bucket (see
    :meth:`ContractionHierarchy.pruned_forward_space`): it stops once the
    queue minimum strictly exceeds the best join found, which settles
    every node the join minimum, the peak tie-break, or the canonical
    walk can consult — so the pruning changes how much is searched, never
    the result.

    As with ``bidi_astar``, ``max_distance`` bounds the *returned*
    distance: pairs farther apart yield ``(inf, [])``, matching the
    membership semantics of ``dijkstra_all`` tables.

    Returns:
        ``(distance, node_path)``; ``(inf, [])`` when unreachable or
        beyond ``max_distance``.
    """
    if source == target:
        return 0.0, [source]
    if stats is not None:
        stats.searches += 1
    dist_f, parent_f = hierarchy.pruned_forward_space(
        source, hierarchy.bucket(target), max_distance, stats
    )
    labels = _ExactLabels(hierarchy, network, source, dist_f, parent_f)
    d = labels.exact(target)
    if math.isinf(d) or d > max_distance:
        return math.inf, []
    path = _canonical_ch_path(network, source, target, labels)
    if path is None:
        # Float round-off defeated the label stitching (possible only on
        # adversarially-tied weights): fall back to the unidirectional
        # search, which is always canonical.
        return _search(
            network,
            source,
            target,
            combined_heuristic(network, target, landmarks),
            math.inf,
            stats,
        )
    return _reaccumulate(network, path), path


def ch_shortest_route_between_nodes(
    network: RoadNetwork,
    hierarchy: ContractionHierarchy,
    source: int,
    target: int,
    landmarks: Optional[LandmarkIndex] = None,
    stats: Optional[SearchStats] = None,
) -> Tuple[float, Route]:
    """Hierarchy counterpart of ``shortest_route_between_nodes``."""
    d, node_path = ch_shortest_path(
        network, hierarchy, source, target, landmarks=landmarks, stats=stats
    )
    if math.isinf(d):
        return math.inf, Route.empty()
    return d, node_path_to_route(network, node_path)


def ch_shortest_route_between_segments(
    network: RoadNetwork,
    hierarchy: ContractionHierarchy,
    from_segment: int,
    to_segment: int,
    landmarks: Optional[LandmarkIndex] = None,
    stats: Optional[SearchStats] = None,
) -> Tuple[float, Route]:
    """Hierarchy counterpart of ``shortest_route_between_segments``.

    Same shape and semantics: the distance is the gap between the two
    segments, the route includes both endpoints, and results are
    identical to the A*/bidirectional tiers.
    """
    if from_segment == to_segment:
        return 0.0, Route.of([from_segment])
    a = network.segment(from_segment)
    b = network.segment(to_segment)
    if a.end == b.start:
        return 0.0, Route.of([from_segment, to_segment])
    d, node_path = ch_shortest_path(
        network, hierarchy, a.end, b.start, landmarks=landmarks, stats=stats
    )
    if math.isinf(d):
        return math.inf, Route.empty()
    bridge = node_path_to_route(network, node_path)
    return d, Route.of([from_segment, *bridge.segment_ids, to_segment])


# ------------------------------------------------------- many-to-many


class _CHRow:
    """One root's resumable upward search (either direction of a join).

    Mirrors the table oracle's ``_Row`` discipline: the upward search is
    not run to completion when the row is created — each served pair
    advances it just far enough (until the frontier minimum strictly
    exceeds that pair's best join), and the settled prefix persists for
    the next pair.  Forward rows are rooted at a source and additionally
    carry the served-distance ``table`` and ``done`` set; backward rows
    are rooted at a target and searched in the reversed upward graph.
    ``settled`` holds the popped labels joins may read (stalled ones
    included, as in the full space); ``dist`` holds tentative labels;
    ``heap`` is the pending frontier, sealed to a tuple by
    ``prepare_for_fork``.
    """

    __slots__ = ("source", "dist", "settled", "parent", "heap", "table", "done")

    def __init__(self, source: int) -> None:
        self.source = source
        self.dist: Dict[int, float] = {source: 0.0}
        self.settled: Dict[int, float] = {}
        self.parent: Dict[int, int] = {}
        self.heap: Union[
            List[Tuple[float, int]], Tuple[Tuple[float, int], ...]
        ] = [(0.0, source)]
        self.table: Dict[int, float] = {}
        self.done: set = set()


class _CHRowView:
    """Read view of one row with lazy coverage (mirrors ``_RowView``).

    ``get`` for a target the row has not served yet computes it via a
    bucket join first, so reads are always exact — absent means
    *unreachable within the bound*, never *not asked yet*.
    """

    __slots__ = ("_oracle", "_row")

    def __init__(self, oracle: "CHBucketOracle", row: _CHRow) -> None:
        self._oracle = oracle
        self._row = row

    def get(self, target: int, default=None):
        row = self._row
        d = row.table.get(target)
        if d is not None:
            return d
        if target not in row.done:
            self._oracle._serve(row, target)
            d = row.table.get(target)
            if d is not None:
                return d
        return default

    def __contains__(self, target: int) -> bool:
        return self.get(target) is not None

    def __getitem__(self, target: int) -> float:
        d = self.get(target)
        if d is None:
            raise KeyError(target)
        return d


class CHBucketOracle:
    """Bucket-based many-to-many distance tables over a hierarchy.

    Drop-in for :class:`~repro.roadnet.table_oracle.DistanceTableOracle`:
    same ``prepare`` / ``table`` / ``distance`` /
    ``route_distance_between_projections`` surface, same LRU row ``stats``
    and fork sealing, and bit-identical distances.  Both sides of every
    join are *resumable upward* searches (the table oracle's lazy-row
    discipline applied twice): a forward row per source, a backward row
    per target, each advanced bidirectionally only until both frontiers
    clear the pair's best join.  Work therefore scales with how far
    apart the served pairs actually are — the locality the matcher's
    consecutive-point tables live off — instead of each target paying
    its complete backward space up front; each served distance is
    unpacked and re-accumulated left-to-right, so it is the exact
    ``dijkstra_all`` float.

    Args:
        network: The road network.
        hierarchy: The contraction hierarchy to query.
        max_distance: Search bound; pairs farther apart read as ``inf``.
        max_rows: Source rows held (None: unbounded).
        landmarks: Optional ALT index accelerating the single-pair
            fallback's canonical-walk fallback.
        search_stats: Optional counters charged by stray-pair fallbacks.
    """

    def __init__(
        self,
        network: RoadNetwork,
        hierarchy: ContractionHierarchy,
        max_distance: float = math.inf,
        max_rows: Optional[int] = 2048,
        landmarks: Optional[LandmarkIndex] = None,
        search_stats: Optional[SearchStats] = None,
    ) -> None:
        self._network = network
        self._hierarchy = hierarchy
        self._max_distance = max_distance
        self._rows: "LRUCache[int, _CHRow]" = LRUCache(max_rows)
        # Backward rows, keyed by target.  Resumable like the forward
        # rows: a target pays backward pops only as far as its joins
        # need, not its whole backward upward space.
        self._back_rows: "LRUCache[int, _CHRow]" = LRUCache(max_rows)
        self._landmarks = landmarks
        self._search_stats = search_stats
        self.settled_nodes = 0
        self.sweeps = 0
        self.stalls = 0
        self.fallbacks = 0

    @property
    def stats(self):
        """Hit/miss/eviction counters of the row cache."""
        return self._rows.stats

    # ------------------------------------------------------------- batching

    def prepare(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Dict[int, float]]:
        """Cover the ``sources x targets`` frontier product.

        One resumable upward search per new source (and per new target,
        backward), one bidirectional join — advancing both rows as far as
        that join needs — per uncovered ``(source, target)`` pair.  As
        with the table oracle,
        the returned mappings are authoritative *for the announced
        targets only* — an absent announced target is unreachable within
        the bound; never-announced targets are simply not in the dict yet
        (use :meth:`table` or :meth:`distance` for those).
        """
        wanted = tuple(dict.fromkeys(targets))
        tables: Dict[int, Dict[int, float]] = {}
        for source in dict.fromkeys(sources):
            row = self._row(source)
            for target in wanted:
                if target not in row.done:
                    self._serve(row, target)
            tables[source] = row.table
        return tables

    def table(self, source: int) -> _CHRowView:
        """The (lazily covered) distance table from ``source``."""
        return _CHRowView(self, self._row(source))

    def distance(self, source: int, target: int) -> float:
        """Network distance from ``source`` to ``target``.

        Served from the source's row when one exists; a stray pair with
        no row falls back to one point-to-point hierarchy query instead
        of building (and possibly evicting) a row for it.

        Returns ``inf`` when the target is unreachable within the bound.
        """
        row = self._rows.get(source)
        if row is not None:
            d = row.table.get(target)
            if d is not None:
                return d
            if target not in row.done:
                self._serve(row, target)
                d = row.table.get(target)
                if d is not None:
                    return d
            return math.inf
        self.fallbacks += 1
        d, __ = ch_shortest_path(
            self._network,
            self._hierarchy,
            source,
            target,
            max_distance=self._max_distance,
            landmarks=self._landmarks,
            stats=self._search_stats,
        )
        return d

    def route_distance_between_projections(
        self,
        from_segment: int,
        from_offset: float,
        to_segment: int,
        to_offset: float,
    ) -> float:
        """Travel distance between two on-segment positions.

        Mirrors ``DistanceOracle.route_distance_between_projections``
        exactly (same arithmetic, same same-segment shortcut).
        """
        net = self._network
        if from_segment == to_segment and to_offset >= from_offset:
            return to_offset - from_offset
        seg_a = net.segment(from_segment)
        seg_b = net.segment(to_segment)
        tail = seg_a.length - from_offset
        via = self.distance(seg_a.end, seg_b.start)
        if math.isinf(via):
            return math.inf
        return tail + via + to_offset

    # ------------------------------------------------------------ internals

    def _row(self, source: int) -> _CHRow:
        row = self._rows.get(source)
        if row is None:
            row = _CHRow(source)
            self.sweeps += 1
            self._rows.put(source, row)
        return row

    def _back(self, target: int) -> _CHRow:
        """The resumable backward row rooted at ``target``.

        An unbounded oracle adopts the hierarchy's cached bucket when one
        exists (after ``prepare_for_fork`` warming, every target's
        complete backward space is already built, so the row starts
        exhausted and serves with zero backward pops).
        """
        row = self._back_rows.get(target)
        if row is None:
            row = _CHRow(target)
            if math.isinf(self._max_distance):
                entries = self._hierarchy.cached_bucket(target)
                if entries is not None:
                    row.settled = {v: d for v, (d, __) in entries.items()}
                    row.dist = row.settled  # heap is empty; never relaxed
                    row.parent = {
                        v: p for v, (__, p) in entries.items() if v != target
                    }
                    row.heap = []
            self._back_rows.put(target, row)
        return row

    def _serve(self, row: _CHRow, target: int) -> None:
        """Join the row's forward space with ``target``'s backward space.

        Scans the joins both rows already know, then advances the two
        resumable searches bidirectionally until both frontiers strictly
        clear the best join — the pruned point-to-point stop rule,
        monotone across pairs on both sides, so the settled prefixes
        always contain every node the join minimum or its min-peak-id
        tie-break could consult.  Stores the exact re-accumulated
        distance when the pair is within the bound; otherwise just marks
        the target as covered (absent = unreachable within the bound, the
        ``dijkstra_all`` membership rule).
        """
        row.done.add(target)
        brow = self._back(target)
        fs = row.settled
        bs = brow.settled
        best = math.inf
        best_peak = -1
        small, large = (fs, bs) if len(fs) <= len(bs) else (bs, fs)
        large_get = large.get
        for v, da in small.items():
            db = large_get(v)
            if db is None:
                continue
            j = da + db
            if j < best or (j == best and v < best_peak):
                best = j
                best_peak = v
        best, best_peak = self._advance(row, brow, best, best_peak)
        if math.isinf(best):
            return
        path = self._hierarchy.unpack_join_tree(
            row.source, best_peak, target, row.parent, brow.parent
        )
        d = _reaccumulate(self._network, path)
        if d <= self._max_distance:
            row.table[target] = d

    def _advance(
        self,
        frow: _CHRow,
        brow: _CHRow,
        best: float,
        best_peak: int,
    ) -> Tuple[float, int]:
        """Advance both rows until their frontiers clear ``best``.

        Bidirectional upward Dijkstra over the two resumable rows — the
        same labels, strict-``<`` stall rule and stalled/settled
        accounting split as ``ContractionHierarchy._upward_search`` —
        popping the smaller frontier minimum first and stopping once both
        minima strictly exceed ``min(best, bound)``.  Ties at ``best``
        are still popped on both sides, so the min-peak-id tie-break sees
        every candidate; a node settles into a join the moment its second
        side pops it.
        """
        bound = self._max_distance
        inf = math.inf
        limit = best if best < bound else bound
        fheap = frow.heap
        bheap = brow.heap
        # Most serves find their join already covered by the settled
        # prefixes; peek (tuples peek fine when sealed) before paying the
        # local bindings below.
        if (fheap[0][0] if fheap else inf) > limit and (
            bheap[0][0] if bheap else inf
        ) > limit:
            return best, best_peak
        if isinstance(fheap, tuple):  # sealed by prepare_for_fork
            frow.heap = fheap = list(fheap)
        if isinstance(bheap, tuple):
            brow.heap = bheap = list(bheap)
        up_get = self._hierarchy._up.get
        down_get = self._hierarchy._down_in.get
        pop = heapq.heappop
        push = heapq.heappush
        empty: Tuple[Tuple[int, float], ...] = ()
        fsettled = frow.settled
        bsettled = brow.settled
        fset_get = fsettled.get
        bset_get = bsettled.get
        fdist = frow.dist
        bdist = brow.dist
        fdist_get = fdist.get
        bdist_get = bdist.get
        fparent = frow.parent
        bparent = brow.parent
        while True:
            moved = False
            # Forward turns: pop while this side holds the smaller
            # frontier minimum (ties go forward) and it is within limit.
            while fheap:
                d = fheap[0][0]
                if d > limit or (bheap and bheap[0][0] < d):
                    break
                d, u = pop(fheap)
                moved = True
                if u in fsettled:
                    continue
                fsettled[u] = d
                od = bset_get(u)
                if od is not None:
                    j = d + od
                    if j < best or (j == best and u < best_peak):
                        best = j
                        best_peak = u
                        limit = best if best < bound else bound
                stalled = False
                for w, weight in down_get(u, empty):
                    dw = fdist_get(w)
                    if dw is not None and dw + weight < d:
                        stalled = True
                        break
                if stalled:
                    self.stalls += 1
                    continue
                self.settled_nodes += 1
                for v, weight in up_get(u, empty):
                    nd = d + weight
                    if nd < fdist_get(v, inf):
                        fdist[v] = nd
                        fparent[v] = u
                        push(fheap, (nd, v))
            # Backward turns, in the reversed upward graph.
            while bheap:
                d = bheap[0][0]
                if d > limit or (fheap and fheap[0][0] <= d):
                    break
                d, u = pop(bheap)
                moved = True
                if u in bsettled:
                    continue
                bsettled[u] = d
                od = fset_get(u)
                if od is not None:
                    j = d + od
                    if j < best or (j == best and u < best_peak):
                        best = j
                        best_peak = u
                        limit = best if best < bound else bound
                stalled = False
                for w, weight in up_get(u, empty):
                    dw = bdist_get(w)
                    if dw is not None and dw + weight < d:
                        stalled = True
                        break
                if stalled:
                    self.stalls += 1
                    continue
                self.settled_nodes += 1
                for v, weight in down_get(u, empty):
                    nd = d + weight
                    if nd < bdist_get(v, inf):
                        bdist[v] = nd
                        bparent[v] = u
                        push(bheap, (nd, v))
            if not moved:
                break
        return best, best_peak

    # ------------------------------------------------------------ lifecycle

    def prepare_for_fork(self) -> None:
        """Seal row frontiers before a batch pool forks.

        Pending heaps of both row caches become tuples (``_advance``
        copies them back to lists on first post-fork use, so each worker
        mutates a private copy — the table oracle's sealing discipline).
        An unbounded oracle also completes the hierarchy's bucket cache:
        the complete backward spaces are shared copy-on-write and every
        worker's backward rows start exhausted (see :meth:`_back`).
        """
        for cache in (self._rows, self._back_rows):
            for row in cache.values():
                if isinstance(row.heap, list):
                    row.heap = tuple(row.heap)
        if math.isinf(self._max_distance):
            self._hierarchy.prepare_for_fork()

    def clear(self) -> None:
        self._rows.clear()
        self._back_rows.clear()
