"""Bounded LRU caches with hit/miss/eviction accounting.

Every memoisation layer of the routing engine — the distance oracle, the
segment-pair route cache, the candidate-edge cache and the reference-support
cache — is an :class:`LRUCache`.  Bounding the caches keeps long-running
batch inference at a fixed memory footprint, and the counters feed the
per-query diagnostics (:class:`~repro.core.system.InferenceDetail`) and the
throughput benchmark.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Optional, TypeVar

__all__ = ["CacheStats", "LRUCache"]

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


@dataclass(slots=True)
class CacheStats:
    """Counters of one cache: lookups that hit, missed, and evictions."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counter difference since an ``earlier`` snapshot."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
        )


class LRUCache(Generic[K, V]):
    """A least-recently-used cache with a hard entry bound.

    Args:
        maxsize: Maximum entries held.  ``None`` means unbounded (the seed
            behaviour of the distance oracle); ``0`` disables caching
            entirely — every lookup is a miss and nothing is stored, which
            gives benchmark baselines a zero-overhead off switch.
    """

    def __init__(self, maxsize: Optional[int] = None) -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError("maxsize must be non-negative or None")
        self._maxsize = maxsize
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.stats = CacheStats()

    @property
    def maxsize(self) -> Optional[int]:
        return self._maxsize

    @property
    def enabled(self) -> bool:
        return self._maxsize is None or self._maxsize > 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K) -> Optional[V]:
        """The cached value, refreshed as most-recent; None on miss."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Store a value, evicting the least-recent entry when full."""
        if not self.enabled:
            return
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = value
            return
        if self._maxsize is not None and len(self._data) >= self._maxsize:
            self._data.popitem(last=False)
            self.stats.evictions += 1
        self._data[key] = value

    def get_or_compute(self, key: K, compute: Callable[[], V]) -> V:
        """The cached value, or ``compute()`` stored under ``key``.

        With caching disabled the value is computed every time (counted as
        a miss), so callers never need a separate uncached code path.
        """
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value  # type: ignore[return-value]
        self.stats.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def values(self) -> "list[V]":
        """The cached values, least-recent first (recency is not touched)."""
        return list(self._data.values())

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._data.clear()
