"""Road network model (Definitions 2–5 of the paper).

A road network is a directed graph ``G(V, E)``: vertices are intersections,
edges are *road segments* carrying a polyline geometry, a length and a speed
constraint.  The network also answers the geometric query the whole paper is
built on — the *candidate edges* of a GPS point (Definition 5): all segments
whose distance to the point is below a threshold ε.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.geo.polyline import (
    Projection,
    point_to_polyline_distance,
    polyline_bbox,
    polyline_length,
    project_point_to_polyline,
)
from repro.spatial.rtree import RTree

__all__ = ["RoadNode", "RoadSegment", "RoadNetwork", "CandidateEdge"]


@dataclass(frozen=True, slots=True)
class RoadNode:
    """A vertex of the road graph: an intersection or segment endpoint."""

    node_id: int
    point: Point


@dataclass(frozen=True, slots=True)
class RoadSegment:
    """A directed road segment (Definition 2).

    Attributes:
        segment_id: Unique id within the network.
        start: Id of the start vertex (``r.s``).
        end: Id of the end vertex (``r.e``).
        polyline: Shape points from start to end (at least two points).
        speed_limit: Maximum allowed speed in m/s (``r.speed``).
        length: Arc length in metres (``r.length``); derived from the
            polyline at construction time.
    """

    segment_id: int
    start: int
    end: int
    polyline: Tuple[Point, ...]
    speed_limit: float
    length: float

    @staticmethod
    def build(
        segment_id: int,
        start: int,
        end: int,
        polyline: Sequence[Point],
        speed_limit: float,
    ) -> "RoadSegment":
        """Construct a segment, deriving its length from the polyline."""
        if len(polyline) < 2:
            raise ValueError("a road segment polyline needs at least two points")
        if speed_limit <= 0:
            raise ValueError("speed limit must be positive")
        return RoadSegment(
            segment_id=segment_id,
            start=start,
            end=end,
            polyline=tuple(polyline),
            speed_limit=speed_limit,
            length=polyline_length(polyline),
        )

    def distance_to_point(self, p: Point) -> float:
        """``dist(p, r)`` of Definition 5: min distance from p to the shape."""
        return point_to_polyline_distance(p, self.polyline)

    def project(self, p: Point) -> Projection:
        """Project ``p`` onto the segment shape."""
        return project_point_to_polyline(p, self.polyline)

    def point_at(self, offset: float) -> Point:
        """Point at arc-length ``offset`` from the segment start."""
        from repro.geo.polyline import interpolate_along

        return interpolate_along(self.polyline, offset)

    @property
    def travel_time(self) -> float:
        """Free-flow traversal time in seconds."""
        return self.length / self.speed_limit

    def bbox(self) -> BBox:
        return polyline_bbox(self.polyline)


@dataclass(frozen=True, slots=True)
class CandidateEdge:
    """A candidate edge of a GPS point, with its projection details."""

    segment: RoadSegment
    distance: float
    projection: Projection


class RoadNetwork:
    """Directed road graph with geometric candidate-edge queries.

    Build it incrementally with :meth:`add_node` / :meth:`add_segment`, or in
    one shot with :meth:`from_elements`.  The segment R-tree used by
    :meth:`candidate_edges` is built lazily on first query and invalidated by
    mutation.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, RoadNode] = {}
        self._segments: Dict[int, RoadSegment] = {}
        self._out: Dict[int, List[int]] = {}
        self._in: Dict[int, List[int]] = {}
        self._cheapest: Dict[Tuple[int, int], int] = {}
        self._segment_index: Optional[RTree[int]] = None
        self._max_speed: float = 0.0

    # ---------------------------------------------------------------- builder

    @classmethod
    def from_elements(
        cls, nodes: Iterable[RoadNode], segments: Iterable[RoadSegment]
    ) -> "RoadNetwork":
        net = cls()
        for node in nodes:
            net.add_node(node)
        for seg in segments:
            net.add_segment(seg)
        return net

    def add_node(self, node: RoadNode) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        self._out.setdefault(node.node_id, [])
        self._in.setdefault(node.node_id, [])

    def add_segment(self, segment: RoadSegment) -> None:
        if segment.segment_id in self._segments:
            raise ValueError(f"duplicate segment id {segment.segment_id}")
        if segment.start not in self._nodes or segment.end not in self._nodes:
            raise ValueError(
                f"segment {segment.segment_id} references unknown node(s) "
                f"{segment.start} -> {segment.end}"
            )
        self._segments[segment.segment_id] = segment
        self._out[segment.start].append(segment.segment_id)
        self._in[segment.end].append(segment.segment_id)
        key = (segment.start, segment.end)
        incumbent = self._cheapest.get(key)
        if incumbent is None or segment.length < self._segments[incumbent].length:
            self._cheapest[key] = segment.segment_id
        if segment.speed_limit > self._max_speed:
            self._max_speed = segment.speed_limit
        self._segment_index = None  # invalidate lazy index

    # --------------------------------------------------------------- topology

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def max_speed(self) -> float:
        """``V_max``: the highest speed limit in the network (m/s)."""
        return self._max_speed

    def node(self, node_id: int) -> RoadNode:
        return self._nodes[node_id]

    def segment(self, segment_id: int) -> RoadSegment:
        return self._segments[segment_id]

    def has_segment(self, segment_id: int) -> bool:
        return segment_id in self._segments

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def nodes(self) -> Iterable[RoadNode]:
        return self._nodes.values()

    def segments(self) -> Iterable[RoadSegment]:
        return self._segments.values()

    def out_segments(self, node_id: int) -> List[int]:
        """Segments departing from ``node_id``."""
        return self._out.get(node_id, [])

    def in_segments(self, node_id: int) -> List[int]:
        """Segments arriving at ``node_id``."""
        return self._in.get(node_id, [])

    def successors(self, segment_id: int) -> List[int]:
        """Segments that can directly follow ``segment_id`` on a route.

        These are the segments starting at this segment's end vertex
        (Definition 4's connectivity requirement ``r_{k+1}.s = r_k.e``).
        """
        return self._out.get(self._segments[segment_id].end, [])

    def predecessors(self, segment_id: int) -> List[int]:
        """Segments that can directly precede ``segment_id`` on a route."""
        return self._in.get(self._segments[segment_id].start, [])

    def cheapest_segment_between(self, start: int, end: int) -> Optional[int]:
        """Id of the shortest segment ``start -> end``; None if not adjacent.

        A precomputed adjacency map maintained by :meth:`add_segment`, so
        node-path-to-route conversion never scans ``out_segments``.  Among
        equal-length parallel segments the first added wins, matching the
        historical linear-scan behaviour.
        """
        return self._cheapest.get((start, end))

    def are_connected(self, first_id: int, second_id: int) -> bool:
        """True if ``second`` may directly follow ``first`` on a route."""
        return self._segments[first_id].end == self._segments[second_id].start

    def reverse_of(self, segment_id: int) -> Optional[int]:
        """The opposite-direction twin of a segment, if one exists."""
        seg = self._segments[segment_id]
        for sid in self._out.get(seg.end, []):
            if self._segments[sid].end == seg.start:
                return sid
        return None

    def bbox(self) -> BBox:
        """Bounding box of all node coordinates."""
        return BBox.from_points([n.point for n in self._nodes.values()])

    # -------------------------------------------------------------- geometric

    def _ensure_index(self) -> RTree[int]:
        if self._segment_index is None:
            self._segment_index = RTree.bulk_load(
                ((seg.bbox(), sid) for sid, seg in self._segments.items()),
                max_entries=16,
            )
        return self._segment_index

    def candidate_edges(self, p: Point, epsilon: float) -> List[CandidateEdge]:
        """Candidate edges of ``p`` (Definition 5), nearest first.

        All segments whose polyline comes within ``epsilon`` metres of ``p``.
        """
        index = self._ensure_index()
        out: List[CandidateEdge] = []
        for sid in index.search_bbox(BBox.around(p, epsilon)):
            seg = self._segments[sid]
            proj = seg.project(p)
            if proj.distance <= epsilon:
                out.append(CandidateEdge(seg, proj.distance, proj))
        out.sort(key=lambda c: c.distance)
        return out

    def nearest_segments(self, p: Point, k: int = 1) -> List[CandidateEdge]:
        """The ``k`` segments nearest to ``p`` by exact polyline distance.

        Uses an expanding-radius candidate search; exact because the search
        radius is doubled until at least ``k`` hits are confirmed.
        """
        if k <= 0 or not self._segments:
            return []
        radius = 50.0
        box = self.bbox()
        # Upper bound: from p, everything in the network is reachable within
        # its distance to the bbox plus the bbox diagonal.
        limit = (
            box.min_distance_to_point(p)
            + math.hypot(box.width, box.height)
            + 1.0
        )
        while True:
            hits = self.candidate_edges(p, radius)
            if len(hits) >= k or radius > limit:
                return hits[:k]
            radius *= 2.0

    def nearest_node(self, p: Point) -> RoadNode:
        """The node nearest to ``p`` (linear in candidates via segment index)."""
        best = min(self._nodes.values(), key=lambda n: n.point.squared_distance_to(p))
        return best
