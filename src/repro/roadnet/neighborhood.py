"""λ-neighborhoods over road segments (Definition 8).

``h(r, s)`` is the minimum number of hops an object needs to move from
segment ``r`` to segment ``s`` along the directed segment-adjacency graph:
``h(r, r) = 0``, immediate successors have ``h = 1``, and so on.  The
λ-neighborhood ``N_λ(r) = {s : h(r, s) < λ}``; with λ = 2 it contains the
segments "within one hop", matching the paper's Figure 4 walkthrough.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Set

from repro.roadnet.network import RoadNetwork

__all__ = ["hop_distances", "lambda_neighborhood", "hop_distance"]


def hop_distances(
    network: RoadNetwork, segment_id: int, max_hops: int
) -> Dict[int, int]:
    """BFS hop distances from ``segment_id`` to all segments within
    ``max_hops`` (inclusive).  The source maps to 0.
    """
    if max_hops < 0:
        raise ValueError("max_hops must be non-negative")
    dist: Dict[int, int] = {segment_id: 0}
    frontier = deque([segment_id])
    while frontier:
        current = frontier.popleft()
        d = dist[current]
        if d == max_hops:
            continue
        for nxt in network.successors(current):
            if nxt not in dist:
                dist[nxt] = d + 1
                frontier.append(nxt)
    return dist


def lambda_neighborhood(
    network: RoadNetwork, segment_id: int, lam: int
) -> Set[int]:
    """``N_λ(r)``: segments reachable in strictly fewer than ``lam`` hops.

    The source segment itself (``h = 0``) is excluded — a traverse-graph
    link from a segment to itself is never useful.
    """
    if lam <= 0:
        return set()
    dist = hop_distances(network, segment_id, lam - 1)
    return {sid for sid, h in dist.items() if 0 < h < lam}


def hop_distance(
    network: RoadNetwork, from_segment: int, to_segment: int, max_hops: int
) -> int:
    """``h(r, s)`` bounded by ``max_hops``; returns ``max_hops + 1`` when the
    target is farther than the bound (a "greater than" sentinel).
    """
    dist = hop_distances(network, from_segment, max_hops)
    return dist.get(to_segment, max_hops + 1)
