"""Routes: connected sequences of road segments (Definition 4).

A route is the central value type of the paper — local routes, global routes,
ground-truth routes and map-matching outputs are all :class:`Route` objects.
Routes store segment ids only; geometric/length queries take the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.geo.point import Point
from repro.roadnet.network import RoadNetwork

__all__ = ["Route"]


@dataclass(frozen=True, slots=True)
class Route:
    """An ordered sequence of road-segment ids.

    Construction does not validate connectivity (map matchers sometimes emit
    gapped sequences before bridging); call :meth:`is_connected` or
    :meth:`validate` when the Definition 4 invariant must hold.
    """

    segment_ids: Tuple[int, ...]

    @staticmethod
    def of(segment_ids: Sequence[int]) -> "Route":
        return Route(tuple(segment_ids))

    @staticmethod
    def empty() -> "Route":
        return Route(())

    def __len__(self) -> int:
        return len(self.segment_ids)

    def __bool__(self) -> bool:
        return bool(self.segment_ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self.segment_ids)

    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self.segment_ids

    @property
    def first(self) -> int:
        """Id of the first segment.

        Raises:
            IndexError: If the route is empty.
        """
        return self.segment_ids[0]

    @property
    def last(self) -> int:
        """Id of the last segment.

        Raises:
            IndexError: If the route is empty.
        """
        return self.segment_ids[-1]

    def start_node(self, network: RoadNetwork) -> int:
        """``R.s``: the start vertex of the first segment."""
        return network.segment(self.first).start

    def end_node(self, network: RoadNetwork) -> int:
        """``R.e``: the end vertex of the last segment."""
        return network.segment(self.last).end

    def start_point(self, network: RoadNetwork) -> Point:
        return network.node(self.start_node(network)).point

    def end_point(self, network: RoadNetwork) -> Point:
        return network.node(self.end_node(network)).point

    def length(self, network: RoadNetwork) -> float:
        """Total length in metres."""
        return sum(network.segment(sid).length for sid in self.segment_ids)

    def is_connected(self, network: RoadNetwork) -> bool:
        """True if consecutive segments satisfy ``r_{k+1}.s == r_k.e``."""
        return all(
            network.are_connected(a, b)
            for a, b in zip(self.segment_ids, self.segment_ids[1:])
        )

    def validate(self, network: RoadNetwork) -> None:
        """Raise ``ValueError`` if the route violates Definition 4."""
        for a, b in zip(self.segment_ids, self.segment_ids[1:]):
            if not network.are_connected(a, b):
                raise ValueError(
                    f"route break: segment {a} ends at "
                    f"{network.segment(a).end} but segment {b} starts at "
                    f"{network.segment(b).start}"
                )

    def concat(self, other: "Route") -> "Route":
        """Concatenate two routes (the paper's ``R_i ◇ R_j``).

        If the first route ends with the segment the second one starts with,
        the duplicate is dropped so local routes sharing their junction edge
        join seamlessly.
        """
        if not self.segment_ids:
            return other
        if not other.segment_ids:
            return self
        if self.segment_ids[-1] == other.segment_ids[0]:
            return Route(self.segment_ids + other.segment_ids[1:])
        return Route(self.segment_ids + other.segment_ids)

    def dedupe_consecutive(self) -> "Route":
        """Collapse immediately repeated segment ids."""
        if not self.segment_ids:
            return self
        out: List[int] = [self.segment_ids[0]]
        for sid in self.segment_ids[1:]:
            if sid != out[-1]:
                out.append(sid)
        return Route(tuple(out))

    def points(self, network: RoadNetwork) -> List[Point]:
        """Concatenated shape polyline of the route."""
        pts: List[Point] = []
        for sid in self.segment_ids:
            poly = network.segment(sid).polyline
            if pts and pts[-1] == poly[0]:
                pts.extend(poly[1:])
            else:
                pts.extend(poly)
        return pts

    def node_sequence(self, network: RoadNetwork) -> List[int]:
        """Vertex ids visited, in order (start of each segment, final end)."""
        if not self.segment_ids:
            return []
        nodes = [network.segment(self.segment_ids[0]).start]
        for sid in self.segment_ids:
            nodes.append(network.segment(sid).end)
        return nodes
