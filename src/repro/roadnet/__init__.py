"""Road network substrate: graph model, routing and generators."""

from repro.roadnet.connectivity import (
    is_strongly_connected,
    network_strongly_connected,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.roadnet.generators import (
    ARTERIAL_SPEED,
    HIGHWAY_SPEED,
    LOCAL_SPEED,
    GridCityConfig,
    grid_city,
    manhattan_line,
    ring_radial_city,
)
from repro.roadnet.cache import CacheStats, LRUCache
from repro.roadnet.engine import EngineConfig, EngineStats, RoutingEngine
from repro.roadnet.io import load_network, network_from_dict, network_to_dict, save_network
from repro.roadnet.ksp import dijkstra_generic, yen_k_shortest_paths
from repro.roadnet.neighborhood import hop_distance, hop_distances, lambda_neighborhood
from repro.roadnet.network import CandidateEdge, RoadNetwork, RoadNode, RoadSegment
from repro.roadnet.route import Route
from repro.roadnet.shortest_path import (
    DistanceOracle,
    LandmarkIndex,
    SearchStats,
    astar,
    bidi_astar,
    combined_heuristic,
    combined_heuristic_from,
    dijkstra,
    dijkstra_all,
    node_path_to_route,
    shortest_route_between_nodes,
    shortest_route_between_segments,
)
from repro.roadnet.table_oracle import DistanceTableOracle

__all__ = [
    "ARTERIAL_SPEED",
    "HIGHWAY_SPEED",
    "LOCAL_SPEED",
    "CacheStats",
    "CandidateEdge",
    "DistanceOracle",
    "DistanceTableOracle",
    "EngineConfig",
    "EngineStats",
    "GridCityConfig",
    "LRUCache",
    "LandmarkIndex",
    "RoadNetwork",
    "RoadNode",
    "RoadSegment",
    "Route",
    "RoutingEngine",
    "SearchStats",
    "astar",
    "bidi_astar",
    "combined_heuristic",
    "combined_heuristic_from",
    "dijkstra",
    "dijkstra_all",
    "dijkstra_generic",
    "grid_city",
    "hop_distance",
    "hop_distances",
    "is_strongly_connected",
    "lambda_neighborhood",
    "load_network",
    "manhattan_line",
    "network_from_dict",
    "network_strongly_connected",
    "network_to_dict",
    "node_path_to_route",
    "ring_radial_city",
    "save_network",
    "shortest_route_between_nodes",
    "shortest_route_between_segments",
    "strongly_connected_components",
    "weakly_connected_components",
    "yen_k_shortest_paths",
]
