"""Road-network serialisation.

A small JSON format so generated networks (and any externally converted map,
e.g. an OSM extract projected to planar metres) can be saved and reloaded.

Also persists the :class:`~repro.roadnet.shortest_path.LandmarkIndex`
alongside saved networks: the ALT distance tables are exact and a pure
function of the network, so repeated runs over the same saved world can
reload them instead of re-running one Dijkstra sweep per landmark per
direction.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.geo.point import Point
from repro.roadnet.contraction import ContractionHierarchy
from repro.roadnet.network import RoadNetwork, RoadNode, RoadSegment
from repro.roadnet.shortest_path import LandmarkIndex

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "landmarks_to_dict",
    "landmarks_from_dict",
    "save_landmarks",
    "load_landmarks",
    "contraction_to_dict",
    "contraction_from_dict",
    "save_contraction",
    "load_contraction",
]


def network_to_dict(network: RoadNetwork) -> Dict[str, Any]:
    """Serialise a network to a JSON-compatible dict."""
    return {
        "format": "repro-roadnet-v1",
        "nodes": [
            {"id": n.node_id, "x": n.point.x, "y": n.point.y}
            for n in network.nodes()
        ],
        "segments": [
            {
                "id": s.segment_id,
                "start": s.start,
                "end": s.end,
                "speed": s.speed_limit,
                "shape": [[p.x, p.y] for p in s.polyline],
            }
            for s in network.segments()
        ],
    }


def network_from_dict(data: Dict[str, Any]) -> RoadNetwork:
    """Deserialise a network produced by :func:`network_to_dict`.

    Raises:
        ValueError: On an unknown format marker or malformed payload.
    """
    if data.get("format") != "repro-roadnet-v1":
        raise ValueError(f"unknown network format: {data.get('format')!r}")
    net = RoadNetwork()
    for n in data["nodes"]:
        net.add_node(RoadNode(int(n["id"]), Point(float(n["x"]), float(n["y"]))))
    for s in data["segments"]:
        shape = [Point(float(x), float(y)) for x, y in s["shape"]]
        net.add_segment(
            RoadSegment.build(
                int(s["id"]), int(s["start"]), int(s["end"]), shape, float(s["speed"])
            )
        )
    return net


def save_network(network: RoadNetwork, path: Union[str, Path]) -> None:
    """Write a network to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(network_to_dict(network), f)


def load_network(path: Union[str, Path]) -> RoadNetwork:
    """Read a network saved by :func:`save_network`."""
    with open(path, "r", encoding="utf-8") as f:
        return network_from_dict(json.load(f))


# ----------------------------------------------------------- landmark index

_LANDMARKS_FORMAT = "repro-landmarks-v1"


def landmarks_to_dict(index: LandmarkIndex) -> Dict[str, Any]:
    """Serialise a landmark index to a JSON-compatible dict.

    Distance tables are stored with string node-id keys (JSON objects);
    :func:`landmarks_from_dict` restores the integer keys.
    """
    return {
        "format": _LANDMARKS_FORMAT,
        "landmarks": list(index.landmarks),
        "forward": [
            {str(node): dist for node, dist in table.items()}
            for table in index.forward_tables
        ],
        "backward": [
            {str(node): dist for node, dist in table.items()}
            for table in index.backward_tables
        ],
    }


def landmarks_from_dict(data: Dict[str, Any]) -> LandmarkIndex:
    """Deserialise a landmark index produced by :func:`landmarks_to_dict`.

    Raises:
        ValueError: On an unknown format marker or malformed payload.
    """
    if data.get("format") != _LANDMARKS_FORMAT:
        raise ValueError(f"unknown landmarks format: {data.get('format')!r}")
    landmarks = tuple(int(v) for v in data["landmarks"])
    forward = tuple(
        {int(node): float(dist) for node, dist in table.items()}
        for table in data["forward"]
    )
    backward = tuple(
        {int(node): float(dist) for node, dist in table.items()}
        for table in data["backward"]
    )
    if not (len(landmarks) == len(forward) == len(backward)):
        raise ValueError("landmark table counts disagree")
    return LandmarkIndex(landmarks, forward, backward)


def save_landmarks(index: LandmarkIndex, path: Union[str, Path]) -> None:
    """Write a landmark index to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(landmarks_to_dict(index), f)


def load_landmarks(path: Union[str, Path]) -> LandmarkIndex:
    """Read a landmark index saved by :func:`save_landmarks`."""
    with open(path, "r", encoding="utf-8") as f:
        return landmarks_from_dict(json.load(f))


_CONTRACTION_FORMAT = "repro-ch-v1"


def contraction_to_dict(hierarchy: ContractionHierarchy) -> Dict[str, Any]:
    """Serialise a contraction hierarchy to a JSON-compatible dict.

    Only the canonical state is stored — node ranks and the edge map with
    weights and contracted middle nodes (-1 for original edges); the
    upward/downward adjacency is rederived on load.  Buckets are not
    persisted (they are a cheap pure function of the hierarchy, rebuilt
    lazily or by ``prepare_for_fork``).
    """
    return {
        "format": _CONTRACTION_FORMAT,
        "rank": {str(node): order for node, order in hierarchy.rank.items()},
        "edges": [
            [a, b, weight, middle]
            for (a, b), (weight, middle) in sorted(hierarchy.edges.items())
        ],
    }


def contraction_from_dict(data: Dict[str, Any]) -> ContractionHierarchy:
    """Deserialise a hierarchy produced by :func:`contraction_to_dict`.

    Raises:
        ValueError: On an unknown format marker (the found marker is
            named, so stale caches are diagnosable) or malformed payload.
    """
    if data.get("format") != _CONTRACTION_FORMAT:
        raise ValueError(f"unknown contraction format: {data.get('format')!r}")
    rank = {int(node): int(order) for node, order in data["rank"].items()}
    edges = {
        (int(a), int(b)): (float(weight), int(middle))
        for a, b, weight, middle in data["edges"]
    }
    for (a, b), (__, middle) in edges.items():
        if a not in rank or b not in rank:
            raise ValueError(f"contraction edge ({a}, {b}) references unknown node")
        if middle != -1 and middle not in rank:
            raise ValueError(f"contraction middle node {middle} is unknown")
    return ContractionHierarchy(rank, edges)


def save_contraction(
    hierarchy: ContractionHierarchy, path: Union[str, Path]
) -> None:
    """Write a contraction hierarchy to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(contraction_to_dict(hierarchy), f)


def load_contraction(path: Union[str, Path]) -> ContractionHierarchy:
    """Read a hierarchy saved by :func:`save_contraction`."""
    with open(path, "r", encoding="utf-8") as f:
        return contraction_from_dict(json.load(f))
