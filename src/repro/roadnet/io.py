"""Road-network serialisation.

A small JSON format so generated networks (and any externally converted map,
e.g. an OSM extract projected to planar metres) can be saved and reloaded.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.geo.point import Point
from repro.roadnet.network import RoadNetwork, RoadNode, RoadSegment

__all__ = ["network_to_dict", "network_from_dict", "save_network", "load_network"]


def network_to_dict(network: RoadNetwork) -> Dict[str, Any]:
    """Serialise a network to a JSON-compatible dict."""
    return {
        "format": "repro-roadnet-v1",
        "nodes": [
            {"id": n.node_id, "x": n.point.x, "y": n.point.y}
            for n in network.nodes()
        ],
        "segments": [
            {
                "id": s.segment_id,
                "start": s.start,
                "end": s.end,
                "speed": s.speed_limit,
                "shape": [[p.x, p.y] for p in s.polyline],
            }
            for s in network.segments()
        ],
    }


def network_from_dict(data: Dict[str, Any]) -> RoadNetwork:
    """Deserialise a network produced by :func:`network_to_dict`.

    Raises:
        ValueError: On an unknown format marker or malformed payload.
    """
    if data.get("format") != "repro-roadnet-v1":
        raise ValueError(f"unknown network format: {data.get('format')!r}")
    net = RoadNetwork()
    for n in data["nodes"]:
        net.add_node(RoadNode(int(n["id"]), Point(float(n["x"]), float(n["y"]))))
    for s in data["segments"]:
        shape = [Point(float(x), float(y)) for x, y in s["shape"]]
        net.add_segment(
            RoadSegment.build(
                int(s["id"]), int(s["start"]), int(s["end"]), shape, float(s["speed"])
            )
        )
    return net


def save_network(network: RoadNetwork, path: Union[str, Path]) -> None:
    """Write a network to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(network_to_dict(network), f)


def load_network(path: Union[str, Path]) -> RoadNetwork:
    """Read a network saved by :func:`save_network`."""
    with open(path, "r", encoding="utf-8") as f:
        return network_from_dict(json.load(f))
