"""Synthetic road-network generators.

The paper evaluates on the Beijing road network (106,579 nodes / 141,380
segments), which we cannot redistribute.  These generators produce city-like
planar networks — perturbed grids with arterial speed classes, optional
one-way streets and randomly removed blocks — that exercise exactly the same
code paths (candidate edges, hop neighborhoods, shortest paths) at a scale a
laptop handles.  See DESIGN.md §3 for the substitution rationale.

All randomness flows through an explicit ``numpy.random.Generator`` so every
experiment is reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geo.point import Point
from repro.roadnet.connectivity import network_strongly_connected
from repro.roadnet.network import RoadNetwork, RoadNode, RoadSegment

__all__ = ["GridCityConfig", "grid_city", "ring_radial_city", "manhattan_line"]

#: Speed classes in m/s (30 / 60 / 90 km/h).
LOCAL_SPEED = 30.0 / 3.6
ARTERIAL_SPEED = 60.0 / 3.6
HIGHWAY_SPEED = 90.0 / 3.6


@dataclass(frozen=True, slots=True)
class GridCityConfig:
    """Parameters of the grid-city generator.

    Attributes:
        nx: Number of node columns.
        ny: Number of node rows.
        spacing: Block size in metres.
        jitter: Std-dev of gaussian node-position noise in metres.
        arterial_every: Every k-th row/column is an arterial (0 disables).
        drop_fraction: Fraction of interior bidirectional links removed to
            break the perfect grid (connectivity is repaired afterwards).
        one_way_fraction: Fraction of remaining local links converted into
            one-way streets.
    """

    nx: int = 20
    ny: int = 20
    spacing: float = 500.0
    jitter: float = 40.0
    arterial_every: int = 5
    drop_fraction: float = 0.08
    one_way_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.nx < 2 or self.ny < 2:
            raise ValueError("grid must be at least 2x2")
        if self.spacing <= 0:
            raise ValueError("spacing must be positive")
        if not (0.0 <= self.drop_fraction < 0.5):
            raise ValueError("drop_fraction must be in [0, 0.5)")
        if not (0.0 <= self.one_way_fraction <= 1.0):
            raise ValueError("one_way_fraction must be in [0, 1]")


def grid_city(
    config: GridCityConfig = GridCityConfig(),
    rng: Optional[np.random.Generator] = None,
) -> RoadNetwork:
    """Generate a perturbed-grid city network.

    The result is guaranteed strongly connected: removed links that would
    disconnect the graph are restored.

    Args:
        config: Generator parameters.
        rng: Random generator; defaults to a fixed-seed generator so the
            default call is deterministic.
    """
    rng = rng if rng is not None else np.random.default_rng(7)
    cfg = config

    def node_id(ix: int, iy: int) -> int:
        return iy * cfg.nx + ix

    nodes: List[RoadNode] = []
    for iy in range(cfg.ny):
        for ix in range(cfg.nx):
            jx = float(rng.normal(0.0, cfg.jitter)) if cfg.jitter > 0 else 0.0
            jy = float(rng.normal(0.0, cfg.jitter)) if cfg.jitter > 0 else 0.0
            nodes.append(
                RoadNode(node_id(ix, iy), Point(ix * cfg.spacing + jx, iy * cfg.spacing + jy))
            )

    def is_arterial_link(ax: int, ay: int, bx: int, by: int) -> bool:
        if cfg.arterial_every <= 0:
            return False
        if ay == by and ay % cfg.arterial_every == 0:
            return True  # horizontal link on an arterial row
        if ax == bx and ax % cfg.arterial_every == 0:
            return True  # vertical link on an arterial column
        return False

    # Undirected adjacency links of the full grid.
    links: List[Tuple[int, int, bool]] = []  # (node_a, node_b, arterial)
    for iy in range(cfg.ny):
        for ix in range(cfg.nx):
            if ix + 1 < cfg.nx:
                links.append(
                    (node_id(ix, iy), node_id(ix + 1, iy), is_arterial_link(ix, iy, ix + 1, iy))
                )
            if iy + 1 < cfg.ny:
                links.append(
                    (node_id(ix, iy), node_id(ix, iy + 1), is_arterial_link(ix, iy, ix, iy + 1))
                )

    # Randomly drop local (non-arterial) links to break the perfect grid.
    keep: List[Tuple[int, int, bool]] = []
    dropped: List[Tuple[int, int, bool]] = []
    for link in links:
        if not link[2] and float(rng.random()) < cfg.drop_fraction:
            dropped.append(link)
        else:
            keep.append(link)

    one_way: Dict[Tuple[int, int], bool] = {}
    for a, b, arterial in keep:
        if not arterial and cfg.one_way_fraction > 0.0:
            one_way[(a, b)] = float(rng.random()) < cfg.one_way_fraction
        else:
            one_way[(a, b)] = False

    def build(selected: List[Tuple[int, int, bool]]) -> RoadNetwork:
        net = RoadNetwork()
        for node in nodes:
            net.add_node(node)
        sid = 0
        for a, b, arterial in selected:
            speed = ARTERIAL_SPEED if arterial else LOCAL_SPEED
            pa = nodes[a].point
            pb = nodes[b].point
            net.add_segment(RoadSegment.build(sid, a, b, [pa, pb], speed))
            sid += 1
            if not one_way.get((a, b), False):
                net.add_segment(RoadSegment.build(sid, b, a, [pb, pa], speed))
                sid += 1
        return net

    network = build(keep)
    # Repair connectivity by restoring dropped links until the network is
    # strongly connected again (two-way restores always help).
    while not network_strongly_connected(network) and dropped:
        restore = dropped.pop()
        one_way[(restore[0], restore[1])] = False
        keep.append(restore)
        network = build(keep)
    if not network_strongly_connected(network):
        raise RuntimeError(
            "generated network is not strongly connected; lower "
            "one_way_fraction or drop_fraction"
        )
    return network


def ring_radial_city(
    n_rings: int = 4,
    n_spokes: int = 12,
    ring_spacing: float = 1_000.0,
    rng: Optional[np.random.Generator] = None,
) -> RoadNetwork:
    """A ring-and-radial city (Beijing-style ring roads with spokes).

    Rings are arterials; spokes alternate local/arterial.  All links are
    bidirectional, so the network is strongly connected by construction.
    """
    if n_rings < 1 or n_spokes < 3:
        raise ValueError("need at least 1 ring and 3 spokes")
    rng = rng if rng is not None else np.random.default_rng(11)

    nodes: List[RoadNode] = [RoadNode(0, Point(0.0, 0.0))]

    def nid(ring: int, spoke: int) -> int:
        return 1 + (ring - 1) * n_spokes + spoke

    for ring in range(1, n_rings + 1):
        radius = ring * ring_spacing
        for spoke in range(n_spokes):
            angle = 2.0 * math.pi * spoke / n_spokes
            jitter = float(rng.normal(0.0, ring_spacing * 0.02))
            r = radius + jitter
            nodes.append(
                RoadNode(nid(ring, spoke), Point(r * math.cos(angle), r * math.sin(angle)))
            )

    net = RoadNetwork()
    for node in nodes:
        net.add_node(node)

    sid = 0

    def add_two_way(a: int, b: int, speed: float) -> None:
        nonlocal sid
        pa = nodes[a].point
        pb = nodes[b].point
        net.add_segment(RoadSegment.build(sid, a, b, [pa, pb], speed))
        sid += 1
        net.add_segment(RoadSegment.build(sid, b, a, [pb, pa], speed))
        sid += 1

    # Rings (arterial, outermost is highway-grade).
    for ring in range(1, n_rings + 1):
        speed = HIGHWAY_SPEED if ring == n_rings else ARTERIAL_SPEED
        for spoke in range(n_spokes):
            add_two_way(nid(ring, spoke), nid(ring, (spoke + 1) % n_spokes), speed)
    # Spokes: centre to first ring, then ring to ring.
    for spoke in range(n_spokes):
        speed = ARTERIAL_SPEED if spoke % 2 == 0 else LOCAL_SPEED
        add_two_way(0, nid(1, spoke), speed)
        for ring in range(1, n_rings):
            add_two_way(nid(ring, spoke), nid(ring + 1, spoke), speed)
    return net


def manhattan_line(n_nodes: int = 10, spacing: float = 200.0) -> RoadNetwork:
    """A trivial bidirectional chain of segments — handy in unit tests."""
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    net = RoadNetwork()
    for i in range(n_nodes):
        net.add_node(RoadNode(i, Point(i * spacing, 0.0)))
    sid = 0
    for i in range(n_nodes - 1):
        pa = net.node(i).point
        pb = net.node(i + 1).point
        net.add_segment(RoadSegment.build(sid, i, i + 1, [pa, pb], LOCAL_SPEED))
        sid += 1
        net.add_segment(RoadSegment.build(sid, i + 1, i, [pb, pa], LOCAL_SPEED))
        sid += 1
    return net
