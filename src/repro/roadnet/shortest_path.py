"""Shortest paths on the road network.

Provides node-level Dijkstra and A*, plus the segment-level helpers the rest
of the system needs: the shortest *route* (sequence of segments, Definition 4)
between two segments, and a cached many-pair distance oracle used heavily by
ST-Matching, IVMM and the traverse-graph construction.

Two properties matter beyond raw speed:

* **Canonical tie-breaking.**  Grid-like networks have many equal-length
  shortest paths, and which one a label-setting search reconstructs normally
  depends on its expansion order — i.e. on the heuristic.  Here every search
  keeps, for each settled node, the *smallest-id optimal predecessor*, and
  keeps expanding until no queued label can still lie on a shortest path.
  The reconstructed path is therefore a function of the graph alone:
  Dijkstra, euclidean A* and ALT-A* all return the identical route, which is
  what lets the routing engine swap heuristics without changing results.

* **ALT (A*, Landmarks, Triangle inequality).**  A :class:`LandmarkIndex`
  precomputes forward/backward distance tables from a handful of
  farthest-point-sampled landmarks; the triangle inequality turns the tables
  into an admissible, consistent lower bound that dominates the euclidean
  heuristic on road networks, so A* settles far fewer nodes per query.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route

__all__ = [
    "SearchStats",
    "dijkstra",
    "dijkstra_all",
    "astar",
    "bidi_astar",
    "LandmarkIndex",
    "combined_heuristic",
    "combined_heuristic_from",
    "node_path_to_route",
    "shortest_route_between_nodes",
    "shortest_route_between_segments",
    "segment_route_length",
    "DistanceOracle",
]

Heuristic = Callable[[int], float]


@dataclass(slots=True)
class SearchStats:
    """Accumulated work counters across shortest-path searches.

    ``stalls`` counts stall-on-demand prunes, which only the contraction-
    hierarchy searches (:mod:`repro.roadnet.contraction`) perform.  A
    stalled pop is counted in ``stalls`` only, not in ``settled``: the
    popped label is disproved (a shorter path reaches the node through a
    higher-ranked one) and its edges are never relaxed, so the work spent
    on it is one heap pop and a comparison, not a settle.
    """

    searches: int = 0
    settled: int = 0
    stalls: int = 0

    def snapshot(self) -> "SearchStats":
        return SearchStats(self.searches, self.settled, self.stalls)

    def delta(self, earlier: "SearchStats") -> "SearchStats":
        return SearchStats(
            searches=self.searches - earlier.searches,
            settled=self.settled - earlier.settled,
            stalls=self.stalls - earlier.stalls,
        )


def _search(
    network: RoadNetwork,
    source: int,
    target: int,
    heuristic: Optional[Heuristic],
    max_distance: float,
    stats: Optional[SearchStats],
) -> Tuple[float, List[int]]:
    """Label-setting search with canonical (min-id predecessor) tie-breaking.

    Runs A* when ``heuristic`` is given (it must be admissible and
    consistent), plain Dijkstra otherwise.  After the target is settled the
    search keeps draining every label whose f-value still equals the optimum
    so that *every* optimal predecessor relaxes its successors; combined
    with the smallest-id predecessor rule this makes the reconstructed path
    independent of the heuristic and of heap ordering.
    """
    if source == target:
        return 0.0, [source]
    h: Heuristic = heuristic if heuristic is not None else (lambda __: 0.0)
    g: Dict[int, float] = {source: 0.0}
    prev: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(h(source), source)]
    closed: set[int] = set()
    best = math.inf
    if stats is not None:
        stats.searches += 1
    while heap:
        f, u = heapq.heappop(heap)
        if f > best:
            break
        if u in closed:
            continue
        closed.add(u)
        if stats is not None:
            stats.settled += 1
        gu = g[u]
        if u == target:
            best = gu
            continue
        if gu > max_distance:
            continue
        for sid in network.out_segments(u):
            seg = network.segment(sid)
            v = seg.end
            ng = gu + seg.length
            gv = g.get(v, math.inf)
            if ng < gv:
                g[v] = ng
                prev[v] = u
                heapq.heappush(heap, (ng + h(v), v))
            elif ng == gv and u < prev.get(v, u + 1):
                # Equal-cost parent with a smaller id: keep the canonical
                # predecessor; the label itself is unchanged, no re-push.
                prev[v] = u
    if math.isinf(best):
        return math.inf, []
    return best, _reconstruct(prev, source, target)


def dijkstra(
    network: RoadNetwork,
    source: int,
    target: int,
    max_distance: float = math.inf,
    stats: Optional[SearchStats] = None,
) -> Tuple[float, List[int]]:
    """Shortest node path from ``source`` to ``target``.

    Returns:
        ``(distance, node_path)``; ``(inf, [])`` when unreachable or farther
        than ``max_distance``.
    """
    return _search(network, source, target, None, max_distance, stats)


def dijkstra_all(
    network: RoadNetwork,
    source: int,
    max_distance: float = math.inf,
    reverse: bool = False,
) -> Dict[int, float]:
    """Distances from ``source`` to every node within ``max_distance``.

    With ``reverse=True`` edges are traversed backwards, yielding the
    distance *to* ``source`` from every node — the backward landmark table.
    """
    dist: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled: Dict[int, float] = {}
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if d > max_distance:
            break
        settled[u] = d
        segments = network.in_segments(u) if reverse else network.out_segments(u)
        for sid in segments:
            seg = network.segment(sid)
            v = seg.start if reverse else seg.end
            nd = d + seg.length
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return settled


def astar(
    network: RoadNetwork,
    source: int,
    target: int,
    max_distance: float = math.inf,
    heuristic: Optional[Heuristic] = None,
    stats: Optional[SearchStats] = None,
) -> Tuple[float, List[int]]:
    """A* to ``target`` with an admissible heuristic.

    The default heuristic is the euclidean distance to the target (roads are
    never shorter than the straight line); pass ``heuristic`` to supply a
    stronger admissible bound such as :meth:`LandmarkIndex.heuristic_to`.

    Returns:
        ``(distance, node_path)``; ``(inf, [])`` when unreachable.
    """
    if heuristic is None:
        goal = network.node(target).point

        def heuristic(node_id: int) -> float:
            return network.node(node_id).point.distance_to(goal)

    return _search(network, source, target, heuristic, max_distance, stats)


def _reconstruct(prev: Dict[int, int], source: int, target: int) -> List[int]:
    path = [target]
    while path[-1] != source:
        path.append(prev[path[-1]])
    path.reverse()
    return path


# --------------------------------------------------------------------- ALT


class LandmarkIndex:
    """Precomputed landmark distance tables for the ALT heuristic.

    Landmarks are chosen by farthest-point sampling on network distance
    (good geometric spread at the periphery, where triangle-inequality
    bounds are tightest).  For each landmark ``L`` the index stores the
    full forward table ``d(L, ·)`` and backward table ``d(·, L)``; for a
    query towards ``t`` the admissible lower bound on ``d(u, t)`` is::

        max_L max( d(u, L) - d(t, L),  d(L, t) - d(L, u) )

    Both terms follow from the triangle inequality on the directed graph,
    and the resulting heuristic is consistent, so A* remains exact.
    """

    def __init__(
        self,
        landmarks: Tuple[int, ...],
        forward: Tuple[Dict[int, float], ...],
        backward: Tuple[Dict[int, float], ...],
    ) -> None:
        self._landmarks = landmarks
        self._forward = forward
        self._backward = backward

    @classmethod
    def build(cls, network: RoadNetwork, n_landmarks: int = 8) -> "LandmarkIndex":
        """Select landmarks by farthest-point sampling and fill the tables.

        Deterministic: sampling starts from the node farthest from the
        smallest node id, and every argmax tie is broken towards the
        smaller node id.
        """
        node_ids = sorted(n.node_id for n in network.nodes())
        if not node_ids or n_landmarks <= 0:
            return cls((), (), ())
        n_landmarks = min(n_landmarks, len(node_ids))

        root_table = dijkstra_all(network, node_ids[0])
        first = cls._argmax(node_ids, lambda v: root_table.get(v, -1.0))

        landmarks: List[int] = [first]
        forward: List[Dict[int, float]] = [dijkstra_all(network, first)]
        # min over chosen landmarks of the forward distance to each node.
        min_dist: Dict[int, float] = dict(forward[0])
        while len(landmarks) < n_landmarks:
            chosen = set(landmarks)
            candidate = cls._argmax(
                node_ids,
                lambda v: math.inf if v not in chosen and v not in min_dist
                else (-1.0 if v in chosen else min_dist[v]),
            )
            if candidate in chosen:
                break
            landmarks.append(candidate)
            table = dijkstra_all(network, candidate)
            forward.append(table)
            for v, d in table.items():
                if d < min_dist.get(v, math.inf):
                    min_dist[v] = d
        backward = [
            dijkstra_all(network, landmark, reverse=True) for landmark in landmarks
        ]
        return cls(tuple(landmarks), tuple(forward), tuple(backward))

    @staticmethod
    def _argmax(node_ids: Sequence[int], key: Callable[[int], float]) -> int:
        best = node_ids[0]
        best_val = key(best)
        for v in node_ids[1:]:
            val = key(v)
            if val > best_val:
                best, best_val = v, val
        return best

    @property
    def landmarks(self) -> Tuple[int, ...]:
        return self._landmarks

    @property
    def forward_tables(self) -> Tuple[Dict[int, float], ...]:
        """Per-landmark forward distance tables ``d(L, ·)`` (read-only use)."""
        return self._forward

    @property
    def backward_tables(self) -> Tuple[Dict[int, float], ...]:
        """Per-landmark backward distance tables ``d(·, L)`` (read-only use)."""
        return self._backward

    def __len__(self) -> int:
        return len(self._landmarks)

    def lower_bound(self, source: int, target: int) -> float:
        """Admissible lower bound on ``d(source, target)``."""
        return self.heuristic_to(target)(source)

    def heuristic_to(self, target: int) -> Heuristic:
        """The ALT lower-bound function towards a fixed target.

        The per-landmark target distances are resolved once here, so the
        returned callable does only dictionary lookups per node.
        """
        rows: List[Tuple[Dict[int, float], Dict[int, float], Optional[float], Optional[float]]] = []
        for fwd, bwd in zip(self._forward, self._backward):
            rows.append((fwd, bwd, fwd.get(target), bwd.get(target)))

        def h(u: int) -> float:
            best = 0.0
            for fwd, bwd, l_to_t, t_to_l in rows:
                if l_to_t is not None:
                    l_to_u = fwd.get(u)
                    if l_to_u is not None:
                        diff = l_to_t - l_to_u
                        if diff > best:
                            best = diff
                if t_to_l is not None:
                    u_to_l = bwd.get(u)
                    if u_to_l is not None:
                        diff = u_to_l - t_to_l
                        if diff > best:
                            best = diff
            return best

        return h

    def heuristic_from(self, source: int) -> Heuristic:
        """The ALT lower-bound function *from* a fixed source.

        Mirror image of :meth:`heuristic_to`: the returned callable is an
        admissible, consistent lower bound on ``d(source, u)``, built from
        the same triangle inequalities —

            d(s, u) >= max_L max( d(L, u) - d(L, s),  d(s, L) - d(u, L) )

        The bidirectional search uses it to shape the backward frontier.
        """
        rows: List[Tuple[Dict[int, float], Dict[int, float], Optional[float], Optional[float]]] = []
        for fwd, bwd in zip(self._forward, self._backward):
            rows.append((fwd, bwd, fwd.get(source), bwd.get(source)))

        def h(u: int) -> float:
            best = 0.0
            for fwd, bwd, l_to_s, s_to_l in rows:
                if l_to_s is not None:
                    l_to_u = fwd.get(u)
                    if l_to_u is not None:
                        diff = l_to_u - l_to_s
                        if diff > best:
                            best = diff
                if s_to_l is not None:
                    u_to_l = bwd.get(u)
                    if u_to_l is not None:
                        diff = s_to_l - u_to_l
                        if diff > best:
                            best = diff
            return best

        return h


def combined_heuristic(
    network: RoadNetwork, target: int, landmarks: Optional[LandmarkIndex]
) -> Heuristic:
    """``max(euclidean, ALT)`` towards ``target`` — admissible and consistent.

    Falls back to the euclidean bound alone when no landmark index is
    given (or it is empty), so callers can thread an optional index
    unconditionally.
    """
    goal = network.node(target).point

    def euclid(u: int) -> float:
        return network.node(u).point.distance_to(goal)

    if landmarks is None or len(landmarks) == 0:
        return euclid
    alt = landmarks.heuristic_to(target)

    def h(u: int) -> float:
        return max(euclid(u), alt(u))

    return h


def combined_heuristic_from(
    network: RoadNetwork, source: int, landmarks: Optional[LandmarkIndex]
) -> Heuristic:
    """``max(euclidean, ALT)`` lower bound on ``d(source, u)``.

    The "from" counterpart of :func:`combined_heuristic`; both are needed to
    build the consistent average potential of the bidirectional search.
    """
    origin = network.node(source).point

    def euclid(u: int) -> float:
        return network.node(u).point.distance_to(origin)

    if landmarks is None or len(landmarks) == 0:
        return euclid
    alt = landmarks.heuristic_from(source)

    def h(u: int) -> float:
        return max(euclid(u), alt(u))

    return h


# ------------------------------------------------------- bidirectional ALT


def _bidi_search(
    network: RoadNetwork,
    source: int,
    target: int,
    max_distance: float,
    landmarks: Optional[LandmarkIndex],
    stats: Optional[SearchStats],
) -> Tuple[float, Dict[int, float], Dict[int, float]]:
    """Bidirectional Dijkstra with consistent average landmark potentials.

    Forward and backward searches run on reduced edge weights derived from
    the average potential ``p(v) = (pi_t(v) - pi_s(v)) / 2`` (``pi_t``: lower
    bound on ``d(v, t)``; ``pi_s``: lower bound on ``d(s, v)``).  Using ``p``
    forward and ``-p`` backward keeps both reduced weight functions
    non-negative and makes the two searches consistent with each other, so
    the classic meet-in-the-middle argument applies.

    The loop keeps settling nodes while ``top_f + top_b <= mu`` (keys are
    reduced distances, ``mu`` the best connection found so far).  The strict
    inequality at termination guarantees that *every* node of *every*
    shortest path is settled by at least one side — which is what the
    canonical path reconstruction needs.

    ``mu`` is tightened against the other side's *tentative* distances, not
    just its settled map: every tentative entry is the length of an actual
    discovered path, hence a valid upper bound.  This matters on graphs that
    are not strongly connected, where one heap can run empty (its search
    exhausted) before the other side settles anything — connections found
    only through tentative labels would otherwise be missed entirely.

    Returns:
        ``(mu, forward_settled, backward_settled)`` where the dicts map
        settled nodes to exact distances from ``source`` / to ``target``.
    """
    if source == target:
        return 0.0, {source: 0.0}, {target: 0.0}
    pi_t = combined_heuristic(network, target, landmarks)
    pi_s = combined_heuristic_from(network, source, landmarks)
    potential: Dict[int, float] = {}

    def p(v: int) -> float:
        val = potential.get(v)
        if val is None:
            val = 0.5 * (pi_t(v) - pi_s(v))
            potential[v] = val
        return val

    dist_f: Dict[int, float] = {source: 0.0}
    dist_b: Dict[int, float] = {target: 0.0}
    settled_f: Dict[int, float] = {}
    settled_b: Dict[int, float] = {}
    heap_f: List[Tuple[float, int]] = [(p(source), source)]
    heap_b: List[Tuple[float, int]] = [(-p(target), target)]
    mu = math.inf
    if stats is not None:
        stats.searches += 1
    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] > mu:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            __, u = heapq.heappop(heap_f)
            if u in settled_f:
                continue
            du = dist_f[u]
            settled_f[u] = du
            if stats is not None:
                stats.settled += 1
            ru = dist_b.get(u)
            if ru is not None and du + ru < mu:
                mu = du + ru
            if du > max_distance:
                continue
            for sid in network.out_segments(u):
                seg = network.segment(sid)
                v = seg.end
                nd = du + seg.length
                if nd < dist_f.get(v, math.inf):
                    dist_f[v] = nd
                    heapq.heappush(heap_f, (nd + p(v), v))
                rv = dist_b.get(v)
                if rv is not None and nd + rv < mu:
                    mu = nd + rv
        else:
            __, u = heapq.heappop(heap_b)
            if u in settled_b:
                continue
            ru = dist_b[u]
            settled_b[u] = ru
            if stats is not None:
                stats.settled += 1
            du = dist_f.get(u)
            if du is not None and du + ru < mu:
                mu = du + ru
            if ru > max_distance:
                continue
            for sid in network.in_segments(u):
                seg = network.segment(sid)
                v = seg.start
                nr = ru + seg.length
                if nr < dist_b.get(v, math.inf):
                    dist_b[v] = nr
                    heapq.heappush(heap_b, (nr - p(v), v))
                dv = dist_f.get(v)
                if dv is not None and dv + nr < mu:
                    mu = dv + nr
    return mu, settled_f, settled_b


def _min_in_edges(network: RoadNetwork, v: int) -> List[Tuple[int, float]]:
    """In-neighbours of ``v`` with the minimum parallel-segment weight,
    sorted by node id (the canonical enumeration order)."""
    best: Dict[int, float] = {}
    for sid in network.in_segments(v):
        seg = network.segment(sid)
        w = seg.length
        if w < best.get(seg.start, math.inf):
            best[seg.start] = w
    return sorted(best.items())


def _canonical_bidi_path(
    network: RoadNetwork,
    source: int,
    target: int,
    mu: float,
    dist_f: Dict[int, float],
    dist_b: Dict[int, float],
) -> Optional[List[int]]:
    """Reconstruct the canonical shortest path from the two settled frontiers.

    Walks backwards from ``target``, at each node trying in-neighbours in
    ascending id order and keeping the first that provably lies on a
    shortest path.  A candidate is validated through whichever exact label
    it carries — forward distance, backward distance, or the meeting value
    ``mu`` on a crossing edge; every equality below re-uses the additive
    form in which the compared float was originally computed, so the test
    is exact whenever the unidirectional search's own tie test is.
    Candidates settled by neither side cannot be on a shortest path (the
    strict stop rule settles all of them), and a backward-validated branch
    that is *not* on a shortest path can never reach ``source`` (it would
    realise a length-``mu`` path through a non-optimal node), so depth-first
    backtracking returns exactly the canonical min-id predecessor chain —
    the same node path the unidirectional search reconstructs.

    Returns None when no branch closes (only possible under adversarial
    float round-off; callers then fall back to the unidirectional search).
    """
    path = [target]
    on_path = {target}
    iters = [iter(_min_in_edges(network, target))]
    while iters:
        v = path[-1]
        dv = dist_f.get(v)
        rv = dist_b.get(v)
        advanced = False
        for u, w in iters[-1]:
            if u in on_path:
                continue
            du = dist_f.get(u)
            if du is not None:
                if dv is not None:
                    ok = du + w == dv
                else:
                    ok = du + w + rv == mu
            else:
                ru = dist_b.get(u)
                if ru is None:
                    continue
                if dv is not None:
                    ok = dv + ru == mu + w
                else:
                    ok = ru == w + rv
            if not ok:
                continue
            if u == source:
                path.append(u)
                path.reverse()
                return path
            path.append(u)
            on_path.add(u)
            iters.append(iter(_min_in_edges(network, u)))
            advanced = True
            break
        if not advanced:
            iters.pop()
            on_path.discard(path.pop())
    return None


def bidi_astar(
    network: RoadNetwork,
    source: int,
    target: int,
    max_distance: float = math.inf,
    landmarks: Optional[LandmarkIndex] = None,
    stats: Optional[SearchStats] = None,
) -> Tuple[float, List[int]]:
    """Bidirectional ALT shortest path with the canonical tie-break.

    Settles roughly half the nodes of the unidirectional search on road
    networks while returning the *identical* ``(distance, node_path)``:
    the node path is the canonical min-id predecessor chain, and the
    distance is re-accumulated left-to-right along that path, which is the
    exact float the unidirectional search produces.

    Note ``max_distance`` bounds the *returned* distance — pairs farther
    apart yield ``(inf, [])``, matching the membership semantics of
    :func:`dijkstra_all` tables (this differs from :func:`dijkstra`, whose
    bound stops expansion and can still return a slightly longer path).

    Returns:
        ``(distance, node_path)``; ``(inf, [])`` when unreachable or beyond
        ``max_distance``.
    """
    if source == target:
        return 0.0, [source]
    mu, dist_f, dist_b = _bidi_search(
        network, source, target, max_distance, landmarks, stats
    )
    if math.isinf(mu) or mu > max_distance:
        return math.inf, []
    path = _canonical_bidi_path(network, source, target, mu, dist_f, dist_b)
    if path is None:
        # Float round-off defeated the frontier stitching (possible only on
        # adversarially-tied weights): fall back to the unidirectional
        # search, which is always canonical.
        return _search(
            network,
            source,
            target,
            combined_heuristic(network, target, landmarks),
            math.inf,
            stats,
        )
    d = 0.0
    for u, v in zip(path, path[1:]):
        sid = network.cheapest_segment_between(u, v)
        d += network.segment(sid).length
    return d, path


# ----------------------------------------------------------------- routes


def node_path_to_route(network: RoadNetwork, node_path: List[int]) -> Route:
    """Convert a node path to a route, choosing the shortest parallel segment
    when the graph has multi-edges between a node pair.

    Uses the network's precomputed cheapest-segment adjacency map, so the
    conversion is one dictionary lookup per hop.

    Raises:
        ValueError: If consecutive nodes are not adjacent.
    """
    segment_ids: List[int] = []
    for u, v in zip(node_path, node_path[1:]):
        sid = network.cheapest_segment_between(u, v)
        if sid is None:
            raise ValueError(f"no segment connects node {u} to node {v}")
        segment_ids.append(sid)
    return Route.of(segment_ids)


def shortest_route_between_nodes(
    network: RoadNetwork,
    source: int,
    target: int,
    landmarks: Optional[LandmarkIndex] = None,
    stats: Optional[SearchStats] = None,
    bidirectional: bool = False,
) -> Tuple[float, Route]:
    """Shortest route (segments) between two vertices.

    With ``bidirectional=True`` the search runs meet-in-the-middle
    (:func:`bidi_astar`); distance and route are identical either way.

    Returns:
        ``(distance, route)``; ``(inf, empty route)`` when unreachable.
    """
    if bidirectional:
        d, node_path = bidi_astar(
            network, source, target, landmarks=landmarks, stats=stats
        )
    else:
        d, node_path = astar(
            network,
            source,
            target,
            heuristic=combined_heuristic(network, target, landmarks),
            stats=stats,
        )
    if math.isinf(d):
        return math.inf, Route.empty()
    return d, node_path_to_route(network, node_path)


def shortest_route_between_segments(
    network: RoadNetwork,
    from_segment: int,
    to_segment: int,
    landmarks: Optional[LandmarkIndex] = None,
    stats: Optional[SearchStats] = None,
    bidirectional: bool = False,
) -> Tuple[float, Route]:
    """Shortest route starting with ``from_segment`` and ending with
    ``to_segment``.

    The returned distance is the length of the gap between the two segments
    (end vertex of the first to start vertex of the second) — the natural
    link weight for the traverse graph.  The route includes both endpoints.
    With ``bidirectional=True`` the bridge search runs meet-in-the-middle;
    distance and route are identical either way.

    Returns:
        ``(gap_distance, route)``; ``(inf, empty route)`` when unreachable.
    """
    if from_segment == to_segment:
        return 0.0, Route.of([from_segment])
    a = network.segment(from_segment)
    b = network.segment(to_segment)
    if a.end == b.start:
        return 0.0, Route.of([from_segment, to_segment])
    if bidirectional:
        d, node_path = bidi_astar(
            network, a.end, b.start, landmarks=landmarks, stats=stats
        )
    else:
        d, node_path = astar(
            network,
            a.end,
            b.start,
            heuristic=combined_heuristic(network, b.start, landmarks),
            stats=stats,
        )
    if math.isinf(d):
        return math.inf, Route.empty()
    bridge = node_path_to_route(network, node_path)
    return d, Route.of([from_segment, *bridge.segment_ids, to_segment])


def segment_route_length(network: RoadNetwork, route: Route) -> float:
    """Length of a route in metres (thin wrapper for symmetry)."""
    return route.length(network)


class DistanceOracle:
    """Cached shortest-path distances between nodes.

    Map matchers ask for the network distance between candidate projections
    of consecutive GPS points over and over; this oracle memoises single-
    source Dijkstra runs, bounded by ``max_distance``, so repeated sources
    are free.  The memo is an LRU over source nodes bounded by
    ``max_sources`` (None: unbounded, the seed behaviour), so long batch
    runs hold a fixed number of distance tables; ``stats`` counts hits,
    misses and evictions, and ``settled_nodes`` totals the Dijkstra work
    actually done.
    """

    def __init__(
        self,
        network: RoadNetwork,
        max_distance: float = math.inf,
        max_sources: Optional[int] = 2048,
    ) -> None:
        from repro.roadnet.cache import LRUCache

        self._network = network
        self._max_distance = max_distance
        self._cache: "LRUCache[int, Dict[int, float]]" = LRUCache(max_sources)
        self.settled_nodes = 0

    @property
    def stats(self):
        """Hit/miss/eviction counters of the source-table cache."""
        return self._cache.stats

    def prepare(self, sources, targets) -> Dict[int, Dict[int, float]]:
        """Cover a frontier product and hand back one table per source.

        :class:`~repro.roadnet.table_oracle.DistanceTableOracle` shares this
        interface and uses the target hint to run one paused multi-target
        sweep per source; here each source simply gets its full memoised
        table (``targets`` carries no information for the per-pair oracle).
        Either way the returned mappings serve ``.get(target, inf)`` at
        plain-dict speed for every announced target, which is what the
        Viterbi transition loops read in their innermost pair loop.
        """
        return {s: self.table(s) for s in dict.fromkeys(sources)}

    def table(self, source: int) -> Dict[int, float]:
        """The full distance table from ``source``.

        Callers that probe many targets from one source (the Viterbi
        transition loop) fetch the table once instead of paying a cache
        lookup per target.  Unreachable targets are simply absent.
        """
        table = self._cache.get(source)
        if table is None:
            table = dijkstra_all(self._network, source, self._max_distance)
            self.settled_nodes += len(table)
            self._cache.put(source, table)
        return table

    def distance(self, source: int, target: int) -> float:
        """Network distance from node ``source`` to node ``target``.

        Returns ``inf`` when the target is unreachable within the bound.
        """
        return self.table(source).get(target, math.inf)

    def route_distance_between_projections(
        self,
        from_segment: int,
        from_offset: float,
        to_segment: int,
        to_offset: float,
    ) -> float:
        """Travel distance between two on-segment positions.

        Positions are (segment id, arc-length offset) pairs, as produced by
        projecting GPS points onto candidate edges.  Handles the same-segment
        forward case exactly and routes through the graph otherwise.
        """
        net = self._network
        if from_segment == to_segment and to_offset >= from_offset:
            return to_offset - from_offset
        seg_a = net.segment(from_segment)
        seg_b = net.segment(to_segment)
        tail = seg_a.length - from_offset
        via = self.distance(seg_a.end, seg_b.start)
        if math.isinf(via):
            return math.inf
        return tail + via + to_offset

    def clear(self) -> None:
        self._cache.clear()
