"""Shortest paths on the road network.

Provides node-level Dijkstra and A*, plus the segment-level helpers the rest
of the system needs: the shortest *route* (sequence of segments, Definition 4)
between two segments, and a cached many-pair distance oracle used heavily by
ST-Matching, IVMM and the traverse-graph construction.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route

__all__ = [
    "dijkstra",
    "dijkstra_all",
    "astar",
    "node_path_to_route",
    "shortest_route_between_nodes",
    "shortest_route_between_segments",
    "segment_route_length",
    "DistanceOracle",
]


def dijkstra(
    network: RoadNetwork,
    source: int,
    target: int,
    max_distance: float = math.inf,
) -> Tuple[float, List[int]]:
    """Shortest node path from ``source`` to ``target``.

    Returns:
        ``(distance, node_path)``; ``(inf, [])`` when unreachable or farther
        than ``max_distance``.
    """
    if source == target:
        return 0.0, [source]
    dist: Dict[int, float] = {source: 0.0}
    prev: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        if u == target:
            return d, _reconstruct(prev, source, target)
        if d > max_distance:
            break
        for sid in network.out_segments(u):
            seg = network.segment(sid)
            nd = d + seg.length
            if nd < dist.get(seg.end, math.inf):
                dist[seg.end] = nd
                prev[seg.end] = u
                heapq.heappush(heap, (nd, seg.end))
    return math.inf, []


def dijkstra_all(
    network: RoadNetwork, source: int, max_distance: float = math.inf
) -> Dict[int, float]:
    """Distances from ``source`` to every node within ``max_distance``."""
    dist: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled: Dict[int, float] = {}
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if d > max_distance:
            break
        settled[u] = d
        for sid in network.out_segments(u):
            seg = network.segment(sid)
            nd = d + seg.length
            if nd < dist.get(seg.end, math.inf):
                dist[seg.end] = nd
                heapq.heappush(heap, (nd, seg.end))
    return settled


def astar(
    network: RoadNetwork,
    source: int,
    target: int,
    max_distance: float = math.inf,
) -> Tuple[float, List[int]]:
    """A* with the euclidean heuristic (admissible: roads are never shorter
    than the straight line).

    Returns:
        ``(distance, node_path)``; ``(inf, [])`` when unreachable.
    """
    if source == target:
        return 0.0, [source]
    goal = network.node(target).point

    def h(node_id: int) -> float:
        return network.node(node_id).point.distance_to(goal)

    g: Dict[int, float] = {source: 0.0}
    prev: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(h(source), source)]
    closed: set[int] = set()
    while heap:
        f, u = heapq.heappop(heap)
        if u in closed:
            continue
        if u == target:
            return g[u], _reconstruct(prev, source, target)
        closed.add(u)
        if g[u] > max_distance:
            break
        for sid in network.out_segments(u):
            seg = network.segment(sid)
            ng = g[u] + seg.length
            if ng < g.get(seg.end, math.inf):
                g[seg.end] = ng
                prev[seg.end] = u
                heapq.heappush(heap, (ng + h(seg.end), seg.end))
    return math.inf, []


def _reconstruct(prev: Dict[int, int], source: int, target: int) -> List[int]:
    path = [target]
    while path[-1] != source:
        path.append(prev[path[-1]])
    path.reverse()
    return path


def node_path_to_route(network: RoadNetwork, node_path: List[int]) -> Route:
    """Convert a node path to a route, choosing the shortest parallel segment
    when the graph has multi-edges between a node pair.

    Raises:
        ValueError: If consecutive nodes are not adjacent.
    """
    segment_ids: List[int] = []
    for u, v in zip(node_path, node_path[1:]):
        best: Optional[int] = None
        best_len = math.inf
        for sid in network.out_segments(u):
            seg = network.segment(sid)
            if seg.end == v and seg.length < best_len:
                best = sid
                best_len = seg.length
        if best is None:
            raise ValueError(f"no segment connects node {u} to node {v}")
        segment_ids.append(best)
    return Route.of(segment_ids)


def shortest_route_between_nodes(
    network: RoadNetwork, source: int, target: int
) -> Tuple[float, Route]:
    """Shortest route (segments) between two vertices.

    Returns:
        ``(distance, route)``; ``(inf, empty route)`` when unreachable.
    """
    d, node_path = astar(network, source, target)
    if math.isinf(d):
        return math.inf, Route.empty()
    return d, node_path_to_route(network, node_path)


def shortest_route_between_segments(
    network: RoadNetwork, from_segment: int, to_segment: int
) -> Tuple[float, Route]:
    """Shortest route starting with ``from_segment`` and ending with
    ``to_segment``.

    The returned distance is the length of the gap between the two segments
    (end vertex of the first to start vertex of the second) — the natural
    link weight for the traverse graph.  The route includes both endpoints.

    Returns:
        ``(gap_distance, route)``; ``(inf, empty route)`` when unreachable.
    """
    if from_segment == to_segment:
        return 0.0, Route.of([from_segment])
    a = network.segment(from_segment)
    b = network.segment(to_segment)
    if a.end == b.start:
        return 0.0, Route.of([from_segment, to_segment])
    d, node_path = astar(network, a.end, b.start)
    if math.isinf(d):
        return math.inf, Route.empty()
    bridge = node_path_to_route(network, node_path)
    return d, Route.of([from_segment, *bridge.segment_ids, to_segment])


def segment_route_length(network: RoadNetwork, route: Route) -> float:
    """Length of a route in metres (thin wrapper for symmetry)."""
    return route.length(network)


class DistanceOracle:
    """Cached shortest-path distances between nodes.

    Map matchers ask for the network distance between candidate projections
    of consecutive GPS points over and over; this oracle memoises single-
    source Dijkstra runs, bounded by ``max_distance``, so repeated sources
    are free.
    """

    def __init__(self, network: RoadNetwork, max_distance: float = math.inf) -> None:
        self._network = network
        self._max_distance = max_distance
        self._cache: Dict[int, Dict[int, float]] = {}

    def distance(self, source: int, target: int) -> float:
        """Network distance from node ``source`` to node ``target``.

        Returns ``inf`` when the target is unreachable within the bound.
        """
        table = self._cache.get(source)
        if table is None:
            table = dijkstra_all(self._network, source, self._max_distance)
            self._cache[source] = table
        return table.get(target, math.inf)

    def route_distance_between_projections(
        self,
        from_segment: int,
        from_offset: float,
        to_segment: int,
        to_offset: float,
    ) -> float:
        """Travel distance between two on-segment positions.

        Positions are (segment id, arc-length offset) pairs, as produced by
        projecting GPS points onto candidate edges.  Handles the same-segment
        forward case exactly and routes through the graph otherwise.
        """
        net = self._network
        if from_segment == to_segment and to_offset >= from_offset:
            return to_offset - from_offset
        seg_a = net.segment(from_segment)
        seg_b = net.segment(to_segment)
        tail = seg_a.length - from_offset
        via = self.distance(seg_a.end, seg_b.start)
        if math.isinf(via):
            return math.inf
        return tail + via + to_offset

    def clear(self) -> None:
        self._cache.clear()
