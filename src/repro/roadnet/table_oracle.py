"""Batched many-to-many distance tables for transition scoring.

The Viterbi transition loops of every matcher — and the splice scoring of
reference assembly — ask for network distances between the candidate
frontier of step *i* and the frontier of step *i+1*.  The per-pair
:class:`~repro.roadnet.shortest_path.DistanceOracle` answers each source by
running one *full* bounded Dijkstra (``dijkstra_all``), which settles every
node within ``max_distance`` even though only a handful of frontier targets
are ever read.

:class:`DistanceTableOracle` replaces that with PHAST-style row sweeps: one
multi-target Dijkstra per source frontier node that *pauses* as soon as all
requested targets are settled.  Rows are resumable — a later lookup for an
uncovered target continues the same heap instead of restarting — so every
distance served is the exact ``dijkstra_all`` value (identical relaxation
discipline, identical float sums) at a fraction of the settled nodes.
Single-pair lookups with no prepared row fall back to the bidirectional ALT
search, whose distance is re-accumulated along the canonical path and
therefore also bit-matches the unidirectional value.

Rows live in an LRU bounded by ``max_rows``; ``prepare_for_fork`` compacts
each row's pending heap into a tuple so batch workers share the warmed rows
copy-on-write without dirtying pages.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.roadnet.cache import LRUCache
from repro.roadnet.network import RoadNetwork
from repro.roadnet.shortest_path import LandmarkIndex, SearchStats, bidi_astar

__all__ = ["DistanceTableOracle"]


class _Row:
    """One resumable single-source sweep: settled distances + frontier."""

    __slots__ = ("settled", "dist", "heap", "complete")

    def __init__(self, source: int) -> None:
        self.settled: Dict[int, float] = {}
        self.dist: Dict[int, float] = {source: 0.0}
        self.heap: Union[List[Tuple[float, int]], Tuple[Tuple[float, int], ...]] = [
            (0.0, source)
        ]
        self.complete = False


class _RowView:
    """Read view of one row with lazy coverage.

    Behaves like the plain dict returned by ``DistanceOracle.table``: ``get``
    with a default, membership, item access.  A lookup for a target the
    sweep has not reached yet resumes the row first, so reads are always
    exact — absent means *unreachable within the bound*, never *not swept
    yet*.
    """

    __slots__ = ("_oracle", "_row")

    def __init__(self, oracle: "DistanceTableOracle", row: _Row) -> None:
        self._oracle = oracle
        self._row = row

    def get(self, target: int, default=None):
        row = self._row
        d = row.settled.get(target)
        if d is not None:
            return d
        if not row.complete:
            self._oracle._sweep(row, (target,))
            d = row.settled.get(target)
            if d is not None:
                return d
        return default

    def __contains__(self, target: int) -> bool:
        return self.get(target) is not None

    def __getitem__(self, target: int) -> float:
        d = self.get(target)
        if d is None:
            raise KeyError(target)
        return d


class DistanceTableOracle:
    """Many-to-many distance tables over candidate frontiers.

    Drop-in for :class:`~repro.roadnet.shortest_path.DistanceOracle`: same
    ``prepare`` / ``table`` / ``distance`` /
    ``route_distance_between_projections`` surface, same LRU ``stats``, and
    bit-identical distances — only the amount of Dijkstra work differs.

    Args:
        network: The road network.
        max_distance: Search bound; pairs farther apart read as ``inf``.
        max_rows: Source rows held (None: unbounded).
        landmarks: Optional ALT index accelerating the single-pair fallback.
        search_stats: Optional counters charged by the fallback searches.
    """

    def __init__(
        self,
        network: RoadNetwork,
        max_distance: float = math.inf,
        max_rows: Optional[int] = 2048,
        landmarks: Optional[LandmarkIndex] = None,
        search_stats: Optional[SearchStats] = None,
    ) -> None:
        self._network = network
        self._max_distance = max_distance
        self._rows: "LRUCache[int, _Row]" = LRUCache(max_rows)
        self._landmarks = landmarks
        self._search_stats = search_stats
        self.settled_nodes = 0
        self.sweeps = 0
        self.fallbacks = 0

    @property
    def stats(self):
        """Hit/miss/eviction counters of the row cache."""
        return self._rows.stats

    # ------------------------------------------------------------- batching

    def prepare(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Dict[int, float]]:
        """Cover the ``sources x targets`` frontier product.

        Runs (or resumes) one multi-target sweep per source, stopping each
        as soon as all requested targets are settled, and returns each
        source's raw settled-distance dict so the caller's inner pair loop
        reads at plain-dict speed.  The returned mappings are authoritative
        *for the announced targets only* — an absent announced target is
        unreachable within the bound, but targets never announced may be
        absent merely because the sweep paused before reaching them (use
        :meth:`table` or :meth:`distance` for those).  Subsequent ``table``
        and ``distance`` reads for prepared pairs are dictionary lookups.
        """
        wanted = tuple(dict.fromkeys(targets))
        tables: Dict[int, Dict[int, float]] = {}
        for source in dict.fromkeys(sources):
            row = self._row(source)
            if wanted:
                self._sweep(row, wanted)
            tables[source] = row.settled
        return tables

    def table(self, source: int) -> _RowView:
        """The (lazily covered) distance table from ``source``."""
        return _RowView(self, self._row(source))

    def distance(self, source: int, target: int) -> float:
        """Network distance from ``source`` to ``target``.

        Served from the source's row when one exists; a stray pair with no
        row falls back to one bidirectional ALT search instead of sweeping
        a whole new row (and does not evict a prepared row for it).

        Returns ``inf`` when the target is unreachable within the bound.
        """
        row = self._rows.get(source)
        if row is not None:
            d = row.settled.get(target)
            if d is not None:
                return d
            if not row.complete:
                self._sweep(row, (target,))
                d = row.settled.get(target)
                if d is not None:
                    return d
            return math.inf
        self.fallbacks += 1
        d, __ = bidi_astar(
            self._network,
            source,
            target,
            max_distance=self._max_distance,
            landmarks=self._landmarks,
            stats=self._search_stats,
        )
        return d

    def route_distance_between_projections(
        self,
        from_segment: int,
        from_offset: float,
        to_segment: int,
        to_offset: float,
    ) -> float:
        """Travel distance between two on-segment positions.

        Mirrors ``DistanceOracle.route_distance_between_projections``
        exactly (same arithmetic, same same-segment shortcut).
        """
        net = self._network
        if from_segment == to_segment and to_offset >= from_offset:
            return to_offset - from_offset
        seg_a = net.segment(from_segment)
        seg_b = net.segment(to_segment)
        tail = seg_a.length - from_offset
        via = self.distance(seg_a.end, seg_b.start)
        if math.isinf(via):
            return math.inf
        return tail + via + to_offset

    # ------------------------------------------------------------ internals

    def _row(self, source: int) -> _Row:
        row = self._rows.get(source)
        if row is None:
            row = _Row(source)
            self._rows.put(source, row)
        return row

    def _sweep(self, row: _Row, targets: Sequence[int]) -> None:
        """Run or resume the row's Dijkstra until ``targets`` are settled.

        The pop/relax discipline replicates ``dijkstra_all`` step for step
        (same heap keys, same bound check, same relaxation), so the settled
        distances are float-identical to the per-pair oracle's tables —
        pausing between calls only changes *when* the work happens.
        """
        if row.complete:
            return
        settled = row.settled
        remaining = {t for t in targets if t not in settled}
        if not remaining:
            return
        self.sweeps += 1
        heap = row.heap
        if isinstance(heap, tuple):  # sealed by prepare_for_fork
            heap = list(heap)
            row.heap = heap
        dist = row.dist
        network = self._network
        max_distance = self._max_distance
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            if d > max_distance:
                row.complete = True
                return
            settled[u] = d
            self.settled_nodes += 1
            remaining.discard(u)
            for sid in network.out_segments(u):
                seg = network.segment(sid)
                v = seg.end
                nd = d + seg.length
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
            if not remaining:
                return
        row.complete = True

    # ------------------------------------------------------------ lifecycle

    def prepare_for_fork(self) -> None:
        """Compact pending frontiers before a worker pool forks.

        Heaps become tuples (smaller, allocation-free COW footprint); the
        first post-fork resume converts back to a list in the worker's own
        address space.
        """
        for row in self._rows.values():
            if isinstance(row.heap, list):
                row.heap = tuple(row.heap)

    def clear(self) -> None:
        self._rows.clear()
