"""Connectivity analysis, generic over abstract directed graphs.

Used in two places: validating that generated road networks are strongly
connected (so every OD pair is routable), and the *graph augmentation*
subroutine of the traverse-graph inference (Algorithm 1, line 9), which must
detect and stitch together disconnected components of the conceptual graph.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Set, TypeVar

from repro.roadnet.network import RoadNetwork

__all__ = [
    "strongly_connected_components",
    "weakly_connected_components",
    "is_strongly_connected",
    "network_strongly_connected",
]

N = TypeVar("N", bound=Hashable)
Adjacency = Callable[[N], Iterable[N]]


def strongly_connected_components(
    nodes: Iterable[N], adj: Adjacency
) -> List[Set[N]]:
    """Tarjan's SCC algorithm, iterative to avoid recursion limits.

    Returns:
        SCCs in reverse topological order of the condensation.
    """
    index_of: Dict[N, int] = {}
    lowlink: Dict[N, int] = {}
    on_stack: Set[N] = set()
    stack: List[N] = []
    sccs: List[Set[N]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        # Each frame: (node, iterator over successors).
        work: List[tuple[N, Iterable[N]]] = [(root, iter(adj(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adj(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: Set[N] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def weakly_connected_components(
    nodes: Iterable[N], adj: Adjacency, radj: Adjacency
) -> List[Set[N]]:
    """Connected components ignoring edge direction.

    Args:
        adj: Forward adjacency.
        radj: Reverse adjacency (predecessors).
    """
    seen: Set[N] = set()
    components: List[Set[N]] = []
    for root in nodes:
        if root in seen:
            continue
        component: Set[N] = {root}
        seen.add(root)
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for nxt in list(adj(node)) + list(radj(node)):
                if nxt not in seen:
                    seen.add(nxt)
                    component.add(nxt)
                    frontier.append(nxt)
        components.append(component)
    return components


def is_strongly_connected(nodes: Iterable[N], adj: Adjacency) -> bool:
    """True if the abstract graph has exactly one SCC (or is empty)."""
    node_list = list(nodes)
    if not node_list:
        return True
    sccs = strongly_connected_components(node_list, adj)
    return len(sccs) == 1


def network_strongly_connected(network: RoadNetwork) -> bool:
    """True if every vertex of the road network can reach every other."""

    def adj(node_id: int) -> Iterable[int]:
        return (network.segment(sid).end for sid in network.out_segments(node_id))

    return is_strongly_connected((n.node_id for n in network.nodes()), adj)
