"""OpenStreetMap import.

Builds a :class:`~repro.roadnet.network.RoadNetwork` from an OSM XML
extract (the ``.osm`` format exported by openstreetmap.org, Overpass or
``osmium extract``), so the system runs against real city maps:

* highway-tagged ways become road segments (one per direction unless
  ``oneway`` says otherwise),
* WGS-84 coordinates are projected to planar metres around the extract's
  centroid with :class:`~repro.geo.projection.LonLatProjector`,
* speed limits come from ``maxspeed`` when parseable, otherwise from a
  highway-class default table,
* ways are split at shared intersection nodes so the graph has proper
  topology.

Only the standard library's ``xml.etree`` is used.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.geo.projection import LonLatProjector
from repro.roadnet.network import RoadNetwork, RoadNode, RoadSegment

__all__ = ["OSMImportConfig", "load_osm_network", "parse_osm_network", "DEFAULT_SPEEDS_KMH"]

#: Default speed (km/h) per OSM highway class.
DEFAULT_SPEEDS_KMH: Dict[str, float] = {
    "motorway": 100.0,
    "motorway_link": 60.0,
    "trunk": 80.0,
    "trunk_link": 50.0,
    "primary": 60.0,
    "primary_link": 40.0,
    "secondary": 50.0,
    "secondary_link": 40.0,
    "tertiary": 40.0,
    "tertiary_link": 30.0,
    "unclassified": 30.0,
    "residential": 30.0,
    "living_street": 10.0,
    "service": 20.0,
}


@dataclass(frozen=True, slots=True)
class OSMImportConfig:
    """Import options.

    Attributes:
        highway_classes: Way classes to keep (None = every class with a
            default speed).
        origin: Projection origin ``(lon, lat)``; None centres on the data.
        fallback_speed_kmh: Speed for kept ways with no table entry.
    """

    highway_classes: Optional[Set[str]] = None
    origin: Optional[Tuple[float, float]] = None
    fallback_speed_kmh: float = 30.0


def _parse_maxspeed(raw: Optional[str]) -> Optional[float]:
    """Parse an OSM ``maxspeed`` value to km/h; None when unparseable."""
    if not raw:
        return None
    raw = raw.strip().lower()
    try:
        if raw.endswith("mph"):
            return float(raw[:-3].strip()) * 1.609344
        if raw.endswith("km/h"):
            return float(raw[:-4].strip())
        return float(raw)
    except ValueError:
        return None


def parse_osm_network(
    xml_text: str, config: OSMImportConfig = OSMImportConfig()
) -> RoadNetwork:
    """Build a road network from OSM XML text.

    Raises:
        ValueError: If the document contains no usable highway ways.
    """
    root = ET.fromstring(xml_text)

    # Pass 1: node coordinates.
    coords: Dict[int, Tuple[float, float]] = {}
    for node in root.iter("node"):
        coords[int(node.get("id"))] = (
            float(node.get("lon")),
            float(node.get("lat")),
        )

    # Pass 2: highway ways with their tags.
    ways: List[Tuple[List[int], Dict[str, str]]] = []
    node_usage: Dict[int, int] = {}
    for way in root.iter("way"):
        tags = {t.get("k"): t.get("v") for t in way.findall("tag")}
        highway = tags.get("highway")
        if highway is None:
            continue
        if config.highway_classes is not None:
            if highway not in config.highway_classes:
                continue
        elif highway not in DEFAULT_SPEEDS_KMH:
            continue
        refs = [int(nd.get("ref")) for nd in way.findall("nd")]
        refs = [r for r in refs if r in coords]
        if len(refs) < 2:
            continue
        ways.append((refs, tags))
        for r in refs:
            node_usage[r] = node_usage.get(r, 0) + 1

    if not ways:
        raise ValueError("no usable highway ways in the OSM document")

    # Projection origin: configured or the data centroid.
    if config.origin is not None:
        origin_lon, origin_lat = config.origin
    else:
        used = {r for refs, __ in ways for r in refs}
        origin_lon = sum(coords[r][0] for r in used) / len(used)
        origin_lat = sum(coords[r][1] for r in used) / len(used)
    projector = LonLatProjector(origin_lon, origin_lat)

    # Graph vertices: way endpoints and nodes shared by 2+ ways
    # (intersections).  Interior nodes stay as polyline shape points.
    junction: Set[int] = set()
    for refs, __ in ways:
        junction.add(refs[0])
        junction.add(refs[-1])
    for r, usage in node_usage.items():
        if usage >= 2:
            junction.add(r)

    network = RoadNetwork()
    osm_to_vertex: Dict[int, int] = {}

    def vertex_for(osm_id: int) -> int:
        if osm_id not in osm_to_vertex:
            vid = len(osm_to_vertex)
            lon, lat = coords[osm_id]
            network.add_node(RoadNode(vid, projector.to_plane(lon, lat)))
            osm_to_vertex[osm_id] = vid
        return osm_to_vertex[osm_id]

    segment_id = 0

    def add_piece(piece: List[int], speed: float, oneway: bool) -> None:
        nonlocal segment_id
        start = vertex_for(piece[0])
        end = vertex_for(piece[-1])
        shape = [
            projector.to_plane(*coords[r]) for r in piece
        ]
        if start == end:
            return  # degenerate loop piece; skip
        network.add_segment(
            RoadSegment.build(segment_id, start, end, shape, speed)
        )
        segment_id += 1
        if not oneway:
            network.add_segment(
                RoadSegment.build(
                    segment_id, end, start, list(reversed(shape)), speed
                )
            )
            segment_id += 1

    for refs, tags in ways:
        highway = tags["highway"]
        speed_kmh = _parse_maxspeed(tags.get("maxspeed"))
        if speed_kmh is None:
            speed_kmh = DEFAULT_SPEEDS_KMH.get(highway, config.fallback_speed_kmh)
        speed = max(speed_kmh, 1.0) / 3.6
        raw_oneway = tags.get("oneway", "no").lower()
        reversed_way = raw_oneway == "-1"
        oneway = raw_oneway in ("yes", "true", "1", "-1")
        node_list = list(reversed(refs)) if reversed_way else refs

        # Split the way at junction nodes.
        piece: List[int] = [node_list[0]]
        for r in node_list[1:]:
            piece.append(r)
            if r in junction and len(piece) >= 2:
                add_piece(piece, speed, oneway)
                piece = [r]
        if len(piece) >= 2:
            add_piece(piece, speed, oneway)

    return network


def load_osm_network(
    path: Union[str, Path], config: OSMImportConfig = OSMImportConfig()
) -> RoadNetwork:
    """Read an ``.osm`` XML file into a road network."""
    text = Path(path).read_text(encoding="utf-8")
    return parse_osm_network(text, config)
