"""K-shortest loopless paths (Yen's algorithm).

The traverse-graph inference (Algorithm 1 of the paper, line 13) ranks the
top-K shortest paths between each source/destination candidate-edge pair.
Yen's algorithm [16] is implemented generically over any directed graph given
as an adjacency function, so the same code serves both the physical road
network and the conceptual traverse graph.
"""

from __future__ import annotations

import heapq
import math
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
)

__all__ = ["yen_k_shortest_paths", "dijkstra_generic"]

N = TypeVar("N", bound=Hashable)
# Either an adjacency function, or a plain mapping node -> (neighbor, weight)
# pairs.  The mapping form lets the search use a C-level ``dict.get`` per
# expansion instead of a Python frame, which matters at K-shortest-path call
# volumes.
Adjacency = Union[
    Callable[[N], Iterable[Tuple[N, float]]],
    Mapping[N, Sequence[Tuple[N, float]]],
]


def dijkstra_generic(
    adj: Adjacency,
    source: N,
    target: N,
    removed_edges: Optional[Set[Tuple[N, N]]] = None,
    removed_nodes: Optional[Set[N]] = None,
) -> Tuple[float, List[N]]:
    """Shortest path on an abstract directed graph.

    Args:
        adj: Adjacency function yielding ``(neighbor, weight)`` pairs.
        source: Start node.
        target: End node.
        removed_edges: Directed edges to treat as absent.
        removed_nodes: Nodes to treat as absent (source exempt).

    Returns:
        ``(cost, node_path)``; ``(inf, [])`` when no path exists.
    """
    if source == target:
        return 0.0, [source]
    dist: Dict[N, float] = {source: 0.0}
    prev: Dict[N, N] = {}
    counter = 0
    heap: List[Tuple[float, int, N]] = [(0.0, counter, source)]
    settled: Set[N] = set()
    heappop, heappush = heapq.heappop, heapq.heappush
    dist_get = dist.get
    inf = math.inf
    adj_get = None if callable(adj) else adj.get
    pruned = removed_nodes is not None or removed_edges is not None
    while heap:
        d, __, u = heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(prev[path[-1]])
            path.reverse()
            return d, path
        neighbors = adj(u) if adj_get is None else adj_get(u, ())
        if pruned:
            for v, w in neighbors:
                if v in settled:
                    continue
                if removed_nodes is not None and v in removed_nodes:
                    continue
                if removed_edges is not None and (u, v) in removed_edges:
                    continue
                if w < 0:
                    raise ValueError("negative edge weights are not supported")
                nd = d + w
                if nd < dist_get(v, inf):
                    dist[v] = nd
                    prev[v] = u
                    counter += 1
                    heappush(heap, (nd, counter, v))
        else:
            for v, w in neighbors:
                if v in settled:
                    continue
                if w < 0:
                    raise ValueError("negative edge weights are not supported")
                nd = d + w
                if nd < dist_get(v, inf):
                    dist[v] = nd
                    prev[v] = u
                    counter += 1
                    heappush(heap, (nd, counter, v))
    return math.inf, []


def yen_k_shortest_paths(
    adj: Adjacency,
    source: N,
    target: N,
    k: int,
) -> List[Tuple[float, List[N]]]:
    """The ``k`` shortest loopless paths from ``source`` to ``target``.

    Classic Yen construction: the best path comes from Dijkstra; each further
    path is found by branching at every *spur node* of the previous one with
    the shared prefix pinned and already-used continuations removed.

    Returns:
        Up to ``k`` ``(cost, node_path)`` pairs sorted by cost; fewer when
        the graph does not contain ``k`` distinct loopless paths.
    """
    if k <= 0:
        return []
    if callable(adj):
        neighbors_of = adj
    else:
        mapping = adj
        neighbors_of = lambda u: mapping.get(u, ())  # noqa: E731
    best_cost, best_path = dijkstra_generic(adj, source, target)
    if not best_path:
        return []
    paths: List[Tuple[float, List[N]]] = [(best_cost, best_path)]
    # Candidate heap with a tiebreak counter so paths never compare.
    candidates: List[Tuple[float, int, int, List[N]]] = []
    seen_paths: Set[Tuple[N, ...]] = {tuple(best_path)}
    counter = 0
    # Lawler's modification: spur searches below the deviation index of the
    # path being branched would rebuild candidates an earlier iteration
    # already produced (identical root prefix, identical removed edges), so
    # each accepted path remembers where it deviated from its parent and
    # branching starts there.  The accepted paths are unchanged; only the
    # redundant Dijkstra runs disappear.
    deviation_of: List[int] = [0]

    while len(paths) < k:
        __, prev_path = paths[-1]
        # Prefix costs of the previous path, computed once per iteration —
        # recomputing the root cost edge-by-edge at every spur node makes
        # the classic formulation quadratic in the path length.
        prefix_costs = [0.0]
        for u, v in zip(prev_path, prev_path[1:]):
            w = min((wt for n, wt in neighbors_of(u) if n == v), default=math.inf)
            prefix_costs.append(prefix_costs[-1] + w)
        for i in range(deviation_of[-1], len(prev_path) - 1):
            spur_node = prev_path[i]
            root_path = prev_path[: i + 1]
            root_cost = prefix_costs[i]

            removed_edges: Set[Tuple[N, N]] = set()
            for __, p in paths:
                if len(p) > i and p[: i + 1] == root_path:
                    removed_edges.add((p[i], p[i + 1]))
            # Loopless: forbid revisiting any root node except the spur.
            removed_nodes: Set[N] = set(root_path[:-1])

            spur_cost, spur_path = dijkstra_generic(
                adj, spur_node, target, removed_edges, removed_nodes
            )
            if not spur_path:
                continue
            total_path = root_path[:-1] + spur_path
            key = tuple(total_path)
            if key in seen_paths:
                continue
            seen_paths.add(key)
            counter += 1
            heapq.heappush(
                candidates, (root_cost + spur_cost, counter, i, total_path)
            )
        if not candidates:
            break
        cost, __, dev, path = heapq.heappop(candidates)
        paths.append((cost, path))
        deviation_of.append(dev)
    return paths
