"""Stay-point detection and trip partitioning (preprocessing, Sec. II-B).

A *stay point* [13] is a region where the object lingers: a maximal run of
observations that stays within ``distance_threshold`` of its anchor for at
least ``time_threshold`` seconds.  The paper's "Trip Partition" step removes
stay-point observations, which naturally splits a long GPS log into trips
with one source and one destination each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.geo.point import Point, centroid
from repro.trajectory.model import GPSPoint, Trajectory

__all__ = ["StayPoint", "detect_stay_points", "partition_trips"]


@dataclass(frozen=True, slots=True)
class StayPoint:
    """A detected stay region.

    Attributes:
        center: Mean coordinate of the member observations.
        arrival: Timestamp of the first member observation.
        departure: Timestamp of the last member observation.
        start_index: Index of the first member in the source trajectory.
        end_index: Index of the last member (inclusive).
    """

    center: Point
    arrival: float
    departure: float
    start_index: int
    end_index: int

    @property
    def duration(self) -> float:
        return self.departure - self.arrival


def detect_stay_points(
    trajectory: Trajectory,
    distance_threshold: float = 200.0,
    time_threshold: float = 20.0 * 60.0,
) -> List[StayPoint]:
    """Detect stay points with the classic anchor-scan of Li/Zheng [13].

    Starting from each anchor ``i``, extend ``j`` while every observation
    stays within ``distance_threshold`` of the anchor; if the dwell time
    ``t_j - t_i`` reaches ``time_threshold`` the run is a stay point, and the
    scan resumes after it.

    Raises:
        ValueError: On non-positive thresholds.
    """
    if distance_threshold <= 0 or time_threshold <= 0:
        raise ValueError("thresholds must be positive")
    pts = trajectory.points
    n = len(pts)
    stays: List[StayPoint] = []
    i = 0
    while i < n - 1:
        anchor = pts[i].point
        j = i + 1
        while j < n and pts[j].point.distance_to(anchor) <= distance_threshold:
            j += 1
        # Members are i .. j-1; check the dwell time.
        if pts[j - 1].t - pts[i].t >= time_threshold and j - 1 > i:
            members = pts[i:j]
            stays.append(
                StayPoint(
                    center=centroid([p.point for p in members]),
                    arrival=pts[i].t,
                    departure=pts[j - 1].t,
                    start_index=i,
                    end_index=j - 1,
                )
            )
            i = j
        else:
            i += 1
    return stays


def partition_trips(
    trajectory: Trajectory,
    distance_threshold: float = 200.0,
    time_threshold: float = 20.0 * 60.0,
    max_gap_s: float = 30.0 * 60.0,
    min_points: int = 2,
) -> List[Trajectory]:
    """Split a raw GPS log into effective trips.

    Stay-point observations are removed (they are parked/idle noise), and
    the log is additionally split wherever the recording gap exceeds
    ``max_gap_s`` (Definition 1's ΔT bound).  Trips shorter than
    ``min_points`` are discarded.  Returned trips share the source
    trajectory's id — archive code re-ids them.
    """
    stays = detect_stay_points(trajectory, distance_threshold, time_threshold)
    excluded = set()
    for s in stays:
        excluded.update(range(s.start_index, s.end_index + 1))

    trips: List[Trajectory] = []
    current: List[GPSPoint] = []

    def flush() -> None:
        if len(current) >= min_points:
            trips.append(Trajectory(trajectory.traj_id, tuple(current)))
        current.clear()

    for idx, p in enumerate(trajectory.points):
        if idx in excluded:
            flush()
            continue
        if current and p.t - current[-1].t > max_gap_s:
            flush()
        current.append(p)
    flush()
    return trips
