"""GPS trajectory model (Definition 1).

A trajectory is a time-ordered sequence of GPS points.  The paper
manipulates trajectories through a handful of primitives which all live
here: nearest-point lookup ``nn(q, T)``, sub-trajectory extraction, sampling
statistics and the low-sampling-rate predicate (ΔT > 2 min).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.geo.bbox import BBox
from repro.geo.point import Point

__all__ = [
    "GPSPoint",
    "Trajectory",
    "LOW_SAMPLING_THRESHOLD_S",
]

#: The paper considers ΔT > 2 minutes to be low-sampling-rate (Sec. II-A).
LOW_SAMPLING_THRESHOLD_S = 120.0


@dataclass(frozen=True, slots=True)
class GPSPoint:
    """A time-stamped GPS observation.

    Attributes:
        point: Planar position in metres.
        t: Timestamp in seconds (any consistent epoch).
    """

    point: Point
    t: float

    @property
    def x(self) -> float:
        return self.point.x

    @property
    def y(self) -> float:
        return self.point.y

    def distance_to(self, other: "GPSPoint") -> float:
        return self.point.distance_to(other.point)

    def speed_to(self, other: "GPSPoint") -> float:
        """Average straight-line speed to another observation (m/s).

        Raises:
            ValueError: If the two observations share a timestamp.
        """
        dt = abs(other.t - self.t)
        if dt == 0.0:
            raise ValueError("cannot compute speed between simultaneous points")
        return self.distance_to(other) / dt


@dataclass(frozen=True, slots=True)
class Trajectory:
    """A time-ordered sequence of GPS points (Definition 1).

    Attributes:
        traj_id: Stable identifier; reference-trajectory bookkeeping (the
            ``C_i(r)`` sets of the scoring functions) hinges on it.
        points: The observations, strictly increasing in time.
    """

    traj_id: int
    points: Tuple[GPSPoint, ...]

    @staticmethod
    def build(traj_id: int, points: Sequence[GPSPoint]) -> "Trajectory":
        """Construct a trajectory, validating temporal order.

        Raises:
            ValueError: If empty or timestamps are not strictly increasing.
        """
        if not points:
            raise ValueError("a trajectory needs at least one point")
        for a, b in zip(points, points[1:]):
            if b.t <= a.t:
                raise ValueError(
                    f"timestamps must strictly increase ({a.t} -> {b.t})"
                )
        return Trajectory(traj_id, tuple(points))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[GPSPoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> GPSPoint:
        return self.points[index]

    @property
    def start_time(self) -> float:
        return self.points[0].t

    @property
    def end_time(self) -> float:
        return self.points[-1].t

    @property
    def duration(self) -> float:
        """Elapsed seconds between the first and last observation."""
        return self.end_time - self.start_time

    @property
    def mean_sampling_interval(self) -> float:
        """Average ΔT between consecutive points (0 for singletons)."""
        if len(self.points) < 2:
            return 0.0
        return self.duration / (len(self.points) - 1)

    @property
    def max_sampling_interval(self) -> float:
        """Largest gap between consecutive points (0 for singletons)."""
        if len(self.points) < 2:
            return 0.0
        return max(b.t - a.t for a, b in zip(self.points, self.points[1:]))

    def is_low_sampling_rate(
        self, threshold: float = LOW_SAMPLING_THRESHOLD_S
    ) -> bool:
        """True when the mean sampling interval exceeds the threshold."""
        return self.mean_sampling_interval > threshold

    def path_length(self) -> float:
        """Sum of straight-line hops between consecutive observations."""
        return sum(a.distance_to(b) for a, b in zip(self.points, self.points[1:]))

    def bbox(self) -> BBox:
        return BBox.from_points([p.point for p in self.points])

    def nearest_index(self, q: Point) -> int:
        """Index of ``nn(q, T)``: the observation nearest to ``q``.

        The scan compares squared distances under strict ``<`` (lowest
        index wins ties) — the rule the shard-side anchor scans mirror.
        Squared distances underflow to 0.0 for offsets below ~1e-162,
        which can tie points whose true distances differ; exact ties are
        therefore refined with ``distance_to`` (``math.hypot``, no
        underflow) so the winner really is the nearest observation.
        """
        best_i = 0
        best_d = math.inf
        best_exact = None
        for i, p in enumerate(self.points):
            d = p.point.squared_distance_to(q)
            if d < best_d:
                best_d = d
                best_i = i
                best_exact = None
            elif d == best_d:
                if best_exact is None:
                    best_exact = self.points[best_i].point.distance_to(q)
                exact = p.point.distance_to(q)
                if exact < best_exact:
                    best_exact = exact
                    best_i = i
        return best_i

    def nearest_point(self, q: Point) -> GPSPoint:
        """``nn(q, T)`` itself."""
        return self.points[self.nearest_index(q)]

    def slice(self, start_index: int, end_index: int) -> "Trajectory":
        """The sub-trajectory ``points[start_index .. end_index]`` inclusive.

        Raises:
            ValueError: On an empty or reversed index range.
        """
        if start_index > end_index:
            raise ValueError(
                f"reversed slice [{start_index}, {end_index}]"
            )
        sub = self.points[start_index : end_index + 1]
        if not sub:
            raise ValueError(f"slice [{start_index}, {end_index}] is empty")
        return Trajectory(self.traj_id, sub)

    def time_window(self, t0: float, t1: float) -> Optional["Trajectory"]:
        """The sub-trajectory of observations with ``t0 <= t <= t1``.

        Returns None when no observation falls in the window.
        """
        sub = tuple(p for p in self.points if t0 <= p.t <= t1)
        if not sub:
            return None
        return Trajectory(self.traj_id, sub)

    def positions(self) -> List[Point]:
        """The bare coordinates, in order."""
        return [p.point for p in self.points]
