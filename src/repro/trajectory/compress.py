"""Trajectory compression.

Two standard reducers for storing large archives:

* :func:`douglas_peucker` — shape-preserving: drops points whose removal
  changes the polyline by less than a spatial tolerance, and
* :func:`uniform_compress` — keep-every-nth thinning.

Compression never invents points, so a compressed trajectory is still a
valid (sparser) sample of the same movement — exactly the degradation the
route-inference system is designed to tolerate.
"""

from __future__ import annotations

from typing import List

from repro.geo.point import Point
from repro.geo.polyline import project_point_to_segment
from repro.trajectory.model import GPSPoint, Trajectory

__all__ = ["douglas_peucker", "uniform_compress", "compression_error"]


def _deviation(p: Point, a: Point, b: Point) -> float:
    closest, __ = project_point_to_segment(p, a, b)
    return p.distance_to(closest)


def douglas_peucker(trajectory: Trajectory, tolerance_m: float) -> Trajectory:
    """Douglas–Peucker simplification with a spatial tolerance in metres.

    Iterative (stack-based) to survive long trajectories.  The first and
    last points are always retained; timestamps ride along untouched.

    Raises:
        ValueError: If ``tolerance_m`` is negative.
    """
    if tolerance_m < 0:
        raise ValueError("tolerance must be non-negative")
    pts = trajectory.points
    n = len(pts)
    if n <= 2:
        return trajectory

    keep = [False] * n
    keep[0] = keep[n - 1] = True
    stack = [(0, n - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2:
            continue
        a = pts[start].point
        b = pts[end].point
        worst = -1.0
        worst_i = -1
        for i in range(start + 1, end):
            d = _deviation(pts[i].point, a, b)
            if d > worst:
                worst = d
                worst_i = i
        if worst > tolerance_m:
            keep[worst_i] = True
            stack.append((start, worst_i))
            stack.append((worst_i, end))

    kept = tuple(p for p, k in zip(pts, keep) if k)
    return Trajectory(trajectory.traj_id, kept)


def uniform_compress(trajectory: Trajectory, keep_every: int) -> Trajectory:
    """Keep every ``keep_every``-th point (endpoints always survive).

    Raises:
        ValueError: If ``keep_every`` < 1.
    """
    if keep_every < 1:
        raise ValueError("keep_every must be at least 1")
    pts = trajectory.points
    if keep_every == 1 or len(pts) <= 2:
        return trajectory
    kept: List[GPSPoint] = [
        p for i, p in enumerate(pts[:-1]) if i % keep_every == 0
    ]
    kept.append(pts[-1])
    return Trajectory(trajectory.traj_id, tuple(kept))


def compression_error(original: Trajectory, compressed: Trajectory) -> float:
    """Max deviation (m) of dropped original points from the compressed
    polyline — the quantity Douglas–Peucker bounds by its tolerance."""
    poly = [p.point for p in compressed.points]
    if len(poly) < 2:
        poly = poly + poly  # degenerate: measure distance to the point
    worst = 0.0
    from repro.geo.polyline import point_to_polyline_distance

    for p in original.points:
        d = point_to_polyline_distance(p.point, poly)
        if d > worst:
            worst = d
    return worst
