"""Trajectory re-sampling and GPS noise injection.

The paper's queries are produced by re-sampling high-rate GeoLife
trajectories "to the desired sampling rates" (Sec. IV-B).  We mirror that
protocol: :func:`downsample` keeps one observation per target interval, and
:func:`add_gps_noise` perturbs positions with gaussian error to emulate GPS
measurement noise (the reason map matching exists at all).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.geo.point import Point
from repro.trajectory.model import GPSPoint, Trajectory

__all__ = ["downsample", "add_gps_noise", "shift_time"]


def downsample(trajectory: Trajectory, interval_s: float) -> Trajectory:
    """Thin a trajectory so consecutive points are >= ``interval_s`` apart.

    The first and last observations are always retained (the final gap may
    therefore be shorter than ``interval_s``).

    Raises:
        ValueError: If ``interval_s`` is not positive.
    """
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    pts = trajectory.points
    if len(pts) <= 2:
        return trajectory
    kept: List[GPSPoint] = [pts[0]]
    for p in pts[1:-1]:
        if p.t - kept[-1].t >= interval_s:
            kept.append(p)
    if pts[-1].t > kept[-1].t:
        kept.append(pts[-1])
    return Trajectory(trajectory.traj_id, tuple(kept))


def add_gps_noise(
    trajectory: Trajectory,
    sigma_m: float,
    rng: Optional[np.random.Generator] = None,
) -> Trajectory:
    """Add isotropic gaussian position noise with std-dev ``sigma_m``.

    Raises:
        ValueError: If ``sigma_m`` is negative.
    """
    if sigma_m < 0:
        raise ValueError("sigma must be non-negative")
    if sigma_m == 0:
        return trajectory
    rng = rng if rng is not None else np.random.default_rng(0)
    noisy = tuple(
        GPSPoint(
            Point(
                p.point.x + float(rng.normal(0.0, sigma_m)),
                p.point.y + float(rng.normal(0.0, sigma_m)),
            ),
            p.t,
        )
        for p in trajectory.points
    )
    return Trajectory(trajectory.traj_id, noisy)


def shift_time(trajectory: Trajectory, offset_s: float) -> Trajectory:
    """Translate all timestamps by ``offset_s`` (used to stagger fleets)."""
    shifted = tuple(GPSPoint(p.point, p.t + offset_s) for p in trajectory.points)
    return Trajectory(trajectory.traj_id, shifted)
