"""Vehicle simulator: drive routes on the road network and emit GPS samples.

This substitutes for the paper's 33,000-taxi Beijing archive (see DESIGN.md
§3).  A simulated vehicle drives a :class:`~repro.roadnet.route.Route` with a
per-segment speed drawn around the speed limit, emitting a position sample
every ``sample_interval_s`` seconds; gaussian GPS noise is applied on top.
Because the driven route is known exactly, simulated trajectories come with
perfect ground truth — stronger than the paper's map-matched proxy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route
from repro.trajectory.model import GPSPoint, Trajectory
from repro.trajectory.resample import add_gps_noise

__all__ = ["DriveConfig", "drive_route", "DrivenTrajectory"]


@dataclass(frozen=True, slots=True)
class DriveConfig:
    """Parameters of a simulated drive.

    Attributes:
        sample_interval_s: Seconds between emitted GPS samples.
        speed_factor: Mean fraction of the speed limit actually driven.
        speed_noise: Relative std-dev of the per-segment speed multiplier.
        gps_sigma_m: Std-dev of gaussian GPS position noise in metres.
    """

    sample_interval_s: float = 15.0
    speed_factor: float = 0.8
    speed_noise: float = 0.15
    gps_sigma_m: float = 10.0

    def __post_init__(self) -> None:
        if self.sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        if not (0.05 <= self.speed_factor <= 1.5):
            raise ValueError("speed_factor out of sane range [0.05, 1.5]")
        if self.speed_noise < 0:
            raise ValueError("speed_noise must be non-negative")
        if self.gps_sigma_m < 0:
            raise ValueError("gps_sigma_m must be non-negative")


@dataclass(frozen=True, slots=True)
class DrivenTrajectory:
    """A simulated trajectory together with its exact ground-truth route."""

    trajectory: Trajectory
    route: Route


def drive_route(
    network: RoadNetwork,
    route: Route,
    traj_id: int,
    start_time: float = 0.0,
    config: DriveConfig = DriveConfig(),
    rng: Optional[np.random.Generator] = None,
) -> DrivenTrajectory:
    """Simulate a vehicle driving ``route`` and record its GPS samples.

    The vehicle drives each segment at
    ``speed_limit * speed_factor * N(1, speed_noise)`` (clamped to stay
    positive and below the limit), emitting samples on a fixed clock.  The
    first sample is at the route start, the last at the route end.

    Raises:
        ValueError: If the route is empty or disconnected.
    """
    if not route:
        raise ValueError("cannot drive an empty route")
    route.validate(network)
    rng = rng if rng is not None else np.random.default_rng(0)

    samples: List[GPSPoint] = []
    t = start_time
    samples.append(GPSPoint(route.start_point(network), t))
    next_emit = t + config.sample_interval_s

    for sid in route.segment_ids:
        seg = network.segment(sid)
        multiplier = float(rng.normal(1.0, config.speed_noise))
        multiplier = min(max(multiplier, 0.3), 1.0 / max(config.speed_factor, 1e-9))
        speed = seg.speed_limit * config.speed_factor * multiplier
        traverse_time = seg.length / speed
        while next_emit <= t + traverse_time:
            offset = (next_emit - t) * speed
            samples.append(GPSPoint(seg.point_at(offset), next_emit))
            next_emit += config.sample_interval_s
        t += traverse_time

    end_point = route.end_point(network)
    if t > samples[-1].t:
        samples.append(GPSPoint(end_point, t))

    clean = Trajectory(traj_id, tuple(samples))
    noisy = add_gps_noise(clean, config.gps_sigma_m, rng)
    return DrivenTrajectory(noisy, route)
