"""Temporal interpolation of trajectories.

Answers "where was the object at time t?" under the usual
constant-velocity-between-samples assumption, and densifies trajectories
to a uniform clock.  Interpolation is *estimation*, not ground truth —
which is the paper's whole point for low-sampling-rate data — but it is
the standard preprocessing for aligning trajectories to a common time
base (co-movement analysis, animation, resampling high-rate data).
"""

from __future__ import annotations

from typing import List

from repro.geo.point import Point
from repro.trajectory.model import GPSPoint, Trajectory

__all__ = ["position_at", "resample_uniform"]


def position_at(trajectory: Trajectory, t: float) -> Point:
    """The interpolated position at time ``t``.

    Linear interpolation between the surrounding samples; clamped to the
    first/last position outside the recorded span.

    Raises:
        ValueError: On an empty trajectory (cannot be constructed anyway).
    """
    pts = trajectory.points
    if t <= pts[0].t:
        return pts[0].point
    if t >= pts[-1].t:
        return pts[-1].point
    # Binary search for the surrounding pair.
    lo, hi = 0, len(pts) - 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if pts[mid].t <= t:
            lo = mid
        else:
            hi = mid
    a, b = pts[lo], pts[hi]
    span = b.t - a.t
    frac = (t - a.t) / span if span > 0 else 0.0
    return Point(
        a.point.x + (b.point.x - a.point.x) * frac,
        a.point.y + (b.point.y - a.point.y) * frac,
    )


def resample_uniform(trajectory: Trajectory, interval_s: float) -> Trajectory:
    """Re-sample a trajectory onto a uniform clock.

    Produces samples at ``start, start+interval, ...`` up to and including
    the final timestamp (added exactly if the grid misses it).  Positions
    are linearly interpolated.

    Raises:
        ValueError: If ``interval_s`` is not positive.
    """
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    pts = trajectory.points
    if len(pts) < 2:
        return trajectory
    out: List[GPSPoint] = []
    t = pts[0].t
    while t < pts[-1].t:
        out.append(GPSPoint(position_at(trajectory, t), t))
        t += interval_s
    out.append(pts[-1])
    return Trajectory(trajectory.traj_id, tuple(out))
