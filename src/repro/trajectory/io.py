"""Trajectory serialisation.

A compact JSON-lines format for trajectory collections: one trajectory per
line, so multi-gigabyte archives stream without loading everything.  Used
by the CLI and the scenario persistence layer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Union

from repro.geo.point import Point
from repro.trajectory.model import GPSPoint, Trajectory

__all__ = [
    "trajectory_to_dict",
    "trajectory_from_dict",
    "save_trajectories",
    "load_trajectories",
]


def trajectory_to_dict(trajectory: Trajectory) -> Dict[str, Any]:
    """Serialise one trajectory to a JSON-compatible dict."""
    return {
        "id": trajectory.traj_id,
        "points": [[p.point.x, p.point.y, p.t] for p in trajectory.points],
    }


def trajectory_from_dict(data: Dict[str, Any]) -> Trajectory:
    """Deserialise a trajectory produced by :func:`trajectory_to_dict`.

    Raises:
        ValueError: On malformed payloads (missing keys, bad ordering).
    """
    if "id" not in data or "points" not in data:
        raise ValueError("trajectory record needs 'id' and 'points'")
    points = [
        GPSPoint(Point(float(x), float(y)), float(t)) for x, y, t in data["points"]
    ]
    return Trajectory.build(int(data["id"]), points)


def save_trajectories(
    trajectories: Iterable[Trajectory], path: Union[str, Path]
) -> int:
    """Write trajectories as JSON lines; returns the count written."""
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        for t in trajectories:
            f.write(json.dumps(trajectory_to_dict(t)))
            f.write("\n")
            count += 1
    return count


def load_trajectories(path: Union[str, Path]) -> List[Trajectory]:
    """Read trajectories saved by :func:`save_trajectories`."""
    return list(iter_trajectories(path))


def iter_trajectories(path: Union[str, Path]) -> Iterator[Trajectory]:
    """Stream trajectories from a JSON-lines file."""
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                yield trajectory_from_dict(json.loads(line))
