"""Trajectory similarity measures (Sec. V related work).

The route-inference system itself only needs nearest-point lookups, but the
surrounding ecosystem (archive deduplication, test oracles, the examples)
uses classic whole-trajectory measures.  Implemented here from scratch:

* DTW   — dynamic time warping distance [28],
* LCSS  — longest common subsequence similarity with an ε matching
  threshold [29],
* EDR   — edit distance on real sequences [30],
* Hausdorff distance (directed and symmetric) as a simple geometric bound.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.geo.point import Point
from repro.trajectory.model import Trajectory

__all__ = [
    "dtw_distance",
    "lcss_similarity",
    "edr_distance",
    "hausdorff_distance",
]


def _positions(t: Trajectory | Sequence[Point]) -> List[Point]:
    if isinstance(t, Trajectory):
        return t.positions()
    return list(t)


def dtw_distance(a: Trajectory | Sequence[Point], b: Trajectory | Sequence[Point]) -> float:
    """Dynamic time warping distance between two point sequences.

    Cost of a matching step is the euclidean distance between the matched
    points; classic O(n·m) dynamic program.

    Raises:
        ValueError: If either sequence is empty.
    """
    pa = _positions(a)
    pb = _positions(b)
    if not pa or not pb:
        raise ValueError("DTW of an empty sequence is undefined")
    n, m = len(pa), len(pb)
    prev = [math.inf] * (m + 1)
    prev[0] = 0.0
    for i in range(1, n + 1):
        cur = [math.inf] * (m + 1)
        for j in range(1, m + 1):
            cost = pa[i - 1].distance_to(pb[j - 1])
            cur[j] = cost + min(prev[j], cur[j - 1], prev[j - 1])
        prev = cur
    return prev[m]


def lcss_similarity(
    a: Trajectory | Sequence[Point],
    b: Trajectory | Sequence[Point],
    epsilon: float,
) -> float:
    """LCSS similarity in [0, 1]: matched fraction of the shorter sequence.

    Two points match when within ``epsilon`` metres.  Robust to outliers
    because unmatched points are skipped rather than paid for.

    Raises:
        ValueError: If either sequence is empty or epsilon is not positive.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    pa = _positions(a)
    pb = _positions(b)
    if not pa or not pb:
        raise ValueError("LCSS of an empty sequence is undefined")
    n, m = len(pa), len(pb)
    prev = [0] * (m + 1)
    for i in range(1, n + 1):
        cur = [0] * (m + 1)
        for j in range(1, m + 1):
            if pa[i - 1].distance_to(pb[j - 1]) <= epsilon:
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = max(prev[j], cur[j - 1])
        prev = cur
    return prev[m] / min(n, m)


def edr_distance(
    a: Trajectory | Sequence[Point],
    b: Trajectory | Sequence[Point],
    epsilon: float,
) -> int:
    """EDR: minimum number of edits to align the sequences.

    Match costs 0 when points are within ``epsilon``; substitution,
    insertion and deletion each cost 1.

    Raises:
        ValueError: If epsilon is not positive.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    pa = _positions(a)
    pb = _positions(b)
    n, m = len(pa), len(pb)
    prev = list(range(m + 1))
    for i in range(1, n + 1):
        cur = [i] + [0] * m
        for j in range(1, m + 1):
            subcost = 0 if pa[i - 1].distance_to(pb[j - 1]) <= epsilon else 1
            cur[j] = min(prev[j - 1] + subcost, prev[j] + 1, cur[j - 1] + 1)
        prev = cur
    return prev[m]


def hausdorff_distance(
    a: Trajectory | Sequence[Point], b: Trajectory | Sequence[Point]
) -> float:
    """Symmetric Hausdorff distance between two point sets.

    Raises:
        ValueError: If either sequence is empty.
    """
    pa = _positions(a)
    pb = _positions(b)
    if not pa or not pb:
        raise ValueError("Hausdorff of an empty sequence is undefined")

    def directed(src: List[Point], dst: List[Point]) -> float:
        worst = 0.0
        for p in src:
            best = min(p.distance_to(q) for q in dst)
            if best > worst:
                worst = best
        return worst

    return max(directed(pa, pb), directed(pb, pa))
