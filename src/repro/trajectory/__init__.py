"""Trajectory substrate: model, preprocessing, simulation, similarity."""

from repro.trajectory.compress import (
    compression_error,
    douglas_peucker,
    uniform_compress,
)
from repro.trajectory.distance import (
    dtw_distance,
    edr_distance,
    hausdorff_distance,
    lcss_similarity,
)
from repro.trajectory.model import LOW_SAMPLING_THRESHOLD_S, GPSPoint, Trajectory
from repro.trajectory.resample import add_gps_noise, downsample, shift_time
from repro.trajectory.simulate import DriveConfig, DrivenTrajectory, drive_route
from repro.trajectory.interpolate import position_at, resample_uniform
from repro.trajectory.io import (
    load_trajectories,
    save_trajectories,
    trajectory_from_dict,
    trajectory_to_dict,
)
from repro.trajectory.staypoint import StayPoint, detect_stay_points, partition_trips

__all__ = [
    "LOW_SAMPLING_THRESHOLD_S",
    "DriveConfig",
    "DrivenTrajectory",
    "GPSPoint",
    "StayPoint",
    "Trajectory",
    "add_gps_noise",
    "compression_error",
    "douglas_peucker",
    "load_trajectories",
    "save_trajectories",
    "trajectory_from_dict",
    "trajectory_to_dict",
    "uniform_compress",
    "detect_stay_points",
    "downsample",
    "drive_route",
    "dtw_distance",
    "edr_distance",
    "hausdorff_distance",
    "lcss_similarity",
    "partition_trips",
    "position_at",
    "resample_uniform",
    "shift_time",
]
