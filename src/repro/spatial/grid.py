"""Uniform grid spatial index.

A simple fixed-cell-size hash grid.  It serves two purposes:

* a second, independent implementation of the range/kNN query contract so the
  R-tree can be differentially tested against it, and
* the density estimator used by the hybrid local-inference strategy
  (Sec. III-B.3), which needs fast "points per km^2" lookups.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Generic, Iterable, List, Tuple, TypeVar

from repro.geo.bbox import BBox
from repro.geo.point import Point

__all__ = ["GridIndex"]

T = TypeVar("T")


class GridIndex(Generic[T]):
    """Point index over uniform square cells.

    Args:
        cell_size: Side length of a grid cell in metres.
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._cell = cell_size
        self._cells: Dict[Tuple[int, int], List[Tuple[Point, T]]] = defaultdict(list)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def cell_size(self) -> float:
        return self._cell

    def _key(self, p: Point) -> Tuple[int, int]:
        return (math.floor(p.x / self._cell), math.floor(p.y / self._cell))

    def insert(self, p: Point, item: T) -> None:
        """Insert a point item."""
        self._cells[self._key(p)].append((p, item))
        self._size += 1

    def extend(self, items: Iterable[Tuple[Point, T]]) -> None:
        """Insert many ``(point, item)`` pairs."""
        for p, item in items:
            self.insert(p, item)

    def search_bbox(self, query: BBox) -> List[T]:
        """All items whose point lies inside ``query``."""
        out: List[T] = []
        ix0 = math.floor(query.min_x / self._cell)
        ix1 = math.floor(query.max_x / self._cell)
        iy0 = math.floor(query.min_y / self._cell)
        iy1 = math.floor(query.max_y / self._cell)
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                bucket = self._cells.get((ix, iy))
                if not bucket:
                    continue
                for p, item in bucket:
                    if query.contains_point(p):
                        out.append(item)
        return out

    def search_radius(self, center: Point, radius: float) -> List[T]:
        """All items within ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out: List[T] = []
        # The box is padded slightly: hypot() rounding can pull a point that
        # lies epsilon outside the exact box back onto the radius boundary.
        box = BBox.around(center, radius * (1.0 + 1e-12) + 1e-9)
        ix0 = math.floor(box.min_x / self._cell)
        ix1 = math.floor(box.max_x / self._cell)
        iy0 = math.floor(box.min_y / self._cell)
        iy1 = math.floor(box.max_y / self._cell)
        r2 = radius * radius
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                bucket = self._cells.get((ix, iy))
                if not bucket:
                    continue
                for p, item in bucket:
                    if p.squared_distance_to(center) <= r2:
                        out.append(item)
        return out

    def nearest(self, query: Point, k: int = 1) -> List[Tuple[float, T]]:
        """The ``k`` nearest items as ``(distance, item)`` pairs.

        Expands a ring of cells outward from the query cell until the best
        candidates found so far cannot be beaten by anything outside the
        searched rings.
        """
        if k <= 0 or self._size == 0:
            return []
        cx, cy = self._key(query)
        best: List[Tuple[float, T]] = []
        ring = 0
        # Upper bound on rings: enough to cover the full extent of the data.
        max_ring = 1 + int(
            max(
                (abs(ix - cx) for ix, __ in self._cells),
                default=0,
            )
            + max((abs(iy - cy) for __, iy in self._cells), default=0)
        )
        while ring <= max_ring:
            for ix in range(cx - ring, cx + ring + 1):
                for iy in range(cy - ring, cy + ring + 1):
                    if max(abs(ix - cx), abs(iy - cy)) != ring:
                        continue  # only the boundary of the ring is new
                    bucket = self._cells.get((ix, iy))
                    if not bucket:
                        continue
                    for p, item in bucket:
                        d = p.distance_to(query)
                        best.append((d, item))
            best.sort(key=lambda pair: pair[0])
            del best[k:]
            # Anything outside the searched rings is at least this far away
            # (cells at Chebyshev ring r+1 start r full cells past ours).
            ring_guarantee = ring * self._cell
            if len(best) >= k and best[-1][0] <= ring_guarantee:
                break
            ring += 1
        return best

    def density_per_km2(self, region: BBox) -> float:
        """Number of indexed points per square kilometre inside ``region``.

        This is the statistic the hybrid inference thresholds against τ
        (default 200 points/km² in the paper's Table II).
        """
        if region.area == 0.0:
            return 0.0
        count = len(self.search_bbox(region))
        km2 = region.area / 1_000_000.0
        return count / km2
