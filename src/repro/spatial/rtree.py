"""An in-memory R-tree, implemented from scratch.

The paper's preprocessing component ("Indexing", Sec. II-B) organises all
archive GPS points in an R-tree so the reference-trajectory search can issue
range queries at the query points.  This module provides that substrate:

* quadratic-split insertion (Guttman's classic algorithm),
* Sort-Tile-Recursive (STR) bulk loading for building the archive index in
  one pass,
* rectangle range queries, circular range queries, and
* best-first k-nearest-neighbour search using the mindist bound.

Items are opaque; the tree stores ``(BBox, item)`` pairs.  Point data is
indexed via zero-area boxes.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Generic, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.geo.bbox import BBox
from repro.geo.point import Point

__all__ = ["RTree", "RTreeEntry"]

T = TypeVar("T")


@dataclass(slots=True)
class RTreeEntry(Generic[T]):
    """A leaf entry: a bounding box plus the user's item."""

    bbox: BBox
    item: T


class _Node(Generic[T]):
    """Internal tree node.  Leaves hold entries; inner nodes hold children."""

    __slots__ = ("leaf", "entries", "children", "bbox")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.entries: List[RTreeEntry[T]] = []
        self.children: List["_Node[T]"] = []
        self.bbox: Optional[BBox] = None

    def recompute_bbox(self) -> None:
        boxes: List[BBox]
        if self.leaf:
            boxes = [e.bbox for e in self.entries]
        else:
            boxes = [c.bbox for c in self.children if c.bbox is not None]
        if not boxes:
            self.bbox = None
            return
        box = boxes[0]
        for b in boxes[1:]:
            box = box.union(b)
        self.bbox = box

    def extend_bbox(self, box: BBox) -> None:
        self.bbox = box if self.bbox is None else self.bbox.union(box)


class RTree(Generic[T]):
    """R-tree over ``(BBox, item)`` pairs.

    Args:
        max_entries: Maximum fanout of a node before it splits.
        min_entries: Minimum fill after a split; defaults to ``max_entries//2``.
    """

    def __init__(self, max_entries: int = 16, min_entries: Optional[int] = None) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self._max = max_entries
        self._min = min_entries if min_entries is not None else max_entries // 2
        if not (1 <= self._min <= self._max // 2):
            raise ValueError("min_entries must be in [1, max_entries // 2]")
        self._root: _Node[T] = _Node(leaf=True)
        self._size = 0

    # ------------------------------------------------------------------ build

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels in the tree (1 for a single leaf root)."""
        h = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            h += 1
        return h

    @classmethod
    def bulk_load(
        cls,
        items: Iterable[Tuple[BBox, T]],
        max_entries: int = 16,
        min_entries: Optional[int] = None,
    ) -> "RTree[T]":
        """Build a packed tree with Sort-Tile-Recursive (STR) loading.

        STR sorts entries by centre x, slices them into vertical tiles, sorts
        each tile by centre y and packs runs of ``max_entries`` into leaves;
        the procedure recurses on the resulting level until one root remains.
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        entries = [RTreeEntry(bbox, item) for bbox, item in items]
        tree._size = len(entries)
        if not entries:
            return tree

        leaves = tree._str_pack_leaves(entries)
        level: List[_Node[T]] = leaves
        while len(level) > 1:
            level = tree._str_pack_inner(level)
        tree._root = level[0]
        return tree

    def _str_pack_leaves(self, entries: List[RTreeEntry[T]]) -> List["_Node[T]"]:
        cap = self._max
        n_leaves = math.ceil(len(entries) / cap)
        n_slices = max(1, math.ceil(math.sqrt(n_leaves)))
        per_slice = n_slices * cap

        entries.sort(key=lambda e: e.bbox.center.x)
        leaves: List[_Node[T]] = []
        for s in range(0, len(entries), per_slice):
            tile = sorted(entries[s : s + per_slice], key=lambda e: e.bbox.center.y)
            for i in range(0, len(tile), cap):
                node: _Node[T] = _Node(leaf=True)
                node.entries = tile[i : i + cap]
                node.recompute_bbox()
                leaves.append(node)
        return leaves

    def _str_pack_inner(self, nodes: List["_Node[T]"]) -> List["_Node[T]"]:
        cap = self._max
        n_parents = math.ceil(len(nodes) / cap)
        n_slices = max(1, math.ceil(math.sqrt(n_parents)))
        per_slice = n_slices * cap

        nodes.sort(key=lambda nd: nd.bbox.center.x if nd.bbox else 0.0)
        parents: List[_Node[T]] = []
        for s in range(0, len(nodes), per_slice):
            tile = sorted(
                nodes[s : s + per_slice],
                key=lambda nd: nd.bbox.center.y if nd.bbox else 0.0,
            )
            for i in range(0, len(tile), cap):
                parent: _Node[T] = _Node(leaf=False)
                parent.children = tile[i : i + cap]
                parent.recompute_bbox()
                parents.append(parent)
        return parents

    # ----------------------------------------------------------------- insert

    def insert(self, bbox: BBox, item: T) -> None:
        """Insert one entry (Guttman insertion with quadratic split)."""
        entry = RTreeEntry(bbox, item)
        split = self._insert_into(self._root, entry)
        if split is not None:
            old_root = self._root
            new_root: _Node[T] = _Node(leaf=False)
            new_root.children = [old_root, split]
            new_root.recompute_bbox()
            self._root = new_root
        self._size += 1

    def insert_point(self, p: Point, item: T) -> None:
        """Insert a point item with a zero-area box."""
        self.insert(BBox.from_point(p), item)

    def _insert_into(self, node: _Node[T], entry: RTreeEntry[T]) -> Optional[_Node[T]]:
        node.extend_bbox(entry.bbox)
        if node.leaf:
            node.entries.append(entry)
            if len(node.entries) > self._max:
                return self._split_leaf(node)
            return None

        child = self._choose_subtree(node, entry.bbox)
        split = self._insert_into(child, entry)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self._max:
                return self._split_inner(node)
            node.recompute_bbox()
        return None

    def _choose_subtree(self, node: _Node[T], box: BBox) -> _Node[T]:
        best = None
        best_enlargement = math.inf
        best_area = math.inf
        for child in node.children:
            assert child.bbox is not None
            enlargement = child.bbox.enlargement(box)
            area = child.bbox.area
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best = child
                best_enlargement = enlargement
                best_area = area
        assert best is not None
        return best

    # Quadratic split: pick the pair of items wasting the most area as seeds,
    # then greedily assign the rest by maximal preference difference.
    def _split_leaf(self, node: _Node[T]) -> _Node[T]:
        groups = self._quadratic_split([e.bbox for e in node.entries])
        left_idx, right_idx = groups
        all_entries = node.entries
        node.entries = [all_entries[i] for i in left_idx]
        node.recompute_bbox()
        sibling: _Node[T] = _Node(leaf=True)
        sibling.entries = [all_entries[i] for i in right_idx]
        sibling.recompute_bbox()
        return sibling

    def _split_inner(self, node: _Node[T]) -> _Node[T]:
        boxes = [c.bbox for c in node.children]
        assert all(b is not None for b in boxes)
        groups = self._quadratic_split(boxes)  # type: ignore[arg-type]
        left_idx, right_idx = groups
        all_children = node.children
        node.children = [all_children[i] for i in left_idx]
        node.recompute_bbox()
        sibling: _Node[T] = _Node(leaf=False)
        sibling.children = [all_children[i] for i in right_idx]
        sibling.recompute_bbox()
        return sibling

    def _quadratic_split(self, boxes: Sequence[BBox]) -> Tuple[List[int], List[int]]:
        n = len(boxes)
        # Seed selection: the pair whose covering box wastes the most area.
        worst = -math.inf
        seed_a, seed_b = 0, 1
        for i, j in itertools.combinations(range(n), 2):
            waste = boxes[i].union(boxes[j]).area - boxes[i].area - boxes[j].area
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j

        left = [seed_a]
        right = [seed_b]
        left_box = boxes[seed_a]
        right_box = boxes[seed_b]
        remaining = [i for i in range(n) if i not in (seed_a, seed_b)]

        while remaining:
            # Force-assign when one group must absorb everything left to
            # satisfy the minimum fill requirement.
            if len(left) + len(remaining) <= self._min:
                for i in remaining:
                    left.append(i)
                    left_box = left_box.union(boxes[i])
                break
            if len(right) + len(remaining) <= self._min:
                for i in remaining:
                    right.append(i)
                    right_box = right_box.union(boxes[i])
                break

            # Pick the entry with the strongest preference for either group.
            best_i = remaining[0]
            best_diff = -math.inf
            best_d_left = 0.0
            best_d_right = 0.0
            for i in remaining:
                d_left = left_box.enlargement(boxes[i])
                d_right = right_box.enlargement(boxes[i])
                diff = abs(d_left - d_right)
                if diff > best_diff:
                    best_diff = diff
                    best_i = i
                    best_d_left = d_left
                    best_d_right = d_right
            remaining.remove(best_i)
            if best_d_left < best_d_right or (
                best_d_left == best_d_right and left_box.area <= right_box.area
            ):
                left.append(best_i)
                left_box = left_box.union(boxes[best_i])
            else:
                right.append(best_i)
                right_box = right_box.union(boxes[best_i])

        return left, right

    # ----------------------------------------------------------------- delete

    def remove(self, bbox: BBox, item: T) -> bool:
        """Remove one entry whose box equals ``bbox`` and item equals
        ``item`` (by ``==``).

        Classic R-tree deletion: locate the hosting leaf, drop the entry,
        then *condense* — underfull nodes along the path are dissolved and
        their surviving entries reinserted, and bounding boxes shrink back.

        Returns:
            True if an entry was removed, False if none matched.
        """
        path = self._find_leaf(self._root, bbox, item, [])
        if path is None:
            return False
        leaf = path[-1]
        for i, entry in enumerate(leaf.entries):
            if entry.bbox == bbox and entry.item == item:
                del leaf.entries[i]
                break
        self._size -= 1
        self._condense(path)
        # Shrink the tree when the root is a lone-child inner node.
        while not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
        if self._root.leaf and not self._root.entries:
            self._root.bbox = None
        return True

    def remove_point(self, p: Point, item: T) -> bool:
        """Remove a point entry inserted via :meth:`insert_point`."""
        return self.remove(BBox.from_point(p), item)

    def _find_leaf(
        self,
        node: "_Node[T]",
        bbox: BBox,
        item: T,
        path: List["_Node[T]"],
    ) -> Optional[List["_Node[T]"]]:
        if node.bbox is None or not node.bbox.contains_bbox(bbox):
            return None
        path.append(node)
        if node.leaf:
            for entry in node.entries:
                if entry.bbox == bbox and entry.item == item:
                    return path
            path.pop()
            return None
        for child in node.children:
            found = self._find_leaf(child, bbox, item, path)
            if found is not None:
                return found
        path.pop()
        return None

    def _condense(self, path: List["_Node[T]"]) -> None:
        """Dissolve underfull nodes bottom-up, reinserting survivors."""
        orphans: List[RTreeEntry[T]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            fill = len(node.entries) if node.leaf else len(node.children)
            if fill < self._min:
                parent.children.remove(node)
                for __, entry_item in self._collect_entries(node):
                    orphans.append(entry_item)
            else:
                node.recompute_bbox()
        path[0].recompute_bbox()
        for entry in orphans:
            # Reinsert without touching the size counter: the entries were
            # already counted.
            split = self._insert_into(self._root, entry)
            if split is not None:
                old_root = self._root
                new_root: _Node[T] = _Node(leaf=False)
                new_root.children = [old_root, split]
                new_root.recompute_bbox()
                self._root = new_root

    def _collect_entries(
        self, node: "_Node[T]"
    ) -> List[Tuple[BBox, RTreeEntry[T]]]:
        out: List[Tuple[BBox, RTreeEntry[T]]] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.leaf:
                out.extend((e.bbox, e) for e in current.entries)
            else:
                stack.extend(current.children)
        return out

    # ---------------------------------------------------------------- queries

    def search_bbox(self, query: BBox) -> List[T]:
        """All items whose boxes intersect ``query``."""
        out: List[T] = []
        self._search(self._root, query, out)
        return out

    def _search(self, node: _Node[T], query: BBox, out: List[T]) -> None:
        if node.bbox is None or not node.bbox.intersects(query):
            return
        if node.leaf:
            for e in node.entries:
                if e.bbox.intersects(query):
                    out.append(e.item)
            return
        for child in node.children:
            self._search(child, query, out)

    def search_radius(
        self,
        center: Point,
        radius: float,
        position: Optional[Callable[[T], Point]] = None,
    ) -> List[T]:
        """All items within ``radius`` of ``center``.

        For point items pass ``position`` to extract the item's coordinate;
        without it the filter falls back to the bbox mindist, which is exact
        for zero-area (point) boxes and conservative otherwise.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        box = BBox.around(center, radius)
        out: List[T] = []
        self._search_radius(self._root, box, center, radius, position, out)
        return out

    def _search_radius(
        self,
        node: _Node[T],
        box: BBox,
        center: Point,
        radius: float,
        position: Optional[Callable[[T], Point]],
        out: List[T],
    ) -> None:
        if node.bbox is None or not node.bbox.intersects(box):
            return
        if node.leaf:
            for e in node.entries:
                if position is not None:
                    if position(e.item).distance_to(center) <= radius:
                        out.append(e.item)
                elif e.bbox.min_distance_to_point(center) <= radius:
                    out.append(e.item)
            return
        for child in node.children:
            self._search_radius(child, box, center, radius, position, out)

    def search_radius_many(
        self,
        queries: Sequence[Tuple[Point, float]],
        position: Optional[Callable[[T], Point]] = None,
    ) -> List[List[T]]:
        """Range queries for several ``(center, radius)`` circles at once.

        One tree walk serves every circle: a node is descended if *any*
        query circle intersects its box, and each leaf entry is tested
        against the circles whose boxes it intersects.  Equivalent to
        calling :meth:`search_radius` per circle, but without repeating the
        shared upper levels of the traversal — the reference search issues
        its two φ-range queries around a query-point pair this way.

        Returns:
            One result list per query, in query order.
        """
        for __, radius in queries:
            if radius < 0:
                raise ValueError("radius must be non-negative")
        boxes = [BBox.around(center, radius) for center, radius in queries]
        out: List[List[T]] = [[] for __ in queries]
        if not queries:
            return out
        self._search_radius_many(self._root, queries, boxes, position, out)
        return out

    def _search_radius_many(
        self,
        node: _Node[T],
        queries: Sequence[Tuple[Point, float]],
        boxes: Sequence[BBox],
        position: Optional[Callable[[T], Point]],
        out: List[List[T]],
    ) -> None:
        if node.bbox is None:
            return
        live = [i for i, box in enumerate(boxes) if node.bbox.intersects(box)]
        if not live:
            return
        if node.leaf:
            for e in node.entries:
                for i in live:
                    center, radius = queries[i]
                    if position is not None:
                        if position(e.item).distance_to(center) <= radius:
                            out[i].append(e.item)
                    elif e.bbox.min_distance_to_point(center) <= radius:
                        out[i].append(e.item)
            return
        for child in node.children:
            self._search_radius_many(child, queries, boxes, position, out)

    def nearest(
        self,
        query: Point,
        k: int = 1,
        position: Optional[Callable[[T], Point]] = None,
    ) -> List[Tuple[float, T]]:
        """The ``k`` nearest items to ``query`` as ``(distance, item)`` pairs.

        Best-first search: a priority queue of nodes/entries ordered by
        mindist guarantees items pop in exact distance order.
        """
        if k <= 0:
            return []
        counter = itertools.count()
        heap: List[Tuple[float, int, object]] = []
        if self._root.bbox is not None:
            heapq.heappush(
                heap, (self._root.bbox.min_distance_to_point(query), next(counter), self._root)
            )
        results: List[Tuple[float, T]] = []
        while heap and len(results) < k:
            dist, _, obj = heapq.heappop(heap)
            if isinstance(obj, _Node):
                if obj.leaf:
                    for e in obj.entries:
                        if position is not None:
                            d = position(e.item).distance_to(query)
                        else:
                            d = e.bbox.min_distance_to_point(query)
                        heapq.heappush(heap, (d, next(counter), e))
                else:
                    for child in obj.children:
                        if child.bbox is not None:
                            heapq.heappush(
                                heap,
                                (
                                    child.bbox.min_distance_to_point(query),
                                    next(counter),
                                    child,
                                ),
                            )
            else:
                entry = obj
                assert isinstance(entry, RTreeEntry)
                results.append((dist, entry.item))
        return results

    def approx_nbytes(self) -> int:
        """Approximate resident size of the index structure, in bytes.

        Walks nodes, child lists, entries and their boxes with
        ``sys.getsizeof``; the indexed *items* themselves are not counted
        (they are owned by the caller and typically shared).  Used by the
        archive layer to report per-worker resident index size.
        """
        import sys as _sys

        total = _sys.getsizeof(self)
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += _sys.getsizeof(node)
            if node.bbox is not None:
                total += _sys.getsizeof(node.bbox)
            if node.leaf:
                total += _sys.getsizeof(node.entries)
                for e in node.entries:
                    total += _sys.getsizeof(e) + _sys.getsizeof(e.bbox)
            else:
                total += _sys.getsizeof(node.children)
                stack.extend(node.children)
        return total

    def items(self) -> Iterator[Tuple[BBox, T]]:
        """Iterate over all ``(bbox, item)`` pairs in the tree."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for e in node.entries:
                    yield (e.bbox, e.item)
            else:
                stack.extend(node.children)

    def check_invariants(self) -> None:
        """Validate structural invariants; raises ``AssertionError`` on damage.

        Used by the property-based tests: every parent box must cover its
        children, leaf depth must be uniform, and node fill must respect the
        configured bounds (the root is exempt).
        """
        depths: List[int] = []

        def visit(node: _Node[T], depth: int, is_root: bool) -> None:
            if node.leaf:
                depths.append(depth)
                # STR packing may legitimately underfill the trailing leaf of
                # a tile, so only the upper fill bound is a hard invariant.
                assert len(node.entries) <= self._max, (
                    f"leaf fill {len(node.entries)} exceeds {self._max}"
                )
                for e in node.entries:
                    assert node.bbox is not None and node.bbox.contains_bbox(e.bbox)
                return
            assert len(node.children) <= self._max
            assert node.children, "inner node with no children"
            for child in node.children:
                assert child.bbox is not None
                assert node.bbox is not None and node.bbox.contains_bbox(child.bbox)
                visit(child, depth + 1, False)

        visit(self._root, 0, True)
        assert len(set(depths)) <= 1, "leaves at different depths"

        total = sum(1 for __ in self.items())
        assert total == self._size, f"size mismatch: {total} != {self._size}"
