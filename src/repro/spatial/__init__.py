"""Spatial index substrates: R-tree and uniform grid."""

from repro.spatial.grid import GridIndex
from repro.spatial.rtree import RTree, RTreeEntry

__all__ = ["GridIndex", "RTree", "RTreeEntry"]
