"""Online serving: the async HTTP/JSON query gateway.

See :mod:`repro.serve.gateway` for the service itself and
``docs/serving.md`` for the operator handbook.
"""

from repro.serve.client import GatewayClient, GatewayReply
from repro.serve.gateway import GatewayConfig, InferenceGateway, hris_backends
from repro.serve.metrics import GatewayMetrics, percentile

__all__ = [
    "GatewayClient",
    "GatewayConfig",
    "GatewayMetrics",
    "GatewayReply",
    "InferenceGateway",
    "hris_backends",
    "percentile",
]
