"""The async query gateway: admission control, coalescing, drain.

:class:`InferenceGateway` fronts HRIS inference with an
``asyncio.start_server`` HTTP/1.1 service (see :mod:`repro.serve.http`
for the wire layer) exposing four endpoints:

* ``POST /v1/infer``       — top-K routes for one query trajectory;
* ``POST /v1/infer_batch`` — many queries in one request;
* ``GET  /healthz``        — liveness (503 once draining);
* ``GET  /metrics``        — per-endpoint counters + latency p50/p90/p99.

Three serving behaviours distinguish it from a bare request loop:

**Admission control.**  Accepted inference jobs flow through one bounded
queue to a fixed pool of worker tasks; each worker owns a private HRIS
clone (caches are not thread-safe — see :meth:`HRIS.worker_clone`) and
runs inference on an executor thread so the event loop never blocks.
When admitted work reaches ``max_inflight`` or the queue reaches
``max_queue``, new requests are shed immediately with ``429`` and a
``Retry-After`` hint — the gateway degrades by refusing work it cannot
serve promptly, never by queueing without bound.

**Request coalescing.**  Identical in-flight queries — same point
sequence, same K, hence the same ``(segment-pair, window)`` reference
lookups and the same deterministic answer — share one computation
through a keyed future map.  Followers attach to the leader's future
and bypass admission entirely (they add no work), so a thundering herd
of duplicate queries costs one inference.

**Graceful drain.**  ``SIGTERM`` (or :meth:`InferenceGateway.stop`)
stops accepting connections and new work (``503`` + ``Connection:
close``), completes every admitted job, flushes the responses, then
exits.  In-flight clients see normal answers; only new work is turned
away.

Results served through the gateway are bit-identical to direct
:meth:`HRIS.infer_routes` calls: JSON round-trips floats exactly, and
the ``gateway_vs_seed`` identity key in the benchmark report is gated in
CI.  See ``docs/serving.md`` for the operator handbook.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.kgri import GlobalRoute
from repro.serve.http import (
    HttpError,
    Request,
    Response,
    json_response,
    read_request,
    write_response,
)
from repro.serve.metrics import LATENCY_WINDOW, GatewayMetrics
from repro.trajectory.io import trajectory_from_dict
from repro.trajectory.model import Trajectory

__all__ = ["GatewayConfig", "InferenceGateway", "hris_backends"]

#: One inference backend: ``(trajectory, k) -> top-K global routes``.
InferenceBackend = Callable[[Trajectory, Optional[int]], List[GlobalRoute]]

#: Endpoints the gateway serves; anything else is 404 (metrics key "other").
KNOWN_PATHS = ("/v1/infer", "/v1/infer_batch", "/healthz", "/metrics")

#: Upper bound on K per request — a sanity cap, far above any useful K.
MAX_K = 50


@dataclass(frozen=True, slots=True)
class GatewayConfig:
    """Gateway tunables.

    Attributes:
        host: Bind address.
        port: Bind port (0 lets the OS pick; read it back from
            :attr:`InferenceGateway.address`).
        max_inflight: Cap on admitted jobs (queued + executing).  At the
            cap, new work is shed with 429.
        max_queue: Cap on jobs waiting for a worker — bounds queueing
            delay independently of ``max_inflight``.
        retry_after_s: Hint returned in the ``Retry-After`` header of
            429/503 answers (rounded up to whole seconds on the wire).
        drain_grace_s: Longest the drain sequence waits for admitted
            jobs and open responses before forcing connections closed.
        max_batch: Cap on queries per ``/v1/infer_batch`` request.
        latency_window: Latency samples retained per endpoint for the
            ``/metrics`` percentiles.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 16
    max_queue: int = 16
    retry_after_s: float = 1.0
    drain_grace_s: float = 30.0
    max_batch: int = 256
    latency_window: int = LATENCY_WINDOW

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.retry_after_s <= 0 or self.drain_grace_s <= 0:
            raise ValueError("retry_after_s and drain_grace_s must be positive")


def hris_backends(hris, workers: int) -> List[InferenceBackend]:
    """One inference callable per gateway worker.

    The first worker serves from ``hris`` itself; each further worker
    gets its own :meth:`HRIS.worker_clone` — same network, archive and
    landmark tables, private caches — because the engine's LRU caches
    are not thread-safe.  Every clone returns bit-identical routes.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    backends: List[InferenceBackend] = [hris.infer_routes]
    for _ in range(1, workers):
        backends.append(hris.worker_clone().infer_routes)
    return backends


class _Saturated(Exception):
    """Admission refused: queue or in-flight limit reached."""


class _Draining(Exception):
    """Admission refused: the gateway is draining."""


@dataclass(slots=True)
class _Job:
    key: tuple
    trajectory: Trajectory
    k: Optional[int]
    future: asyncio.Future


class InferenceGateway:
    """HTTP/JSON gateway over a pool of inference backends.

    Args:
        backends: One callable per worker task (see :func:`hris_backends`).
            Each backend is only ever invoked by its own worker, one job
            at a time, on an executor thread.
        config: Serving tunables.

    Two lifecycles:

    * :meth:`run` — serve on the calling thread until SIGTERM/SIGINT,
      then drain (the ``repro serve`` CLI path);
    * :meth:`start` / :meth:`stop` — serve from a daemon thread
      (tests, benchmarks, the docs walkthrough).
    """

    def __init__(
        self,
        backends: Sequence[InferenceBackend],
        config: GatewayConfig = GatewayConfig(),
    ) -> None:
        if not backends:
            raise ValueError("the gateway needs at least one inference backend")
        self._backends = list(backends)
        self._config = config
        self._metrics = GatewayMetrics(config.latency_window)
        self._address: Optional[Tuple[str, int]] = None
        self._thread: Optional[threading.Thread] = None
        # Event-loop state, created inside _main:
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._drain_event: Optional[asyncio.Event] = None
        self._pending: Dict[tuple, asyncio.Future] = {}
        self._admitted = 0
        self._draining = False
        # writer -> busy flag; busy connections finish their request on drain.
        self._connections: Dict[asyncio.StreamWriter, bool] = {}
        self._conn_tasks: set = set()

    # ------------------------------------------------------------ lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; available once serving."""
        if self._address is None:
            raise RuntimeError("the gateway is not serving")
        return self._address

    def run(self, announce: Optional[Callable[[Tuple[str, int]], None]] = None) -> None:
        """Serve on this thread until SIGTERM/SIGINT triggers a drain.

        Args:
            announce: Called with the bound address once listening
                (the CLI prints it).
        """

        def on_ready(address: Tuple[str, int]) -> None:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self._drain_event.set)
                except (NotImplementedError, ValueError, RuntimeError):
                    pass  # non-main thread / platform without signal support
            if announce is not None:
                announce(address)

        asyncio.run(self._main(on_ready))

    def start(self, timeout_s: float = 10.0) -> Tuple[str, int]:
        """Serve from a daemon thread; returns the bound address."""
        if self._thread is not None:
            raise RuntimeError("the gateway is already running")
        ready = threading.Event()
        startup_error: List[BaseException] = []

        def runner() -> None:
            try:
                asyncio.run(self._main(lambda _addr: ready.set()))
            except BaseException as exc:  # surface bind errors to start()
                startup_error.append(exc)
                ready.set()

        self._thread = threading.Thread(
            target=runner, name="repro-gateway", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout_s):
            raise RuntimeError("gateway did not start in time")
        if startup_error:
            self._thread.join()
            self._thread = None
            raise startup_error[0]
        return self.address

    def begin_drain(self) -> None:
        """Trigger the drain sequence from any thread (idempotent)."""
        loop, event = self._loop, self._drain_event
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    def stop(self, timeout_s: Optional[float] = None) -> None:
        """Drain a :meth:`start`-ed gateway and join its thread."""
        thread = self._thread
        if thread is None:
            return
        self.begin_drain()
        thread.join(timeout_s if timeout_s is not None else self._config.drain_grace_s + 10.0)
        self._thread = None

    # ------------------------------------------------------------ event loop

    async def _main(self, on_ready: Callable[[Tuple[str, int]], None]) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._drain_event = asyncio.Event()
        self._draining = False
        executor = ThreadPoolExecutor(
            max_workers=len(self._backends), thread_name_prefix="gateway-infer"
        )
        server = await asyncio.start_server(
            self._handle_connection, self._config.host, self._config.port
        )
        sockname = server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        workers = [
            self._loop.create_task(self._worker(i, executor))
            for i in range(len(self._backends))
        ]
        on_ready(self._address)
        try:
            await self._drain_event.wait()
        finally:
            # ---- graceful drain: stop intake, finish admitted work ----
            self._draining = True
            server.close()
            await server.wait_closed()
            # Idle keep-alive connections are parked in read_request;
            # closing the transport gives their loops a clean EOF.  Busy
            # ones finish the current request (responses say close).
            for writer, busy in list(self._connections.items()):
                if not busy:
                    writer.close()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._queue.join(), timeout=self._config.drain_grace_s
                )
            for _ in workers:
                self._queue.put_nowait(None)
            await asyncio.gather(*workers, return_exceptions=True)
            if self._conn_tasks:  # let handlers flush their final responses
                await asyncio.wait(
                    list(self._conn_tasks), timeout=self._config.drain_grace_s
                )
            for writer in list(self._connections):
                writer.close()
            executor.shutdown(wait=True)
            self._loop = None

    async def _worker(self, index: int, executor: ThreadPoolExecutor) -> None:
        backend = self._backends[index]
        while True:
            job = await self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            try:
                result = await self._loop.run_in_executor(
                    executor, _run_inference, backend, job.trajectory, job.k
                )
            except Exception as exc:
                if not job.future.done():
                    job.future.set_exception(exc)
                    job.future.exception()  # handlers re-raise on await
            else:
                if not job.future.done():
                    job.future.set_result(result)
            finally:
                self._pending.pop(job.key, None)
                self._admitted -= 1
                self._queue.task_done()

    # ------------------------------------------------------------ admission

    def _submit(self, trajectory: Trajectory, k: Optional[int]):
        """Admit one job, or attach to an identical in-flight one.

        Returns ``(future, coalesced)``.  Raises :class:`_Saturated` /
        :class:`_Draining` when admission refuses new work — followers
        of an in-flight computation are never refused, they add none.
        """
        key = (tuple((p.point.x, p.point.y, p.t) for p in trajectory.points), k)
        future = self._pending.get(key)
        if future is not None:
            return future, True
        if self._draining:
            raise _Draining()
        if (
            self._admitted >= self._config.max_inflight
            or self._queue.qsize() >= self._config.max_queue
        ):
            raise _Saturated()
        future = self._loop.create_future()
        self._pending[key] = future
        self._admitted += 1
        self._queue.put_nowait(_Job(key, trajectory, k, future))
        return future, False

    def _submit_batch(self, parsed: List[Tuple[Trajectory, Optional[int]]]):
        """Admit a batch atomically: all queries or a single 429.

        Duplicates — within the batch or against in-flight work — are
        coalesced first, so only genuinely new jobs count against the
        limits.
        """
        keys = [
            (tuple((p.point.x, p.point.y, p.t) for p in traj.points), k)
            for traj, k in parsed
        ]
        new_keys = {
            key for key in keys if key not in self._pending
        }
        if new_keys:
            if self._draining:
                raise _Draining()
            if (
                self._admitted + len(new_keys) > self._config.max_inflight
                or self._queue.qsize() + len(new_keys) > self._config.max_queue
            ):
                raise _Saturated()
        futures: List[Tuple[asyncio.Future, bool]] = []
        for key, (traj, k) in zip(keys, parsed):
            futures.append(self._submit(traj, k))
        return futures

    # ------------------------------------------------------------ endpoints

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._connections[writer] = False
        try:
            while not self._draining:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    # Framing is unrecoverable: answer and drop the socket.
                    with contextlib.suppress(ConnectionError):
                        await write_response(
                            writer,
                            json_response(
                                exc.status, {"error": str(exc)}, close=True
                            ),
                        )
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return
                self._connections[writer] = True
                try:
                    response = await self._dispatch(request)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # handler bug: never kill the loop
                    response = json_response(
                        500, {"error": f"{type(exc).__name__}: {exc}"}, close=True
                    )
                if self._draining or not request.keep_alive:
                    response.close = True
                try:
                    await write_response(writer, response)
                except (ConnectionError, RuntimeError):
                    return
                self._connections[writer] = False
                if response.close:
                    return
        finally:
            self._connections.pop(writer, None)
            self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, request: Request) -> Response:
        start = time.perf_counter()
        metric_key = request.path if request.path in KNOWN_PATHS else "other"
        endpoint = self._metrics.endpoint(metric_key)
        coalesced = False
        try:
            if request.path == "/healthz" and request.method == "GET":
                response = self._healthz_response()
            elif request.path == "/metrics" and request.method == "GET":
                response = self._metrics_response()
            elif request.path == "/v1/infer" and request.method == "POST":
                response, coalesced = await self._infer_one(request)
            elif request.path == "/v1/infer_batch" and request.method == "POST":
                response, coalesced = await self._infer_batch(request)
            elif request.path in KNOWN_PATHS:
                response = json_response(
                    405, {"error": f"{request.method} not allowed on {request.path}"}
                )
            else:
                response = json_response(
                    404, {"error": f"no such endpoint {request.path!r}"}
                )
        except HttpError as exc:
            response = json_response(exc.status, {"error": str(exc)})
        endpoint.record(response.status, time.perf_counter() - start, coalesced)
        return response

    async def _infer_one(self, request: Request) -> Tuple[Response, bool]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "expected a JSON object body")
        trajectory, k = _parse_query(payload.get("query"), payload.get("k"))
        try:
            future, coalesced = self._submit(trajectory, k)
        except _Saturated:
            return self._shed_response(), False
        except _Draining:
            return self._drain_refusal(), False
        try:
            routes = await asyncio.shield(future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            return (
                json_response(500, {"error": f"{type(exc).__name__}: {exc}"}),
                coalesced,
            )
        return (
            json_response(
                200, {"k": k, "routes": routes, "coalesced": coalesced}
            ),
            coalesced,
        )

    async def _infer_batch(self, request: Request) -> Tuple[Response, bool]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "expected a JSON object body")
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise HttpError(400, "'queries' must be a non-empty list")
        if len(queries) > self._config.max_batch:
            raise HttpError(
                400,
                f"batch of {len(queries)} exceeds max_batch="
                f"{self._config.max_batch}",
            )
        default_k = payload.get("k")
        parsed = [_parse_query(entry, default_k) for entry in queries]
        try:
            futures = self._submit_batch(parsed)
        except _Saturated:
            return self._shed_response(), False
        except _Draining:
            return self._drain_refusal(), False
        results = []
        any_coalesced = False
        for future, coalesced in futures:
            any_coalesced = any_coalesced or coalesced
            try:
                routes = await asyncio.shield(future)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                results.append(
                    {"error": f"{type(exc).__name__}: {exc}", "coalesced": coalesced}
                )
            else:
                results.append({"routes": routes, "coalesced": coalesced})
        return (
            json_response(
                200, {"k": default_k, "count": len(results), "results": results}
            ),
            any_coalesced,
        )

    def _healthz_response(self) -> Response:
        status = 503 if self._draining else 200
        return json_response(
            status,
            {
                "status": "draining" if self._draining else "ok",
                "workers": len(self._backends),
                "admitted": self._admitted,
                "queued": self._queue.qsize() if self._queue else 0,
            },
        )

    def _metrics_response(self) -> Response:
        gauges = {
            "workers": len(self._backends),
            "admitted": self._admitted,
            "queued": self._queue.qsize() if self._queue else 0,
            "inflight_keys": len(self._pending),
            "connections": len(self._connections),
            "draining": self._draining,
            "max_inflight": self._config.max_inflight,
            "max_queue": self._config.max_queue,
        }
        payload = self._metrics.snapshot(gauges)
        engine = self._engine_stats()
        if engine is not None:
            payload["engine"] = engine
        archive = self._archive_stats()
        if archive is not None:
            payload["archive"] = archive
        return json_response(200, payload)

    def _engine_stats(self) -> Optional[Dict[str, float]]:
        """Routing-engine counters summed across every HRIS-backed worker.

        Each backend of :func:`hris_backends` is a bound ``infer_routes``
        method, so its ``__self__`` reaches the worker's HRIS and its
        engine: settled nodes, cache hit/miss/evictions, oracle sweeps and
        CH stalls land on ``/metrics`` next to the latency percentiles.
        Backends that are not HRIS-bound (e.g. test stubs) contribute
        nothing; with no instrumented backend at all the key is omitted.
        """
        totals: Optional[Dict[str, float]] = None
        for backend in self._backends:
            owner = getattr(backend, "__self__", None)
            engine = getattr(owner, "engine", None)
            if engine is None:
                continue
            counters = engine.stats().as_dict()
            if totals is None:
                totals = dict(counters)
            else:
                for key, value in counters.items():
                    totals[key] = totals.get(key, 0) + value
        return totals

    def _archive_stats(self) -> Optional[dict]:
        """Archive-backend snapshot for the fleet behind this gateway.

        Mirrors :meth:`_engine_stats` one layer down: each HRIS-bound
        backend reaches its archive, whose ``backend_stats()`` carries the
        replication-health, WAL durability (appends, fsyncs, compactions,
        unflushed records) and log catch-up counters of the remote
        backend.  Workers normally share one archive object — duplicates
        are reported once; with several distinct archives the snapshots
        are listed under ``"archives"``.  Non-HRIS backends contribute
        nothing; with none at all the key is omitted.
        """
        seen: Dict[int, dict] = {}
        for backend in self._backends:
            owner = getattr(backend, "__self__", None)
            archive = getattr(owner, "archive", None)
            stats = getattr(archive, "backend_stats", None)
            if stats is None or id(archive) in seen:
                continue
            seen[id(archive)] = stats()
        if not seen:
            return None
        snapshots = list(seen.values())
        return snapshots[0] if len(snapshots) == 1 else {"archives": snapshots}

    def _shed_response(self) -> Response:
        retry = str(max(1, math.ceil(self._config.retry_after_s)))
        return json_response(
            429,
            {
                "error": "admission queue full",
                "retry_after_s": self._config.retry_after_s,
            },
            headers={"Retry-After": retry},
        )

    def _drain_refusal(self) -> Response:
        retry = str(max(1, math.ceil(self._config.retry_after_s)))
        return json_response(
            503,
            {"error": "gateway is draining"},
            headers={"Retry-After": retry},
            close=True,
        )


def _parse_query(entry, k) -> Tuple[Trajectory, Optional[int]]:
    """Validate one query payload into ``(trajectory, k)``.

    Accepts the :func:`~repro.trajectory.io.trajectory_to_dict` shape
    (``{"id": ..., "points": [[x, y, t], ...]}``, id optional) or a bare
    point list.  Raises :class:`HttpError` 400 on anything malformed —
    bad payloads must never reach the admission queue.
    """
    if k is not None:
        if not isinstance(k, int) or isinstance(k, bool) or not 1 <= k <= MAX_K:
            raise HttpError(400, f"'k' must be an integer in [1, {MAX_K}]")
    if isinstance(entry, list):
        entry = {"id": 0, "points": entry}
    if not isinstance(entry, dict):
        raise HttpError(400, "each query must be an object or a point list")
    record = {"id": entry.get("id", 0), "points": entry.get("points")}
    if not isinstance(record["points"], list):
        raise HttpError(400, "a query needs a 'points' list of [x, y, t] rows")
    try:
        trajectory = trajectory_from_dict(record)
    except (ValueError, TypeError) as exc:
        raise HttpError(400, f"bad query trajectory: {exc}")
    if len(trajectory) < 2:
        raise HttpError(400, "a query needs at least two points")
    return trajectory, k


def _run_inference(
    backend: InferenceBackend, trajectory: Trajectory, k: Optional[int]
) -> List[dict]:
    """Executor-thread entry: run one inference, shape the JSON payload.

    The payload is built once here so coalesced followers share the
    serialisation too.  ``json`` round-trips the float scores exactly,
    which is what keeps served results bit-identical to direct calls.
    """
    routes = backend(trajectory, k)
    return [
        {"log_score": g.log_score, "segments": list(g.route.segment_ids)}
        for g in routes
    ]
