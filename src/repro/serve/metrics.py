"""Per-endpoint gateway metrics: counters plus latency percentiles.

Everything here is mutated only from the gateway's event loop, so no
locking is needed; ``GET /metrics`` snapshots a consistent view by
construction.  Latencies live in a bounded deque per endpoint — the
window covers the recent past (enough for p99 at serving rates) without
letting a long-lived process grow without bound.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

__all__ = ["EndpointMetrics", "GatewayMetrics", "percentile"]

#: Default samples retained per endpoint for the percentile window.
LATENCY_WINDOW = 4096


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by the nearest-rank method.

    Returns 0.0 on an empty sample — the metrics endpoint must always
    answer, including before the first request.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered), math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


class EndpointMetrics:
    """Counters and a latency window for one endpoint."""

    __slots__ = (
        "requests",
        "ok",
        "client_errors",
        "server_errors",
        "rejected",
        "coalesced",
        "_latencies",
    )

    def __init__(self, window: int = LATENCY_WINDOW) -> None:
        self.requests = 0
        self.ok = 0
        self.client_errors = 0
        self.server_errors = 0
        self.rejected = 0  # 429 load-shed + 503 draining
        self.coalesced = 0  # answered by another request's in-flight future
        self._latencies: Deque[float] = deque(maxlen=window)

    def record(self, status: int, latency_s: float, coalesced: bool = False) -> None:
        self.requests += 1
        if coalesced:
            self.coalesced += 1
        if status in (429, 503):
            self.rejected += 1
        elif status >= 500:
            self.server_errors += 1
        elif status >= 400:
            self.client_errors += 1
        else:
            self.ok += 1
        self._latencies.append(latency_s)

    def snapshot(self) -> Dict[str, object]:
        window: List[float] = list(self._latencies)
        return {
            "requests": self.requests,
            "ok": self.ok,
            "client_errors": self.client_errors,
            "server_errors": self.server_errors,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "latency_s": {
                "count": len(window),
                "mean": (sum(window) / len(window)) if window else 0.0,
                "p50": percentile(window, 50.0),
                "p90": percentile(window, 90.0),
                "p99": percentile(window, 99.0),
                "max": max(window) if window else 0.0,
            },
        }


class GatewayMetrics:
    """All endpoints plus gateway-level gauges, keyed by endpoint path."""

    def __init__(self, window: int = LATENCY_WINDOW) -> None:
        self._window = window
        self._endpoints: Dict[str, EndpointMetrics] = {}

    def endpoint(self, path: str) -> EndpointMetrics:
        metrics = self._endpoints.get(path)
        if metrics is None:
            metrics = self._endpoints[path] = EndpointMetrics(self._window)
        return metrics

    def snapshot(self, gauges: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "endpoints": {
                path: metrics.snapshot()
                for path, metrics in sorted(self._endpoints.items())
            }
        }
        if gauges:
            payload["gateway"] = gauges
        return payload
