"""A minimal keep-alive client for the gateway (tests, bench, docs).

Wraps :class:`http.client.HTTPConnection` — one persistent socket per
client, reused across requests exactly like a real caller would — and
decodes the JSON answers.  Non-2xx responses are returned, not raised:
load generators need to *count* 429s, and the failure-matrix tests
assert on exact statuses.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.trajectory.io import trajectory_to_dict
from repro.trajectory.model import Trajectory

__all__ = ["GatewayClient", "GatewayReply"]


class GatewayReply:
    """One decoded gateway answer."""

    __slots__ = ("status", "headers", "payload")

    def __init__(self, status: int, headers: Dict[str, str], payload: Any) -> None:
        self.status = status
        self.headers = headers
        self.payload = payload

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after_s(self) -> Optional[float]:
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None

    def route_keys(self) -> List[Tuple[Tuple[int, ...], float]]:
        """The routes as ``(segment_ids, round(log_score, 9))`` keys.

        The same shape as ``bench_throughput.result_keys`` builds from
        direct :meth:`HRIS.infer_routes` results, so identity checks are
        a straight ``==``.
        """
        return [
            (tuple(route["segments"]), round(route["log_score"], 9))
            for route in self.payload["routes"]
        ]


class GatewayClient:
    """One persistent HTTP/1.1 connection to a gateway.

    Not thread-safe — like the socket it wraps.  Concurrent load
    generators hold one client per worker thread.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------ plumbing

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout_s
            )
        return self._conn

    def request(
        self, method: str, path: str, payload: Any = None
    ) -> GatewayReply:
        """One request/response exchange, reconnecting once if the
        server closed the persistent connection between requests."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
                OSError,
            ):
                self.close()
                if attempt:
                    raise
        reply_headers = {k.lower(): v for k, v in response.getheaders()}
        decoded = json.loads(raw.decode("utf-8")) if raw else None
        if reply_headers.get("connection", "").lower() == "close":
            self.close()
        return GatewayReply(response.status, reply_headers, decoded)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------ endpoints

    def infer(self, query, k: Optional[int] = None) -> GatewayReply:
        """``POST /v1/infer``.  ``query`` is a :class:`Trajectory`, a
        ``trajectory_to_dict`` payload, or a bare point list."""
        if isinstance(query, Trajectory):
            query = trajectory_to_dict(query)
        payload: Dict[str, Any] = {"query": query}
        if k is not None:
            payload["k"] = k
        return self.request("POST", "/v1/infer", payload)

    def infer_batch(self, queries, k: Optional[int] = None) -> GatewayReply:
        """``POST /v1/infer_batch`` over many queries."""
        encoded = [
            trajectory_to_dict(q) if isinstance(q, Trajectory) else q
            for q in queries
        ]
        payload: Dict[str, Any] = {"queries": encoded}
        if k is not None:
            payload["k"] = k
        return self.request("POST", "/v1/infer_batch", payload)

    def healthz(self) -> GatewayReply:
        return self.request("GET", "/healthz")

    def metrics(self) -> GatewayReply:
        return self.request("GET", "/metrics")
