"""Minimal HTTP/1.1 framing over asyncio streams.

The gateway speaks plain HTTP/1.1 with JSON bodies so any client — curl,
``http.client``, a browser — can drive it, but it must not grow a
dependency beyond the standard library.  This module is the complete
wire layer: parse one request from a :class:`asyncio.StreamReader`,
serialise one response to a :class:`asyncio.StreamWriter`.  Connections
are persistent (HTTP/1.1 keep-alive) unless either side sends
``Connection: close``; bodies are always ``Content-Length``-delimited
(no chunked encoding — every payload we produce or accept is a small
JSON document whose size is known up front).

Bounds (``MAX_HEADER_BYTES``, ``MAX_BODY_BYTES``) cap what a single
connection can make the server buffer, so a misbehaving client cannot
balloon gateway memory before admission control even sees the request.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "json_response",
    "read_request",
    "write_response",
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
]

#: Cap on the request line plus all header lines, in bytes.
MAX_HEADER_BYTES = 16_384

#: Cap on a request body, in bytes.  The largest legitimate payload is an
#: ``/v1/infer_batch`` of a few hundred trajectories — far below this.
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A malformed request; carries the status the server should answer.

    Raised by :func:`read_request` mid-parse.  The connection is not
    recoverable afterwards (framing may be lost), so handlers answer with
    ``Connection: close`` and drop the socket.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    def json(self):
        """The body decoded as JSON.

        Raises:
            HttpError: 400 when the body is not valid JSON.
        """
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass(slots=True)
class Response:
    """One HTTP response ready for :func:`write_response`."""

    status: int
    body: bytes
    headers: Dict[str, str] = field(default_factory=dict)
    close: bool = False


def json_response(
    status: int,
    payload,
    headers: Optional[Dict[str, str]] = None,
    close: bool = False,
) -> Response:
    """Serialise ``payload`` as a JSON response body."""
    body = (json.dumps(payload) + "\n").encode("utf-8")
    hdrs = {"Content-Type": "application/json"}
    if headers:
        hdrs.update(headers)
    return Response(status=status, body=body, headers=hdrs, close=close)


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` on a clean EOF before the request line.

    Raises:
        HttpError: On malformed framing (bad request line, oversized
            headers or body, non-integer ``Content-Length``).
        asyncio.IncompleteReadError: On EOF mid-request.
    """
    try:
        raw_line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long")
    if len(raw_line) > MAX_HEADER_BYTES:
        raise HttpError(400, "request line too long")
    line = raw_line.decode("latin-1").strip()
    if not line:
        raise HttpError(400, "empty request line")
    parts = line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {line!r}")
    method, target = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    header_bytes = len(raw_line)
    while True:
        raw = await reader.readuntil(b"\n")
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(400, "headers too large")
        decoded = raw.decode("latin-1").strip()
        if not decoded:
            break
        name, sep, value = decoded.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {decoded!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length_header!r}")
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes exceeds the limit")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    # Strip the query string: the API carries every parameter in the body.
    path = target.split("?", 1)[0]
    return Request(method=method, path=path, headers=headers, body=body)


async def write_response(writer: asyncio.StreamWriter, response: Response) -> None:
    """Serialise one response, honouring keep-alive vs ``close``."""
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    headers = dict(response.headers)
    headers["Content-Length"] = str(len(response.body))
    headers["Connection"] = "close" if response.close else "keep-alive"
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)
    await writer.drain()
