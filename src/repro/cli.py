"""Command-line interface.

Five subcommands cover the generate → infer → evaluate loop — plus the
two long-running services — without writing any Python:

* ``generate``      — build a synthetic scenario and save it to a directory;
* ``infer``         — run HRIS on one saved query and print the top-K routes;
* ``evaluate``      — compare HRIS and the baselines across sampling
  intervals;
* ``serve``         — run the async HTTP/JSON query gateway: online HRIS
  inference behind admission control, request coalescing and graceful
  drain (see ``docs/serving.md``);
* ``archive-serve`` — run one archive shard server: the process owns a
  subset of spatial tiles, answers the reference search's range queries
  for them, summarises and assembles reference candidates from the
  observations it owns, and (``repro-remote-v4``) optionally journals
  every mutation to a durable write-ahead log (``--wal-dir``) so a
  killed shard restarts with its acknowledged state intact (see
  ``docs/distributed.md``).

``infer``, ``evaluate`` and ``serve`` pick the archive backend with
``--archive-backend {memory,sharded,remote}``: one in-process R-tree, an
in-process tiled index, or fan-out to ``archive-serve`` processes named
by repeated ``--shard-addr host:port`` flags.  With the remote backend,
``--reference-mode shard`` additionally assembles reference candidates on
the shard servers (``repro-remote-v4``) instead of reading whole
trajectories client-side.  Results are identical whichever backend — and
whichever reference mode — serves the queries.

Usage::

    python -m repro.cli generate --out world/ --seed 7
    python -m repro.cli infer --world world/ --query 0 --interval 180 --k 5
    python -m repro.cli evaluate --world world/ --intervals 180 420 900
    python -m repro.cli serve --world world/ --port 8080 --workers 2
    python -m repro.cli archive-serve --port 7701 --shard-index 0 --num-shards 2
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.archive import ARCHIVE_BACKENDS
from repro.core.system import HRIS, HRISConfig
from repro.datasets.io import load_scenario, save_scenario
from repro.datasets.synthetic import ScenarioConfig, build_scenario
from repro.eval.harness import ExperimentTable, evaluate_accuracy, evaluate_accuracy_batch
from repro.eval.metrics import route_accuracy
from repro.mapmatching import IncrementalMatcher, IVMMMatcher, STMatcher
from repro.roadnet.contraction import ContractionHierarchy
from repro.roadnet.generators import GridCityConfig
from repro.roadnet.io import (
    load_contraction,
    load_landmarks,
    save_contraction,
    save_landmarks,
)
from repro.roadnet.network import RoadNetwork
from repro.roadnet.shortest_path import LandmarkIndex
from repro.trajectory.resample import downsample

__all__ = ["main", "build_parser"]

#: Landmark-index cache file stored next to a saved world's network.
LANDMARKS_FILE = "landmarks.json"

#: Contraction-hierarchy cache file stored next to a saved world's network.
CONTRACTION_FILE = "contraction.json"

#: Mirrors ``ArchiveShardServer.DEFAULT_COMPACT_EVERY`` without importing
#: the remote module at parser-build time (server imports stay lazy).
_DEFAULT_COMPACT_EVERY = 4096

#: ``--routing`` choices mapped to HRISConfig knobs: each tier is gated
#: bit-identical, so this flag only changes how much work queries do.
_ROUTING_TIERS = {
    "astar": {},
    "bidi": {"shortest_path": "bidi"},
    "table": {"shortest_path": "bidi", "transition_oracle": "table"},
    "ch": {"shortest_path": "ch", "transition_oracle": "ch_buckets"},
}


class _CLIError(Exception):
    """A usage error detected after parsing (printed to stderr, exit 2)."""


def _add_archive_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--archive-backend",
        choices=ARCHIVE_BACKENDS,
        default="memory",
        help=(
            "spatial archive backend: 'memory' holds one R-tree over all "
            "points, 'sharded' tiles them and indexes lazily per tile, "
            "'remote' fans queries out to archive-serve shard processes "
            "(identical results in every case)"
        ),
    )
    cmd.add_argument(
        "--tile-size",
        type=float,
        default=None,
        help="tile side in metres for --archive-backend sharded/remote",
    )
    cmd.add_argument(
        "--shard-addr",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help=(
            "address of one archive-serve shard (repeat per shard, and per "
            "replica when the fleet is replicated); required with "
            "--archive-backend remote"
        ),
    )
    cmd.add_argument(
        "--replication",
        type=int,
        default=None,
        metavar="R",
        help=(
            "expected replicas per shard for --archive-backend remote: the "
            "handshake then fails unless every shard index is served by "
            "exactly R of the given --shard-addr processes"
        ),
    )
    cmd.add_argument(
        "--reference-mode",
        choices=("local", "shard"),
        default="local",
        help=(
            "where reference candidates are assembled: 'local' reads whole "
            "trajectories from the client trip store, 'shard' pushes "
            "Definition 6/7 candidate generation to the archive-serve fleet "
            "(requires --archive-backend remote; identical results)"
        ),
    )
    cmd.add_argument(
        "--no-landmark-cache",
        action="store_true",
        help=(
            "do not reuse/persist the ALT landmark index next to the "
            "saved world (landmarks.json)"
        ),
    )


def _add_routing_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--routing",
        choices=tuple(_ROUTING_TIERS),
        default="astar",
        help=(
            "routing tier: 'astar' (unidirectional ALT, the seed "
            "discipline), 'bidi' (bidirectional ALT), 'table' "
            "(bidirectional ALT + many-to-many distance tables) or 'ch' "
            "(contraction hierarchy + bucket tables; preprocesses the "
            "network once, cached next to the world).  Results are "
            "bit-identical in every case"
        ),
    )
    cmd.add_argument(
        "--ch-cache",
        default=None,
        metavar="PATH",
        help=(
            "contraction-hierarchy cache file for --routing ch "
            f"(default: <world>/{CONTRACTION_FILE})"
        ),
    )
    cmd.add_argument(
        "--no-ch-cache",
        action="store_true",
        help=(
            "do not reuse/persist the contraction hierarchy next to the "
            f"saved world ({CONTRACTION_FILE}); contract in-process instead"
        ),
    )


def _landmark_index_for(
    world: Path, network: RoadNetwork, n_landmarks: int, enabled: bool
) -> Optional[LandmarkIndex]:
    """Reuse a persisted landmark index for a saved world, or build + save.

    The index is exact and a pure function of the network, so a cached
    copy whose landmark count and node coverage match is interchangeable
    with a fresh build.  Returns ``None`` when caching is off or ALT is
    disabled — HRIS then builds (or skips) its own.
    """
    if not enabled or n_landmarks <= 0:
        return None
    expected = min(n_landmarks, network.num_nodes)
    path = world / LANDMARKS_FILE
    if path.exists():
        try:
            index = load_landmarks(path)
        except (ValueError, OSError, KeyError, TypeError):
            index = None
        if (
            index is not None
            and len(index) == expected
            and all(network.has_node(lid) for lid in index.landmarks)
        ):
            return index
    index = LandmarkIndex.build(network, n_landmarks)
    try:
        save_landmarks(index, path)
    except OSError:
        pass  # read-only world dir: still usable, just not cached
    return index


def _ch_hierarchy_for(
    world: Path, network: RoadNetwork, args: argparse.Namespace
) -> Optional[ContractionHierarchy]:
    """Reuse a persisted contraction hierarchy, or contract + save.

    Only consulted for ``--routing ch``.  The hierarchy is exact and a
    pure function of the network, so a cached ``repro-ch-v1`` file whose
    node set matches is interchangeable with a fresh contraction; a file
    in any other format is rejected with the found format named (a
    warning on stderr, then a rebuild).  ``--no-ch-cache`` skips disk
    entirely — HRIS then contracts in-process.
    """
    if args.routing != "ch":
        return None
    if args.no_ch_cache:
        return ContractionHierarchy.build(network)
    path = Path(args.ch_cache) if args.ch_cache else world / CONTRACTION_FILE
    if path.exists():
        hierarchy = None
        try:
            hierarchy = load_contraction(path)
        except (ValueError, KeyError, TypeError) as exc:
            print(
                f"warning: ignoring contraction cache {path}: {exc}",
                file=sys.stderr,
            )
        except OSError:
            pass
        if hierarchy is not None and hierarchy.matches(network):
            return hierarchy
    hierarchy = ContractionHierarchy.build(network)
    try:
        save_contraction(hierarchy, path)
    except OSError:
        pass  # read-only world dir: still usable, just not cached
    return hierarchy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HRIS: history-based route inference (ICDE 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and save a scenario")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--grid", type=int, default=14, help="grid side (nodes)")
    gen.add_argument("--od-pairs", type=int, default=8)
    gen.add_argument("--trips", type=int, default=240)
    gen.add_argument("--queries", type=int, default=8)
    gen.add_argument(
        "--min-od-km",
        type=float,
        default=None,
        help="minimum OD separation in km (default: 60%% of the grid extent)",
    )

    inf = sub.add_parser("infer", help="infer routes for one saved query")
    inf.add_argument("--world", required=True, help="scenario directory")
    inf.add_argument("--query", type=int, default=0, help="query index")
    inf.add_argument(
        "--interval", type=float, default=180.0, help="sampling interval (s)"
    )
    inf.add_argument("--k", type=int, default=5, help="routes to suggest")
    inf.add_argument(
        "--method",
        choices=("hybrid", "tgi", "nni"),
        default="hybrid",
        help="local inference method",
    )
    _add_archive_options(inf)
    _add_routing_options(inf)

    ev = sub.add_parser("evaluate", help="compare HRIS against the baselines")
    ev.add_argument("--world", required=True, help="scenario directory")
    ev.add_argument(
        "--intervals",
        type=float,
        nargs="+",
        default=[180.0, 420.0, 900.0],
        help="sampling intervals (s)",
    )
    ev.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for the HRIS batch path (results are "
            "identical at any worker count; >1 pays off on multi-core)"
        ),
    )
    _add_archive_options(ev)
    _add_routing_options(ev)

    gw = sub.add_parser(
        "serve",
        help=(
            "serve HRIS inference over HTTP/JSON: bounded admission "
            "queue with 429 load-shedding, request coalescing, "
            "per-endpoint latency metrics and graceful drain on SIGTERM "
            "(see docs/serving.md)"
        ),
    )
    gw.add_argument("--world", required=True, help="scenario directory")
    gw.add_argument("--host", default="127.0.0.1", help="bind address")
    gw.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks one; it is printed)"
    )
    gw.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "inference workers: each owns a private HRIS clone (shared "
            "network/archive/landmarks, private caches) so concurrent "
            "requests never contend — results are identical at any count"
        ),
    )
    gw.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        help=(
            "admitted (queued + executing) inference jobs before new "
            "requests are shed with HTTP 429"
        ),
    )
    gw.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="jobs waiting for a worker before new requests are shed",
    )
    _add_archive_options(gw)
    _add_routing_options(gw)

    serve = sub.add_parser(
        "archive-serve",
        help=(
            "serve one shard of the archive over a socket (repro-remote-v4: "
            "spatial range queries, shard-side reference assembly, and "
            "durable WAL ingest with replica log catch-up)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks one; it is printed)"
    )
    serve.add_argument(
        "--shard-index", type=int, default=None, help="this shard's index"
    )
    serve.add_argument(
        "--replica-of",
        type=int,
        default=None,
        metavar="SHARD",
        help=(
            "serve as an additional replica of the given shard index "
            "(alternative to --shard-index; replicas of a shard must "
            "receive the same mutation stream to stay interchangeable)"
        ),
    )
    serve.add_argument(
        "--replica-id",
        type=int,
        default=0,
        help="label for this process within its shard's replica set",
    )
    serve.add_argument(
        "--num-shards", type=int, required=True, help="total shards in the fleet"
    )
    serve.add_argument(
        "--tile-size",
        type=float,
        default=None,
        help="tile side in metres (must match every shard and client)",
    )
    serve.add_argument(
        "--world",
        default=None,
        help=(
            "optional scenario directory to pre-seed this shard's tiles "
            "from (clients may then attach instead of pushing points)"
        ),
    )
    serve.add_argument(
        "--wal-dir",
        default=None,
        metavar="DIR",
        help=(
            "write-ahead-log directory for durable ingest: every mutation "
            "is journalled before it is acknowledged and the shard "
            "recovers its state from the log on restart (omit to serve "
            "from memory only)"
        ),
    )
    serve.add_argument(
        "--fsync",
        default="always",
        choices=["always", "interval", "off"],
        help=(
            "WAL fsync policy: 'always' fsyncs each append before the ack, "
            "'interval' batches fsyncs (see --fsync-interval), 'off' only "
            "flushes (process-crash safe, power-fail unsafe)"
        ),
    )
    serve.add_argument(
        "--fsync-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="minimum seconds between fsyncs under --fsync interval",
    )
    serve.add_argument(
        "--compact-every",
        type=int,
        default=None,
        metavar="RECORDS",
        help=(
            "rotate the WAL (snapshot + fresh log) once this many records "
            "accumulate since the last snapshot (0 disables compaction; "
            f"default {_DEFAULT_COMPACT_EVERY})"
        ),
    )
    return parser


def _load_world(args: argparse.Namespace):
    """``load_scenario`` for infer/evaluate/serve, with flag validation."""
    from repro.core.remote import parse_address

    if args.archive_backend == "remote" and not args.shard_addr:
        raise _CLIError(
            "--archive-backend remote needs at least one --shard-addr host:port"
        )
    if args.shard_addr and args.archive_backend != "remote":
        raise _CLIError("--shard-addr only applies to --archive-backend remote")
    for addr in args.shard_addr or ():
        try:
            parse_address(addr)
        except ValueError as exc:
            raise _CLIError(f"bad --shard-addr {addr!r}: {exc}")
    if args.replication is not None:
        if args.archive_backend != "remote":
            raise _CLIError("--replication only applies to --archive-backend remote")
        if args.replication < 1:
            raise _CLIError("--replication must be a positive replica count")
        # R replicas of every shard means R·num_shards addresses: any
        # non-multiple count cannot possibly satisfy the handshake, so
        # refuse the conflicting combination before dialling the fleet.
        if len(args.shard_addr) % args.replication != 0:
            raise _CLIError(
                f"{len(args.shard_addr)} --shard-addr address(es) cannot form "
                f"replica sets of exactly --replication {args.replication}: "
                f"the address count must be a multiple of the replica count"
            )
    if args.reference_mode == "shard" and args.archive_backend != "remote":
        raise _CLIError(
            "--reference-mode shard only applies to --archive-backend remote "
            "(shards assemble the references)"
        )
    # The gateway's workers issue shard requests concurrently: give the
    # remote client one pooled connection per worker (see
    # _ShardConnectionPool).  Identical results at any pool size.
    pool_size = None
    if args.archive_backend == "remote" and args.command == "serve":
        pool_size = max(1, args.workers)
    return load_scenario(
        args.world,
        archive_backend=args.archive_backend,
        tile_size=args.tile_size,
        shard_addrs=args.shard_addr,
        replication=args.replication,
        pool_size=pool_size,
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    grid = GridCityConfig(nx=args.grid, ny=args.grid)
    if args.min_od_km is not None:
        min_od = args.min_od_km * 1000.0
    else:
        # Scale to the generated city so small grids stay generatable.
        min_od = 0.6 * (args.grid - 1) * grid.spacing
    config = ScenarioConfig(
        grid=grid,
        n_od_pairs=args.od_pairs,
        min_od_distance=min_od,
        n_archive_trips=args.trips,
        n_queries=args.queries,
        seed=args.seed,
    )
    print(
        f"Generating scenario: {args.grid}x{args.grid} grid, "
        f"{args.trips} trips, {args.queries} queries (seed {args.seed})..."
    )
    scenario = build_scenario(config)
    out = save_scenario(scenario, args.out)
    print(
        f"Saved to {out}: {scenario.network.num_segments} segments, "
        f"{len(scenario.archive)} trips, {len(scenario.queries)} queries."
    )
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    scenario = _load_world(args)
    if not (0 <= args.query < len(scenario.queries)):
        print(
            f"error: query index {args.query} out of range "
            f"[0, {len(scenario.queries) - 1}]",
            file=sys.stderr,
        )
        return 2
    case = scenario.queries[args.query]
    query = downsample(case.query, args.interval)
    config = HRISConfig(
        local_method=args.method,
        reference_mode=args.reference_mode,
        **_ROUTING_TIERS[args.routing],
    )
    hris = HRIS(
        scenario.network,
        scenario.archive,
        config,
        landmark_index=_landmark_index_for(
            Path(args.world),
            scenario.network,
            config.n_landmarks,
            enabled=not args.no_landmark_cache,
        ),
        ch_hierarchy=_ch_hierarchy_for(Path(args.world), scenario.network, args),
    )
    routes, detail = hris.infer_routes_with_details(query, args.k)
    print(
        f"Query {args.query}: {len(query)} points at "
        f"{query.mean_sampling_interval:.0f}s "
        f"({detail.total_time_s:.2f}s inference)"
    )
    for rank, g in enumerate(routes, start=1):
        acc = route_accuracy(scenario.network, case.truth, g.route)
        print(
            f"  #{rank}: log-score={g.log_score:9.3f}  "
            f"length={g.route.length(scenario.network) / 1000.0:6.2f} km  "
            f"A_L={acc:.3f}"
        )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    scenario = _load_world(args)
    network = scenario.network
    config = HRISConfig(
        reference_mode=args.reference_mode, **_ROUTING_TIERS[args.routing]
    )
    hris = HRIS(
        network,
        scenario.archive,
        config,
        landmark_index=_landmark_index_for(
            Path(args.world),
            network,
            config.n_landmarks,
            enabled=not args.no_landmark_cache,
        ),
        ch_hierarchy=_ch_hierarchy_for(Path(args.world), network, args),
    )
    # Competitors share the HRIS engine: same candidate cache, stitch
    # bridges and (per the config) batched transition oracle — results are
    # identical to standalone construction, only the work is shared.
    matchers = {
        "IVMM": IVMMMatcher(network, engine=hris.engine),
        "ST-matching": STMatcher(network, engine=hris.engine),
        "incremental": IncrementalMatcher(network, engine=hris.engine),
    }
    table = ExperimentTable("accuracy vs sampling interval", "interval_min")
    for interval in args.intervals:
        # HRIS goes through the batch path: identical results, shared
        # warm caches, and optional multi-process fan-out.
        acc, __ = evaluate_accuracy_batch(
            network, hris, scenario.queries, interval, workers=args.workers
        )
        table.record(round(interval / 60.0, 1), "HRIS", acc)
        for name, matcher in matchers.items():
            acc = evaluate_accuracy(network, matcher, scenario.queries, interval)
            table.record(round(interval / 60.0, 1), name, acc)
    print(table.format())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import GatewayConfig, InferenceGateway, hris_backends

    if args.workers < 1:
        raise _CLIError("--workers must be at least 1")
    if args.max_inflight < 1:
        raise _CLIError("--max-inflight must be at least 1")
    if args.max_queue < 1:
        raise _CLIError("--max-queue must be at least 1")
    scenario = _load_world(args)
    config = HRISConfig(
        reference_mode=args.reference_mode, **_ROUTING_TIERS[args.routing]
    )
    hris = HRIS(
        scenario.network,
        scenario.archive,
        config,
        landmark_index=_landmark_index_for(
            Path(args.world),
            scenario.network,
            config.n_landmarks,
            enabled=not args.no_landmark_cache,
        ),
        ch_hierarchy=_ch_hierarchy_for(Path(args.world), scenario.network, args),
    )
    gateway = InferenceGateway(
        hris_backends(hris, args.workers),
        GatewayConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
        ),
    )

    def announce(address) -> None:
        host, port = address
        print(
            f"gateway serving {args.world} on http://{host}:{port} "
            f"({args.workers} worker(s), archive backend "
            f"{args.archive_backend}); SIGTERM drains",
            flush=True,
        )

    gateway.run(announce=announce)
    print("gateway drained cleanly")
    return 0


def _cmd_archive_serve(args: argparse.Namespace) -> int:
    from repro.core.archive import ShardedArchive
    from repro.core.remote import ArchiveShardServer

    if (args.shard_index is None) == (args.replica_of is None):
        raise _CLIError(
            "archive-serve needs exactly one of --shard-index or --replica-of"
        )
    shard_index = args.shard_index if args.shard_index is not None else args.replica_of
    tile_size = (
        args.tile_size if args.tile_size is not None else ShardedArchive.DEFAULT_TILE_SIZE
    )
    # Conflicting flag combinations must exit 2 with a one-line usage
    # error, never surface ArchiveShardServer's ValueError traceback.
    if args.num_shards < 1:
        raise _CLIError("--num-shards must be at least 1")
    if not 0 <= shard_index < args.num_shards:
        flag = "--shard-index" if args.shard_index is not None else "--replica-of"
        raise _CLIError(
            f"{flag} {shard_index} conflicts with --num-shards "
            f"{args.num_shards}: shard indexes run 0.."
            f"{args.num_shards - 1}"
        )
    if tile_size <= 0:
        raise _CLIError("--tile-size must be positive")
    if args.replica_id < 0:
        raise _CLIError("--replica-id must be non-negative")
    if args.fsync_interval <= 0:
        raise _CLIError("--fsync-interval must be positive")
    if args.compact_every is not None and args.compact_every < 0:
        raise _CLIError("--compact-every must be non-negative (0 disables)")
    if args.compact_every is not None and args.wal_dir is None:
        raise _CLIError("--compact-every needs --wal-dir (nothing to compact)")
    server = ArchiveShardServer(
        shard_index,
        args.num_shards,
        tile_size,
        host=args.host,
        port=args.port,
        replica_id=args.replica_id,
        wal_dir=args.wal_dir,
        fsync=args.fsync,
        fsync_interval_s=args.fsync_interval,
        compact_every=(
            args.compact_every
            if args.compact_every is not None
            else _DEFAULT_COMPACT_EVERY
        ),
    )
    if args.wal_dir is not None and server._lsn > 0:
        print(
            f"recovered lsn {server._lsn} ({server.num_points} points) "
            f"from WAL {args.wal_dir}",
            flush=True,
        )
    if args.world is not None:
        scenario = load_scenario(args.world)
        kept = server.preload(scenario.archive.iter_points())
        print(f"pre-seeded {kept}/{scenario.archive.num_points} archive points")
    host, port = server.address
    durability = f"WAL {args.wal_dir} (fsync {args.fsync})" if args.wal_dir else "memory only"
    print(
        f"shard {shard_index}/{args.num_shards} (replica {args.replica_id}) "
        f"serving {tile_size:.0f}m tiles on {host}:{port}, {durability}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        pending = server.stop()
        if pending:
            print(
                f"shutdown flushed {pending} WAL record(s) that were "
                "awaiting fsync",
                flush=True,
            )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.core.remote import RemoteArchiveError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "infer":
            return _cmd_infer(args)
        if args.command == "evaluate":
            return _cmd_evaluate(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "archive-serve":
            return _cmd_archive_serve(args)
    except _CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RemoteArchiveError as exc:
        # Degraded-shard surface: a clean one-line error, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 3
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
