"""Inference-quality metrics (Sec. IV-B).

The paper measures route quality as

    A_L = LCR(R_G, R_I).length / max(R_G.length, R_I.length)

where ``LCR`` is the *longest common road segments* of the ground truth and
the inferred route.  We implement LCR as the length-weighted longest common
subsequence of the two segment-id sequences (order-respecting, the natural
reading), plus a set-overlap variant used as a sanity oracle in tests.
"""

from __future__ import annotations

from typing import Tuple

from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route

__all__ = [
    "lcr_length",
    "route_accuracy",
    "overlap_length",
    "overlap_accuracy",
    "precision_recall",
]


def lcr_length(network: RoadNetwork, ground: Route, inferred: Route) -> float:
    """Length of the longest common (order-preserving) road-segment
    subsequence of the two routes, in metres.
    """
    a = ground.segment_ids
    b = inferred.segment_ids
    if not a or not b:
        return 0.0
    lengths = {sid: network.segment(sid).length for sid in set(a) | set(b)}
    m = len(b)
    prev = [0.0] * (m + 1)
    for sid_a in a:
        cur = [0.0] * (m + 1)
        la = lengths[sid_a]
        for j, sid_b in enumerate(b, start=1):
            if sid_a == sid_b:
                cur[j] = prev[j - 1] + la
            else:
                cur[j] = max(prev[j], cur[j - 1])
        prev = cur
    return prev[m]


def route_accuracy(network: RoadNetwork, ground: Route, inferred: Route) -> float:
    """The paper's ``A_L`` in [0, 1]; 0 when either route is empty."""
    if not ground or not inferred:
        return 0.0
    lcr = lcr_length(network, ground, inferred)
    denom = max(ground.length(network), inferred.length(network))
    if denom == 0.0:
        return 0.0
    return lcr / denom


def overlap_length(network: RoadNetwork, ground: Route, inferred: Route) -> float:
    """Total length of segments present in both routes (order-insensitive)."""
    common = set(ground.segment_ids) & set(inferred.segment_ids)
    return sum(network.segment(sid).length for sid in common)


def overlap_accuracy(network: RoadNetwork, ground: Route, inferred: Route) -> float:
    """Set-overlap variant of ``A_L`` — an upper bound on the LCS version."""
    if not ground or not inferred:
        return 0.0
    denom = max(ground.length(network), inferred.length(network))
    if denom == 0.0:
        return 0.0
    return overlap_length(network, ground, inferred) / denom


def precision_recall(
    network: RoadNetwork, ground: Route, inferred: Route
) -> Tuple[float, float]:
    """Length-weighted precision and recall of the inferred segment set."""
    if not ground or not inferred:
        return (0.0, 0.0)
    common = overlap_length(network, ground, inferred)
    inferred_len = inferred.length(network)
    ground_len = ground.length(network)
    precision = common / inferred_len if inferred_len > 0 else 0.0
    recall = common / ground_len if ground_len > 0 else 0.0
    return (precision, recall)
