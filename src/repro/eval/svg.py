"""SVG rendering of networks, trajectories and routes.

A dependency-free visualiser: road networks draw as grey line work,
trajectories as dotted point chains, routes as coloured strokes.  Useful
for eyeballing why an inference chose the route it did — every example can
drop an ``.svg`` next to its output.

Typical use::

    svg = SVGMap(network)
    svg.add_route(truth, color="#2a9d8f", width=6, label="ground truth")
    svg.add_route(inferred, color="#e76f51", width=3, label="inferred")
    svg.add_trajectory(query, color="#264653")
    svg.save("inference.svg")
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route
from repro.trajectory.model import Trajectory

__all__ = ["SVGMap", "PALETTE"]

#: Default categorical colors.
PALETTE = ["#e76f51", "#2a9d8f", "#e9c46a", "#264653", "#f4a261", "#9b5de5"]


@dataclass(frozen=True, slots=True)
class _Layer:
    kind: str                 # "line" or "dots"
    points: Tuple[Point, ...]
    color: str
    width: float              # stroke width or dot radius, in output pixels
    opacity: float
    dashed: bool


class SVGMap:
    """Accumulates map layers and renders them to an SVG document.

    Args:
        network: The road network to draw as the base layer (optional).
        width_px: Output image width; height follows the data aspect ratio.
        padding_px: Margin around the data extent.
    """

    def __init__(
        self,
        network: Optional[RoadNetwork] = None,
        width_px: int = 900,
        padding_px: int = 20,
    ) -> None:
        if width_px <= 2 * padding_px:
            raise ValueError("width must exceed twice the padding")
        self._network = network
        self._width = width_px
        self._padding = padding_px
        self._layers: List[_Layer] = []
        self._legend: List[Tuple[str, str]] = []
        self._bounds: Optional[BBox] = network.bbox() if network else None

    # -------------------------------------------------------------- layers

    def _include(self, points: Sequence[Point]) -> None:
        if not points:
            return
        box = BBox.from_points(points)
        self._bounds = box if self._bounds is None else self._bounds.union(box)

    def add_route(
        self,
        route: Route,
        color: str = PALETTE[0],
        width: float = 3.0,
        label: Optional[str] = None,
        opacity: float = 0.9,
    ) -> None:
        """Draw a route as a coloured stroke.

        Raises:
            ValueError: If no network was supplied at construction.
        """
        if self._network is None:
            raise ValueError("drawing a route requires a network")
        points = tuple(route.points(self._network))
        self._include(points)
        self._layers.append(_Layer("line", points, color, width, opacity, False))
        if label:
            self._legend.append((label, color))

    def add_trajectory(
        self,
        trajectory: Trajectory,
        color: str = PALETTE[3],
        radius: float = 4.0,
        label: Optional[str] = None,
    ) -> None:
        """Draw a trajectory: sample dots joined by a faint dashed line."""
        points = tuple(trajectory.positions())
        self._include(points)
        self._layers.append(_Layer("line", points, color, 1.0, 0.35, True))
        self._layers.append(_Layer("dots", points, color, radius, 1.0, False))
        if label:
            self._legend.append((label, color))

    def add_points(
        self,
        points: Sequence[Point],
        color: str = PALETTE[2],
        radius: float = 2.0,
        label: Optional[str] = None,
    ) -> None:
        """Draw a bare point cloud (e.g. reference points)."""
        pts = tuple(points)
        self._include(pts)
        self._layers.append(_Layer("dots", pts, color, radius, 0.6, False))
        if label:
            self._legend.append((label, color))

    # ------------------------------------------------------------ rendering

    def render(self) -> str:
        """The complete SVG document as a string.

        Raises:
            ValueError: If nothing has been added.
        """
        if self._bounds is None:
            raise ValueError("nothing to render")
        box = self._bounds
        span_x = max(box.width, 1.0)
        span_y = max(box.height, 1.0)
        inner = self._width - 2 * self._padding
        scale = inner / span_x
        height = int(span_y * scale) + 2 * self._padding

        def to_px(p: Point) -> Tuple[float, float]:
            x = self._padding + (p.x - box.min_x) * scale
            # SVG's y axis points down; the map's points up.
            y = height - self._padding - (p.y - box.min_y) * scale
            return (x, y)

        parts: List[str] = []
        if self._network is not None:
            for seg in self._network.segments():
                parts.append(
                    _polyline(
                        [to_px(p) for p in seg.polyline],
                        stroke="#c9c9c9",
                        width=1.0,
                        opacity=0.8,
                    )
                )
        for layer in self._layers:
            px = [to_px(p) for p in layer.points]
            if layer.kind == "line":
                parts.append(
                    _polyline(
                        px,
                        stroke=layer.color,
                        width=layer.width,
                        opacity=layer.opacity,
                        dashed=layer.dashed,
                    )
                )
            else:
                parts.append(
                    "".join(
                        f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{layer.width}" '
                        f'fill="{layer.color}" fill-opacity="{layer.opacity}"/>'
                        for x, y in px
                    )
                )

        if self._legend:
            items = []
            for i, (label, color) in enumerate(self._legend):
                y = 18 + i * 18
                items.append(
                    f'<rect x="10" y="{y - 10}" width="12" height="12" '
                    f'fill="{color}"/>'
                    f'<text x="28" y="{y}" font-size="13" '
                    f'font-family="sans-serif">{html.escape(label)}</text>'
                )
            parts.append("<g>" + "".join(items) + "</g>")

        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self._width}" height="{height}" '
            f'viewBox="0 0 {self._width} {height}">'
            f'<rect width="100%" height="100%" fill="white"/>'
            + "".join(parts)
            + "</svg>"
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the SVG document to ``path``."""
        path = Path(path)
        path.write_text(self.render(), encoding="utf-8")
        return path


def _polyline(
    points: Sequence[Tuple[float, float]],
    stroke: str,
    width: float,
    opacity: float = 1.0,
    dashed: bool = False,
) -> str:
    if len(points) < 2:
        return ""
    coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    dash = ' stroke-dasharray="6,6"' if dashed else ""
    return (
        f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
        f'stroke-width="{width}" stroke-opacity="{opacity}" '
        f'stroke-linecap="round" stroke-linejoin="round"{dash}/>'
    )
