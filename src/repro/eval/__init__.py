"""Evaluation: the paper's accuracy metric and experiment harness."""

from repro.eval.harness import (
    ExperimentTable,
    density_family,
    density_scenario,
    evaluate_accuracy,
    evaluate_accuracy_and_time,
    sparse_scenario,
    standard_scenario,
)
from repro.eval.svg import PALETTE, SVGMap
from repro.eval.uncertainty import (
    UncertaintyReport,
    count_plausible_routes,
    score_entropy,
    uncertainty_report,
)
from repro.eval.metrics import (
    lcr_length,
    overlap_accuracy,
    overlap_length,
    precision_recall,
    route_accuracy,
)

__all__ = [
    "ExperimentTable",
    "density_family",
    "density_scenario",
    "evaluate_accuracy",
    "evaluate_accuracy_and_time",
    "sparse_scenario",
    "standard_scenario",
    "lcr_length",
    "overlap_accuracy",
    "overlap_length",
    "precision_recall",
    "route_accuracy",
    "PALETTE",
    "SVGMap",
    "UncertaintyReport",
    "count_plausible_routes",
    "score_entropy",
    "uncertainty_report",
]
