"""Benchmark-results aggregation.

The figure benchmarks each save a text table under ``benchmarks/results/``;
this module collates them into one markdown report, so regenerating the
experiment record after a run is one call::

    python -m repro.eval.report benchmarks/results report.md
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["collect_results", "build_report", "main"]

#: Render order and section titles for known figure files.
_SECTIONS = [
    ("table2", "Table II — default parameters"),
    ("fig8a", "Fig. 8a — accuracy vs sampling interval"),
    ("fig8b", "Fig. 8b — accuracy vs query length"),
    ("fig9a", "Fig. 9a — accuracy vs φ"),
    ("fig9b", "Fig. 9b — time vs φ"),
    ("fig10a", "Fig. 10a — TGI vs NNI accuracy across density"),
    ("fig10b", "Fig. 10b — TGI vs NNI time across density"),
    ("fig10_density", "Fig. 10 (aux) — observed densities"),
    ("fig11a", "Fig. 11a — accuracy vs λ"),
    ("fig11b", "Fig. 11b — time vs λ, with/without reduction"),
    ("fig12a", "Fig. 12a — accuracy vs k1"),
    ("fig12b", "Fig. 12b — time vs k1"),
    ("fig13a", "Fig. 13a — accuracy vs k2"),
    ("fig13b", "Fig. 13b — time vs k2, with/without sharing"),
    ("fig13b_knn", "Fig. 13b (aux) — kNN searches per pair"),
    ("fig14a", "Fig. 14a — top-k3 accuracy"),
    ("fig14b", "Fig. 14b — K-GRI vs brute force"),
    ("ablations", "Ablations"),
]


def collect_results(results_dir: Union[str, Path]) -> Dict[str, str]:
    """Read every ``*.txt`` table in the results directory.

    Returns:
        Mapping of figure id (file stem) to the table text.
    """
    results_dir = Path(results_dir)
    out: Dict[str, str] = {}
    if not results_dir.is_dir():
        return out
    for path in sorted(results_dir.glob("*.txt")):
        out[path.stem] = path.read_text(encoding="utf-8").rstrip()
    return out


def build_report(results: Dict[str, str], title: str = "Benchmark results") -> str:
    """Render collected tables as one markdown document.

    Known figures render in paper order; unknown files append at the end.
    """
    lines: List[str] = [f"# {title}", ""]
    seen = set()
    for stem, heading in _SECTIONS:
        if stem not in results:
            continue
        seen.add(stem)
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("```")
        lines.append(results[stem])
        lines.append("```")
        lines.append("")
    for stem in sorted(set(results) - seen):
        lines.append(f"## {stem}")
        lines.append("")
        lines.append("```")
        lines.append(results[stem])
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.eval.report <results_dir> [out.md]``."""
    argv = list(argv if argv is not None else sys.argv[1:])
    if not (1 <= len(argv) <= 2):
        print("usage: python -m repro.eval.report <results_dir> [out.md]", file=sys.stderr)
        return 2
    results = collect_results(argv[0])
    if not results:
        print(f"no result tables found in {argv[0]}", file=sys.stderr)
        return 1
    report = build_report(results)
    if len(argv) == 2:
        Path(argv[1]).write_text(report, encoding="utf-8")
        print(f"wrote {argv[1]} ({len(results)} tables)")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
