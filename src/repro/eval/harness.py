"""Experiment harness: shared machinery for the paper's figures.

Every benchmark in ``benchmarks/`` regenerates one figure of Sec. IV.  The
harness provides the pieces they share: an experiment table that collects
and pretty-prints series (the "rows the paper reports"), accuracy/timing
evaluation loops, and standard scenario constructions.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.synthetic import QueryCase, Scenario, ScenarioConfig, build_scenario
from repro.eval.metrics import route_accuracy
from repro.mapmatching.base import MapMatcher
from repro.roadnet.generators import GridCityConfig
from repro.roadnet.network import RoadNetwork
from repro.trajectory.resample import downsample

__all__ = [
    "ExperimentTable",
    "evaluate_accuracy",
    "evaluate_accuracy_and_time",
    "evaluate_accuracy_batch",
    "standard_scenario",
    "sparse_scenario",
    "density_scenario",
    "with_archive_backend",
]


class ExperimentTable:
    """A figure's data: one x-axis, one column per series.

    Rows are recorded with :meth:`record` and rendered with
    :meth:`format` — the same rows/series the paper's figure plots.
    """

    def __init__(self, title: str, x_label: str) -> None:
        self.title = title
        self.x_label = x_label
        self._xs: List[object] = []
        self._series: Dict[str, Dict[object, float]] = {}

    def record(self, x: object, series: str, value: float) -> None:
        """Record one measurement."""
        if x not in self._xs:
            self._xs.append(x)
        self._series.setdefault(series, {})[x] = value

    def series(self, name: str) -> List[float]:
        """The values of one series in x order (NaN where missing)."""
        column = self._series.get(name, {})
        return [column.get(x, float("nan")) for x in self._xs]

    @property
    def xs(self) -> List[object]:
        return list(self._xs)

    @property
    def series_names(self) -> List[str]:
        return list(self._series.keys())

    def format(self, precision: int = 3) -> str:
        """Render as an aligned text table."""
        names = self.series_names
        header = [self.x_label] + names
        rows = [header]
        for x in self._xs:
            row = [str(x)]
            for name in names:
                v = self._series[name].get(x)
                row.append("-" if v is None else f"{v:.{precision}f}")
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = [f"== {self.title} =="]
        for i, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)

    def save(self, path: Path | str) -> None:
        """Write the formatted table to a file (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.format() + "\n", encoding="utf-8")


def evaluate_accuracy(
    network: RoadNetwork,
    matcher: MapMatcher,
    cases: Sequence[QueryCase],
    interval_s: float,
) -> float:
    """Mean A_L of ``matcher`` over ``cases`` downsampled to ``interval_s``."""
    accs: List[float] = []
    for case in cases:
        query = downsample(case.query, interval_s)
        if len(query) < 2:
            continue
        result = matcher.match(query)
        accs.append(route_accuracy(network, case.truth, result.route))
    if not accs:
        raise ValueError("no evaluable queries at this sampling interval")
    return float(np.mean(accs))


def evaluate_accuracy_and_time(
    network: RoadNetwork,
    matcher: MapMatcher,
    cases: Sequence[QueryCase],
    interval_s: float,
) -> Tuple[float, float]:
    """Mean A_L plus mean wall-clock seconds per query."""
    accs: List[float] = []
    times: List[float] = []
    for case in cases:
        query = downsample(case.query, interval_s)
        if len(query) < 2:
            continue
        t0 = time.perf_counter()
        result = matcher.match(query)
        times.append(time.perf_counter() - t0)
        accs.append(route_accuracy(network, case.truth, result.route))
    if not accs:
        raise ValueError("no evaluable queries at this sampling interval")
    return float(np.mean(accs)), float(np.mean(times))


def evaluate_accuracy_batch(
    network: RoadNetwork,
    hris,
    cases: Sequence[QueryCase],
    interval_s: float,
    workers: int = 1,
) -> Tuple[float, float]:
    """Mean top-1 A_L of an HRIS instance over ``cases``, inferred as one
    batch through :meth:`~repro.core.system.HRIS.infer_routes_batch`.

    Batch results are element-for-element identical to per-query
    :meth:`infer_routes` calls, so this reports the same accuracy as
    :func:`evaluate_accuracy` over an ``HRISMatcher`` — only faster, since
    the engine caches stay warm across queries (and, on multi-core
    machines, queries fan out over ``workers`` processes).

    Returns:
        ``(mean A_L, total wall seconds for the whole batch)``.
    """
    queries: List = []
    truths: List = []
    for case in cases:
        query = downsample(case.query, interval_s)
        if len(query) < 2:
            continue
        queries.append(query)
        truths.append(case.truth)
    if not queries:
        raise ValueError("no evaluable queries at this sampling interval")
    t0 = time.perf_counter()
    results = hris.infer_routes_batch(queries, workers=workers)
    elapsed = time.perf_counter() - t0
    accs = [
        route_accuracy(network, truth, routes[0].route)
        for truth, routes in zip(truths, results)
        if routes
    ]
    return float(np.mean(accs)), elapsed


def with_archive_backend(
    scenario: Scenario,
    backend: str,
    tile_size: Optional[float] = None,
    shard_addrs: Optional[Sequence[str]] = None,
    replication: Optional[int] = None,
) -> Scenario:
    """The same scenario with its archive rebuilt under another backend.

    Trip ids are preserved, so every evaluation over the returned scenario
    yields bit-identical routes and accuracies — only the spatial index
    layout (and hence the per-worker resident set) changes.  For the
    ``"remote"`` backend pass the shard-server addresses; the rebuild
    pushes every observation to its owning shard.
    """
    from repro.core.archive import convert_archive

    return dataclasses.replace(
        scenario,
        archive=convert_archive(
            scenario.archive, backend, tile_size, shard_addrs, replication
        ),
    )


def standard_scenario(
    seed: int = 7,
    n_queries: int = 10,
    archive_backend: str = "memory",
    tile_size: Optional[float] = None,
    shard_addrs: Optional[Sequence[str]] = None,
    replication: Optional[int] = None,
) -> Scenario:
    """The default evaluation world used by most figures.

    A 14x14 grid city (6.5 km across) with 8 OD corridors, 240 demand
    trips at mixed sampling intervals plus background noise.  The archive
    is served by ``archive_backend`` (results are backend-independent;
    ``shard_addrs`` applies to the ``"remote"`` backend only).
    """
    scenario = build_scenario(
        ScenarioConfig(
            grid=GridCityConfig(nx=14, ny=14),
            n_od_pairs=8,
            n_archive_trips=240,
            n_background_trips=20,
            n_queries=n_queries,
            seed=seed,
        )
    )
    if archive_backend != "memory":
        scenario = with_archive_backend(
            scenario, archive_backend, tile_size, shard_addrs, replication
        )
    return scenario


def sparse_scenario(seed: int = 13, n_queries: int = 8) -> Scenario:
    """A history-poor world: few trips, mostly low-rate — stresses the
    spliced-reference search and the graph augmentation.

    The grid is larger than the standard world so even 15-minute queries
    keep several legs, and OD trips are long enough that low-rate archive
    trajectories have kilometre-scale gaps between points (the regime in
    which the search radius φ matters).
    """
    return build_scenario(
        ScenarioConfig(
            grid=GridCityConfig(nx=20, ny=20),
            n_od_pairs=6,
            min_od_distance=7_000.0,
            n_archive_trips=70,
            n_background_trips=10,
            archive_intervals=(60.0, 180.0, 300.0),
            archive_interval_weights=(0.2, 0.4, 0.4),
            n_queries=n_queries,
            seed=seed,
        )
    )


def density_scenario(
    n_archive_trips: int, seed: int = 29, n_queries: int = 6
) -> Scenario:
    """A world whose reference density is controlled by the trip count —
    the x-axis of Fig. 10."""
    return build_scenario(
        ScenarioConfig(
            grid=GridCityConfig(nx=14, ny=14),
            n_od_pairs=6,
            n_archive_trips=n_archive_trips,
            n_background_trips=max(2, n_archive_trips // 12),
            n_queries=n_queries,
            seed=seed,
        )
    )


def density_family(
    trip_counts: Sequence[int], seed: int = 29, n_queries: int = 6
) -> Dict[int, Scenario]:
    """Scenarios differing ONLY in archive size (Fig. 10's x-axis).

    The full-size world is built once; smaller worlds share its network,
    OD routes and queries, with the archive stride-subsampled so the trip
    mix stays representative.  This isolates the density effect from
    query-set noise.
    """
    from repro.core.archive import TrajectoryArchive

    full_count = max(trip_counts)
    full = density_scenario(full_count, seed=seed, n_queries=n_queries)
    trips = sorted(full.archive.trajectories(), key=lambda t: t.traj_id)
    family: Dict[int, Scenario] = {}
    for count in trip_counts:
        keep_fraction = count / full_count
        subset = [
            t for i, t in enumerate(trips) if (i * keep_fraction) % 1.0 < keep_fraction
        ]
        # Stride arithmetic keeps ~count*(1+bg fraction) trips; exactness is
        # not required — the observed density is measured separately.
        archive = TrajectoryArchive.from_trips(subset)
        family[count] = Scenario(
            network=full.network,
            archive=archive,
            od_routes=full.od_routes,
            route_probabilities=full.route_probabilities,
            queries=full.queries,
            config=full.config,
        )
    return family
