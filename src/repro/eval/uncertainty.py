"""Uncertainty quantification — the paper's title, made measurable.

"Reducing uncertainty" means shrinking the space of plausible routes for a
low-sampling-rate trajectory.  This module quantifies that:

* :func:`count_plausible_routes` — how many distinct loopless routes could
  connect the query's endpoints within a detour bound (the *prior*
  uncertainty; capped because the true count explodes combinatorially),
* :func:`score_entropy` — the Shannon entropy of the normalised score
  distribution over suggested routes (the *posterior* uncertainty: 0 when
  one route dominates, log K when all K are equally plausible),
* :func:`uncertainty_report` — both numbers plus their reduction for one
  query, ready for printing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.kgri import GlobalRoute
from repro.roadnet.ksp import yen_k_shortest_paths
from repro.roadnet.network import RoadNetwork

__all__ = [
    "count_plausible_routes",
    "score_entropy",
    "UncertaintyReport",
    "uncertainty_report",
]


def count_plausible_routes(
    network: RoadNetwork,
    source_node: int,
    target_node: int,
    detour_ratio: float = 1.5,
    cap: int = 200,
) -> int:
    """Number of distinct loopless routes within ``detour_ratio`` of the
    shortest path, counted up to ``cap``.

    This is the prior uncertainty a user faces with no history: every one
    of these routes is topologically and physically plausible.

    Raises:
        ValueError: On a non-positive cap or a detour ratio below 1.
    """
    if cap < 1:
        raise ValueError("cap must be positive")
    if detour_ratio < 1.0:
        raise ValueError("detour_ratio must be at least 1")

    def adjacency(node: int):
        return (
            (network.segment(s).end, network.segment(s).length)
            for s in network.out_segments(node)
        )

    paths = yen_k_shortest_paths(adjacency, source_node, target_node, cap)
    if not paths:
        return 0
    shortest = paths[0][0]
    bound = shortest * detour_ratio
    return sum(1 for cost, __ in paths if cost <= bound)


def score_entropy(routes: Sequence[GlobalRoute]) -> float:
    """Shannon entropy (nats) of the suggested routes' score distribution.

    Scores are exponentiated from log space and normalised; a single
    dominant suggestion gives entropy near 0, K equally plausible
    suggestions give ``ln K``.

    Raises:
        ValueError: If no routes are given.
    """
    if not routes:
        raise ValueError("entropy of an empty suggestion set is undefined")
    if len(routes) == 1:
        return 0.0
    # Stabilise: shift log scores so the best is 0 before exponentiating.
    best = max(g.log_score for g in routes)
    weights = [math.exp(g.log_score - best) for g in routes]
    total = sum(weights)
    entropy = 0.0
    for w in weights:
        p = w / total
        if p > 0.0:
            entropy -= p * math.log(p)
    return entropy


@dataclass(frozen=True, slots=True)
class UncertaintyReport:
    """Prior vs posterior uncertainty for one query.

    Attributes:
        prior_routes: Plausible routes with no history (capped count).
        posterior_routes: Routes HRIS actually suggests.
        posterior_entropy: Entropy of the suggestion scores (nats).
        reduction_factor: prior / posterior route-count ratio.
    """

    prior_routes: int
    posterior_routes: int
    posterior_entropy: float

    @property
    def reduction_factor(self) -> float:
        if self.posterior_routes == 0:
            return 0.0
        return self.prior_routes / self.posterior_routes

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.prior_routes}+ plausible routes -> "
            f"{self.posterior_routes} suggestions "
            f"(entropy {self.posterior_entropy:.2f} nats, "
            f"{self.reduction_factor:.0f}x reduction)"
        )


def uncertainty_report(
    network: RoadNetwork,
    routes: Sequence[GlobalRoute],
    detour_ratio: float = 1.5,
    cap: int = 200,
) -> UncertaintyReport:
    """Build an :class:`UncertaintyReport` for one inference result.

    The prior is counted between the top suggestion's endpoints (all
    suggestions share them by construction).

    Raises:
        ValueError: If no routes are given or the top route is empty.
    """
    if not routes:
        raise ValueError("need at least one suggested route")
    top = routes[0].route
    if not top:
        raise ValueError("the top route is empty")
    prior = count_plausible_routes(
        network,
        top.start_node(network),
        top.end_node(network),
        detour_ratio=detour_ratio,
        cap=cap,
    )
    return UncertaintyReport(
        prior_routes=prior,
        posterior_routes=len(routes),
        posterior_entropy=score_entropy(routes),
    )
