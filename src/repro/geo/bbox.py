"""Axis-aligned bounding boxes.

Bounding boxes are the workhorse of the R-tree (:mod:`repro.spatial.rtree`)
and the uniform grid index.  They are immutable; all mutating-style
operations return new boxes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geo.point import Point

__all__ = ["BBox"]


@dataclass(frozen=True, slots=True)
class BBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate bbox: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @staticmethod
    def from_point(p: Point) -> "BBox":
        """A zero-area box containing a single point."""
        return BBox(p.x, p.y, p.x, p.y)

    @staticmethod
    def from_points(points: Sequence[Point] | Iterable[Point]) -> "BBox":
        """The tight bounding box of a non-empty point collection.

        Raises:
            ValueError: If ``points`` is empty.
        """
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("bbox of an empty point collection is undefined")
        min_x = max_x = first.x
        min_y = max_y = first.y
        for p in it:
            if p.x < min_x:
                min_x = p.x
            elif p.x > max_x:
                max_x = p.x
            if p.y < min_y:
                min_y = p.y
            elif p.y > max_y:
                max_y = p.y
        return BBox(min_x, min_y, max_x, max_y)

    @staticmethod
    def around(p: Point, radius: float) -> "BBox":
        """A square box of half-width ``radius`` centred on ``p``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        return BBox(p.x - radius, p.y - radius, p.x + radius, p.y + radius)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary of this box."""
        return (
            self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y
        )

    def contains_bbox(self, other: "BBox") -> bool:
        """True if ``other`` lies fully inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "BBox") -> bool:
        """True if the two boxes share at least one point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def union(self, other: "BBox") -> "BBox":
        """The smallest box covering both boxes."""
        return BBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expand_to_point(self, p: Point) -> "BBox":
        """The smallest box covering this box and ``p``."""
        return BBox(
            min(self.min_x, p.x),
            min(self.min_y, p.y),
            max(self.max_x, p.x),
            max(self.max_y, p.y),
        )

    def enlargement(self, other: "BBox") -> float:
        """Area increase if this box were grown to also cover ``other``."""
        return self.union(other).area - self.area

    def intersection_area(self, other: "BBox") -> float:
        """Area of the overlap region (0 if disjoint)."""
        w = min(self.max_x, other.max_x) - max(self.min_x, other.min_x)
        h = min(self.max_y, other.max_y) - max(self.min_y, other.min_y)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def min_distance_to_point(self, p: Point) -> float:
        """Smallest distance from ``p`` to any point of this box.

        Zero when ``p`` is inside the box.  This is the mindist bound used by
        the best-first kNN search on the R-tree.
        """
        dx = 0.0
        if p.x < self.min_x:
            dx = self.min_x - p.x
        elif p.x > self.max_x:
            dx = p.x - self.max_x
        dy = 0.0
        if p.y < self.min_y:
            dy = self.min_y - p.y
        elif p.y > self.max_y:
            dy = p.y - self.max_y
        return math.hypot(dx, dy)
