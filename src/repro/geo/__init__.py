"""Planar geometry primitives used throughout the library."""

from repro.geo.bbox import BBox
from repro.geo.point import Point, centroid, euclidean, midpoint, squared_distance
from repro.geo.polyline import (
    Projection,
    interpolate_along,
    point_to_polyline_distance,
    polyline_bbox,
    polyline_length,
    project_point_to_polyline,
    project_point_to_segment,
    resample_polyline,
)
from repro.geo.projection import EARTH_RADIUS_M, LonLatProjector, haversine_m

__all__ = [
    "BBox",
    "Point",
    "Projection",
    "EARTH_RADIUS_M",
    "LonLatProjector",
    "centroid",
    "euclidean",
    "haversine_m",
    "interpolate_along",
    "midpoint",
    "point_to_polyline_distance",
    "polyline_bbox",
    "polyline_length",
    "project_point_to_polyline",
    "project_point_to_segment",
    "resample_polyline",
    "squared_distance",
]
