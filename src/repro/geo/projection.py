"""Longitude/latitude to local planar coordinates.

The library operates internally in a planar metre grid.  Real GPS feeds
(taxi logs, GeoLife exports, geotagged photos) arrive as WGS-84
longitude/latitude; :class:`LonLatProjector` converts them with an
equirectangular projection around a reference origin, which is accurate to
well under GPS noise level for city-scale extents (tens of kilometres).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.geo.point import Point

__all__ = ["EARTH_RADIUS_M", "haversine_m", "LonLatProjector"]

#: Mean earth radius in metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8


def haversine_m(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance between two WGS-84 coordinates, in metres."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


@dataclass(frozen=True, slots=True)
class LonLatProjector:
    """Equirectangular projection centred on ``(origin_lon, origin_lat)``.

    ``to_plane`` maps lon/lat to metres east/north of the origin;
    ``to_lonlat`` inverts it.  Round-trip error is zero up to floating point;
    metric distortion grows with distance from the origin and stays below
    0.1 % within ~50 km for mid latitudes.
    """

    origin_lon: float
    origin_lat: float

    def __post_init__(self) -> None:
        if not (-90.0 < self.origin_lat < 90.0):
            raise ValueError("origin latitude must be strictly between -90 and 90")

    @property
    def _meters_per_deg_lat(self) -> float:
        return EARTH_RADIUS_M * math.pi / 180.0

    @property
    def _meters_per_deg_lon(self) -> float:
        return self._meters_per_deg_lat * math.cos(math.radians(self.origin_lat))

    def to_plane(self, lon: float, lat: float) -> Point:
        """Project a lon/lat pair to planar metres."""
        x = (lon - self.origin_lon) * self._meters_per_deg_lon
        y = (lat - self.origin_lat) * self._meters_per_deg_lat
        return Point(x, y)

    def to_lonlat(self, p: Point) -> Tuple[float, float]:
        """Invert the projection, returning ``(lon, lat)``."""
        lon = self.origin_lon + p.x / self._meters_per_deg_lon
        lat = self.origin_lat + p.y / self._meters_per_deg_lat
        return (lon, lat)
