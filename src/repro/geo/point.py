"""Planar point primitives and distance helpers.

All geometry in this library lives in a local planar coordinate system with
coordinates expressed in metres.  Real-world longitude/latitude data is first
converted with :class:`repro.geo.projection.LonLatProjector`.

The :class:`Point` type is an immutable value object; it supports vector-style
arithmetic which the polyline and map-matching code builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = [
    "Point",
    "euclidean",
    "squared_distance",
    "midpoint",
    "centroid",
]


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the planar (metre) coordinate system.

    Attributes:
        x: Easting in metres.
        y: Northing in metres.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared euclidean distance (avoids the sqrt for comparisons)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def dot(self, other: "Point") -> float:
        """Dot product treating both points as vectors from the origin."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """2D cross product (z component) treating points as vectors."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean norm treating the point as a vector."""
        return math.hypot(self.x, self.y)

    def normalized(self) -> "Point":
        """Unit vector in the direction of this point.

        Raises:
            ValueError: If the vector has zero length.
        """
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalize a zero-length vector")
        return Point(self.x / n, self.y / n)

    def as_tuple(self) -> Tuple[float, float]:
        """Return the ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return math.hypot(a.x - b.x, a.y - b.y)


def squared_distance(a: Point, b: Point) -> float:
    """Squared euclidean distance between two points."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of the segment ``a``–``b``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def centroid(points: Sequence[Point] | Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points.

    Raises:
        ValueError: If ``points`` is empty.
    """
    xs = 0.0
    ys = 0.0
    n = 0
    for p in points:
        xs += p.x
        ys += p.y
        n += 1
    if n == 0:
        raise ValueError("centroid of an empty point collection is undefined")
    return Point(xs / n, ys / n)
