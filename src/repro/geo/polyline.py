"""Polyline geometry: projection, interpolation and point-to-line distance.

Road segments (Definition 2 of the paper) carry a polyline describing their
shape.  The map-matching and candidate-edge machinery needs three core
operations, all provided here:

* the distance from a GPS point to a polyline (``dist(p, r)`` of
  Definition 5),
* the projection of a point onto a polyline (the "matched" position), and
* interpolation of a position at a given arc-length offset (used by the
  trajectory simulator to emit GPS samples while driving along a route).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geo.bbox import BBox
from repro.geo.point import Point

__all__ = [
    "Projection",
    "polyline_length",
    "project_point_to_segment",
    "project_point_to_polyline",
    "point_to_polyline_distance",
    "interpolate_along",
    "resample_polyline",
    "polyline_bbox",
]


@dataclass(frozen=True, slots=True)
class Projection:
    """Result of projecting a point onto a polyline.

    Attributes:
        point: Closest point on the polyline.
        distance: Euclidean distance from the query point to ``point``.
        offset: Arc-length from the start of the polyline to ``point``.
        segment_index: Index of the polyline leg containing ``point``.
    """

    point: Point
    distance: float
    offset: float
    segment_index: int


def polyline_length(points: Sequence[Point]) -> float:
    """Total arc length of a polyline (0 for fewer than two points)."""
    total = 0.0
    for a, b in zip(points, points[1:]):
        total += a.distance_to(b)
    return total


def project_point_to_segment(p: Point, a: Point, b: Point) -> Tuple[Point, float]:
    """Project ``p`` onto the line segment ``a``–``b``.

    Returns:
        A ``(closest_point, t)`` pair where ``t`` in [0, 1] is the position
        parameter along the segment.
    """
    ab = b - a
    denom = ab.dot(ab)
    if denom == 0.0:
        return a, 0.0
    t = (p - a).dot(ab) / denom
    if t <= 0.0:
        return a, 0.0
    if t >= 1.0:
        return b, 1.0
    return Point(a.x + ab.x * t, a.y + ab.y * t), t


def project_point_to_polyline(p: Point, points: Sequence[Point]) -> Projection:
    """Project ``p`` onto a polyline, returning the full projection record.

    Raises:
        ValueError: If the polyline has no points.
    """
    if not points:
        raise ValueError("cannot project onto an empty polyline")
    if len(points) == 1:
        only = points[0]
        return Projection(only, p.distance_to(only), 0.0, 0)

    best_point = points[0]
    best_dist = math.inf
    best_offset = 0.0
    best_index = 0
    walked = 0.0
    for i, (a, b) in enumerate(zip(points, points[1:])):
        closest, t = project_point_to_segment(p, a, b)
        d = p.distance_to(closest)
        if d < best_dist:
            best_dist = d
            best_point = closest
            best_offset = walked + t * a.distance_to(b)
            best_index = i
        walked += a.distance_to(b)
    return Projection(best_point, best_dist, best_offset, best_index)


def point_to_polyline_distance(p: Point, points: Sequence[Point]) -> float:
    """Distance from ``p`` to the polyline — ``dist(p, r)`` of Definition 5."""
    return project_point_to_polyline(p, points).distance


def interpolate_along(points: Sequence[Point], offset: float) -> Point:
    """The point at arc-length ``offset`` from the polyline start.

    Offsets are clamped to ``[0, length]`` so callers can safely ask for a
    position slightly past either end (floating-point drift while driving).

    Raises:
        ValueError: If the polyline has no points.
    """
    if not points:
        raise ValueError("cannot interpolate along an empty polyline")
    if len(points) == 1 or offset <= 0.0:
        return points[0]
    remaining = offset
    for a, b in zip(points, points[1:]):
        leg = a.distance_to(b)
        if remaining <= leg:
            if leg == 0.0:
                return a
            t = remaining / leg
            return Point(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)
        remaining -= leg
    return points[-1]


def resample_polyline(points: Sequence[Point], spacing: float) -> List[Point]:
    """Resample a polyline at (approximately) uniform arc-length spacing.

    The first and last vertices are always retained.  Used to densify sparse
    road geometry before rasterising reference-point densities.

    Raises:
        ValueError: If ``spacing`` is not positive or the polyline is empty.
    """
    if spacing <= 0.0:
        raise ValueError("spacing must be positive")
    if not points:
        raise ValueError("cannot resample an empty polyline")
    total = polyline_length(points)
    if total == 0.0:
        return [points[0]]
    n_steps = max(1, int(math.ceil(total / spacing)))
    return [interpolate_along(points, total * i / n_steps) for i in range(n_steps + 1)]


def polyline_bbox(points: Sequence[Point]) -> BBox:
    """Tight bounding box of a polyline (see :class:`repro.geo.bbox.BBox`)."""
    return BBox.from_points(points)
