"""HRIS — the History-based Route Inference System facade (Fig. 2).

Wires the whole pipeline together.  Offline: a preprocessed archive
behind the :class:`~repro.core.archive.ArchiveBackend` protocol — one
in-process R-tree, spatial tiles, or a remote shard fleet; every backend
serves bit-identical query results.  Online, per query:

1. split the query into consecutive point pairs and run the
   reference-trajectory search (Sec. III-A) for each pair;
2. infer local routes per pair with TGI / NNI / the density hybrid
   (Sec. III-B), falling back to the network shortest path when a pair has
   no usable references (data sparseness never aborts a query);
3. score local routes (eq. 1), connect them with K-GRI (Sec. III-C) and
   return the top-K global routes.

:class:`HRISMatcher` adapts the top-1 route to the
:class:`~repro.mapmatching.base.MapMatcher` interface so HRIS plugs into
the same evaluation harness as the competitor matchers — the paper's
map-matching case study.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.archive import ArchiveBackend
from repro.core.hybrid import HybridConfig, HybridInference, reference_density_per_km2
from repro.core.kgri import GlobalRoute, k_gri
from repro.core.nni import NearestNeighborInference, NNIConfig
from repro.core.reference import Reference, ReferenceSearch, ReferenceSearchConfig
from repro.core.scoring import (
    LocalRoute,
    compute_segment_support,
    score_local_routes,
)
from repro.core.traverse_graph import TGIConfig, TraverseGraphInference
from repro.geo.point import Point
from repro.mapmatching.base import MapMatcher, MatchResult
from repro.roadnet.engine import (
    SHORTEST_PATHS,
    TRANSITION_ORACLES,
    EngineConfig,
    EngineStats,
    RoutingEngine,
)
from repro.roadnet.network import RoadNetwork
from repro.roadnet.contraction import ContractionHierarchy
from repro.roadnet.shortest_path import LandmarkIndex
from repro.roadnet.route import Route
from repro.trajectory.model import Trajectory

__all__ = ["HRISConfig", "HRIS", "HRISMatcher", "PairDetail", "InferenceDetail"]


@dataclass(frozen=True, slots=True)
class HRISConfig:
    """All tunables of the system — Table II of the paper.

    Attributes:
        phi: Reference search radius φ (500 m).
        tau: Hybrid density threshold τ (200 points/km²).
        lam: λ-neighborhood radius in TGI (4).
        k1: K of the K-shortest-path search in TGI (5).
        k2: k of the constrained kNN in NNI (4).
        k3: K of the global route inference (5).
        alpha: α backward tolerance in NNI (500 m).
        beta: β detour tolerance in NNI (1.5).
        candidate_radius: ε of candidate-edge searches (50 m).
        splice_epsilon: Splice gap ε of Definition 7 (300 m).
        enable_splicing: Search spliced references at all.
        splice_when_fewer_than: Splice only when fewer simple references
            than this were found (splicing targets data-sparse areas).
        splice_network_gap: Validate splice joints by network distance via
            the engine's batched transition oracle (see
            :class:`~repro.core.reference.ReferenceSearchConfig`); off by
            default — the paper's Definition 7 is purely euclidean.
        local_method: ``"hybrid"`` (default), ``"tgi"`` or ``"nni"``.
        entropy_floor: Popularity entropy floor (see scoring module).
        normalize_entropy: Normalise the popularity entropy factor to
            [0, 1] (removes the raw formula's length bias; see scoring).
        max_local_routes: Cap on local routes per pair.
        max_references: Cap on references per pair.
        use_reduction: TGI graph-reduction toggle.
        use_augmentation: TGI graph-augmentation toggle.
        share_substructures: NNI transit-graph sharing toggle.
        include_shortest_candidate: Always add the endpoint shortest path
            as one candidate local route per pair; it wins only when the
            references actually support it, and guarantees every stage has
            a sane geometric baseline even when the inference goes astray.
        max_detour_ratio: Local routes longer than this multiple of the
            endpoint shortest-path distance are discarded before scoring
            (equation (1) has no notion of length, so grossly detouring
            candidates must never reach it).
        time_of_day_window_s: Optional time-of-day reference filter (the
            paper's "incorporate the time" future work); None disables it.
        n_landmarks: Landmarks of the ALT shortest-path index built at HRIS
            construction time (0 disables ALT: A* falls back to the plain
            euclidean heuristic).  Results are identical either way.
        route_cache_size: Entries of the shared segment-pair route cache
            (0 disables).
        candidate_cache_size: Entries of the candidate-edge cache.
        support_cache_size: Entries of the reference-support cache.
        oracle_cache_size: Source tables held by the distance oracle.
        transition_oracle: ``"per_pair"`` (seed behaviour: one bounded
            Dijkstra per missed source), ``"table"`` (many-to-many
            :class:`~repro.roadnet.table_oracle.DistanceTableOracle`:
            resumable batched sweeps over announced frontiers) or
            ``"ch_buckets"`` (bucket joins over a contraction
            hierarchy).  Results are bit-identical in every case.
        shortest_path: Point-to-point engine query algorithm: ``"astar"``
            (seed discipline), ``"bidi"`` (bidirectional ALT) or ``"ch"``
            (contraction-hierarchy queries).  Routes and distances are
            identical; only the searched volume shrinks.
        bidirectional: Legacy alias selecting ``"bidi"`` when
            ``shortest_path`` is left at ``"astar"``.
        reference_mode: Where reference candidates are assembled.
            ``"local"`` (default, the seed behaviour) reads whole
            trajectories from the archive's client-held trip store;
            ``"shard"`` runs the same kernel over the archive's
            ``trip_source()`` — shard servers summarise and assemble
            candidates from the observations they own
            (``repro-remote-v4``), so the client needs no trip store.
            Requires a backend exposing ``trip_source()`` (the remote
            backend).  Results are bit-identical either way.
    """

    phi: float = 500.0
    tau: float = 200.0
    lam: int = 4
    k1: int = 5
    k2: int = 4
    k3: int = 5
    alpha: float = 500.0
    beta: float = 1.5
    candidate_radius: float = 50.0
    splice_epsilon: float = 300.0
    enable_splicing: bool = True
    splice_when_fewer_than: int = 5
    splice_network_gap: bool = False
    local_method: str = "hybrid"
    entropy_floor: float = 0.05
    normalize_entropy: bool = True
    max_local_routes: int = 10
    max_references: int = 60
    use_reduction: bool = True
    use_augmentation: bool = True
    share_substructures: bool = True
    include_shortest_candidate: bool = True
    max_detour_ratio: float = 1.5
    time_of_day_window_s: Optional[float] = None
    n_landmarks: int = 8
    route_cache_size: int = 65_536
    candidate_cache_size: int = 65_536
    support_cache_size: int = 16_384
    oracle_cache_size: int = 2_048
    transition_oracle: str = "per_pair"
    shortest_path: str = "astar"
    bidirectional: bool = False
    reference_mode: str = "local"

    def __post_init__(self) -> None:
        if self.local_method not in ("hybrid", "tgi", "nni"):
            raise ValueError(f"unknown local_method {self.local_method!r}")
        if self.n_landmarks < 0:
            raise ValueError("n_landmarks must be non-negative")
        if self.transition_oracle not in TRANSITION_ORACLES:
            raise ValueError(
                f"unknown transition_oracle {self.transition_oracle!r}"
            )
        if self.shortest_path not in SHORTEST_PATHS:
            raise ValueError(f"unknown shortest_path {self.shortest_path!r}")
        if self.reference_mode not in ("local", "shard"):
            raise ValueError(
                f"unknown reference_mode {self.reference_mode!r}; "
                f"choose 'local' or 'shard'"
            )

    def tgi_config(self) -> TGIConfig:
        return TGIConfig(
            lam=self.lam,
            k_shortest=self.k1,
            candidate_radius=self.candidate_radius,
            use_augmentation=self.use_augmentation,
            use_reduction=self.use_reduction,
            max_routes=self.max_local_routes,
            max_detour_ratio=self.max_detour_ratio,
        )

    def nni_config(self) -> NNIConfig:
        return NNIConfig(
            k=self.k2,
            alpha=self.alpha,
            beta=self.beta,
            share_substructures=self.share_substructures,
            candidate_radius=self.candidate_radius,
            max_routes=self.max_local_routes,
            max_detour_ratio=self.max_detour_ratio,
        )

    def reference_config(self) -> ReferenceSearchConfig:
        return ReferenceSearchConfig(
            phi=self.phi,
            splice_epsilon=self.splice_epsilon,
            enable_splicing=self.enable_splicing,
            splice_when_fewer_than=self.splice_when_fewer_than,
            max_references=self.max_references,
            time_of_day_window_s=self.time_of_day_window_s,
            splice_network_gap=self.splice_network_gap,
        )

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            n_landmarks=self.n_landmarks,
            route_cache_size=self.route_cache_size,
            candidate_cache_size=self.candidate_cache_size,
            support_cache_size=self.support_cache_size,
            oracle_sources=self.oracle_cache_size,
            transition_oracle=self.transition_oracle,
            shortest_path=self.shortest_path,
            bidirectional=self.bidirectional,
        )


@dataclass(slots=True)
class PairDetail:
    """Diagnostics for one query-point pair."""

    n_references: int
    n_spliced: int
    density: float
    method: str
    n_local_routes: int
    fallback: bool


@dataclass(slots=True)
class InferenceDetail:
    """Diagnostics for a full query inference.

    ``engine`` holds the routing-engine counter deltas accumulated during
    this query — searches run, nodes settled, and per-cache hits, misses
    and evictions (see :class:`~repro.roadnet.engine.EngineStats`).
    """

    pairs: List[PairDetail] = field(default_factory=list)
    reference_time_s: float = 0.0
    local_time_s: float = 0.0
    global_time_s: float = 0.0
    engine: Optional[EngineStats] = None

    @property
    def total_time_s(self) -> float:
        return self.reference_time_s + self.local_time_s + self.global_time_s


class HRIS:
    """History-based Route Inference System.

    Args:
        network: The road network.
        archive: Any :class:`~repro.core.archive.ArchiveBackend` — the
            monolithic :class:`~repro.core.archive.InMemoryArchive` or the
            tiled :class:`~repro.core.archive.ShardedArchive`; inference
            results are identical whichever backend serves the reference
            range queries.
        config: System tunables (Table II).
        landmark_index: Optional prebuilt/persisted ALT landmark index;
            when given (and ``config.n_landmarks > 0``) the engine reuses
            it instead of rebuilding the tables at construction time.
        ch_hierarchy: Optional prebuilt/persisted contraction hierarchy;
            only consulted when the config selects a CH tier.
    """

    def __init__(
        self,
        network: RoadNetwork,
        archive: ArchiveBackend,
        config: HRISConfig = HRISConfig(),
        landmark_index: Optional["LandmarkIndex"] = None,
        ch_hierarchy: Optional["ContractionHierarchy"] = None,
    ) -> None:
        self._network = network
        self._archive = archive
        self._config = config
        self._engine = RoutingEngine(
            network,
            config.engine_config(),
            landmarks=landmark_index,
            hierarchy=ch_hierarchy,
        )
        trip_source = None
        if config.reference_mode == "shard":
            factory = getattr(archive, "trip_source", None)
            if factory is None:
                raise ValueError(
                    "reference_mode='shard' needs an archive backend with "
                    "shard-side reference ops (the remote backend); "
                    f"{type(archive).__name__} has no trip_source()"
                )
            trip_source = factory()
        self._reference_search = ReferenceSearch(
            archive,
            network,
            config.reference_config(),
            engine=self._engine,
            source=trip_source,
        )
        self._tgi = TraverseGraphInference(
            network, config.tgi_config(), engine=self._engine
        )
        self._nni = NearestNeighborInference(
            network, config.nni_config(), engine=self._engine
        )
        self._hybrid = HybridInference(
            network,
            HybridConfig(tau=config.tau, tgi=config.tgi_config(), nni=config.nni_config()),
            engine=self._engine,
        )

    @property
    def config(self) -> HRISConfig:
        return self._config

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def archive(self) -> ArchiveBackend:
        """The historical archive backend this instance serves from."""
        return self._archive

    @property
    def engine(self) -> RoutingEngine:
        """The routing engine shared by every inference component."""
        return self._engine

    def worker_clone(self) -> "HRIS":
        """A sibling instance for another serving thread.

        The clone shares this instance's read-only state — network,
        archive backend and ALT landmark tables — but owns fresh caches,
        oracle state and reference-search session: exactly the pieces
        mutated per query, none of which are thread-safe.  Results are
        bit-identical to this instance's (caches change when work
        happens, never what is computed); only cache warm-up is private.

        The gateway (:mod:`repro.serve`) builds one clone per worker so
        concurrent requests never share a mutable engine.  With
        ``reference_mode="shard"`` the clone opens its own
        ``trip_source()`` session, since a reference-assembly session
        carries per-query state.
        """
        return HRIS(
            self._network,
            self._archive,
            self._config,
            landmark_index=self._engine.landmarks,
            ch_hierarchy=self._engine.hierarchy,
        )

    def infer_routes(
        self, query: Trajectory, k: Optional[int] = None
    ) -> List[GlobalRoute]:
        """The top-K possible routes of a low-sampling-rate query.

        Args:
            query: The query trajectory (at least two points).
            k: Number of global routes; defaults to the configured k3.

        Raises:
            ValueError: If the query has fewer than two points.
        """
        routes, __ = self.infer_routes_with_details(query, k)
        return routes

    def infer_routes_with_details(
        self, query: Trajectory, k: Optional[int] = None
    ) -> Tuple[List[GlobalRoute], InferenceDetail]:
        """As :meth:`infer_routes`, also returning per-phase diagnostics."""
        if len(query) < 2:
            raise ValueError("a query needs at least two points")
        k = k if k is not None else self._config.k3
        detail = InferenceDetail()
        engine_before = self._engine.stats()

        stages: List[List[LocalRoute]] = []
        for i in range(len(query) - 1):
            qi, qi1 = query[i], query[i + 1]

            t0 = time.perf_counter()
            references = self._reference_search.search(qi, qi1)
            detail.reference_time_s += time.perf_counter() - t0

            t0 = time.perf_counter()
            stage, pair_detail = self._local_stage(qi.point, qi1.point, references)
            detail.local_time_s += time.perf_counter() - t0
            detail.pairs.append(pair_detail)
            stages.append(stage)

        t0 = time.perf_counter()
        result = k_gri(self._network, stages, k, engine=self._engine)
        detail.global_time_s += time.perf_counter() - t0
        detail.engine = self._engine.stats().delta(engine_before)
        return result, detail

    def infer_routes_batch(
        self,
        trajectories: Iterable[Trajectory],
        k: Optional[int] = None,
        workers: int = 1,
        chunksize: Optional[int] = None,
        use_processes: Optional[bool] = None,
    ) -> List[List[GlobalRoute]]:
        """Infer routes for many queries, optionally across worker processes.

        The result is ordered like the input and is element-for-element
        identical to calling :meth:`infer_routes` sequentially — workers
        only change the schedule, never the computation.

        Parallelism uses the ``fork`` start method so every worker shares
        this instance's read-only network, archive and landmark tables
        without pickling; per-worker caches warm independently.  When
        ``workers <= 1``, ``fork`` is unavailable (non-POSIX), or the batch
        is smaller than two queries, inference runs sequentially in-process
        — the single code path the equivalence test pins down.

        Args:
            trajectories: The query trajectories.
            k: Global routes per query (defaults to the configured k3).
            workers: Worker processes to fork.
            chunksize: Queries dispatched per worker task; defaults to an
                even split across workers.
            use_processes: ``None`` (default) forks only when the machine
                has more than one CPU — on a single core a pool costs
                fork/copy-on-write overhead and splits the shared caches
                for zero parallelism, so sequential is strictly faster.
                ``True`` forces the pool regardless (the equivalence test
                exercises the fork path this way); ``False`` forces
                sequential.
        """
        queries = list(trajectories)
        if use_processes is None:
            use_processes = (multiprocessing.cpu_count() or 1) > 1
        if not use_processes or workers <= 1 or len(queries) < 2:
            return [self.infer_routes(q, k) for q in queries]
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            return [self.infer_routes(q, k) for q in queries]

        global _BATCH_STATE
        if chunksize is None:
            chunksize = max(1, math.ceil(len(queries) / workers))
        # Sharded archives: bin points into tiles *before* forking (cheap,
        # no R-trees), so workers share the assignment copy-on-write and
        # each materialises per-tile indexes only for the tiles its own
        # chunk of queries touches.
        prepare = getattr(self._archive, "prepare_for_fork", None)
        if prepare is not None:
            prepare()
        # Table oracles: seal resumable sweep heaps so forked workers share
        # the warm distance rows copy-on-write instead of re-sweeping.
        self._engine.prepare_for_fork()
        _BATCH_STATE = (self, k, queries)
        try:
            with ctx.Pool(processes=workers) as pool:
                return pool.map(_batch_infer_one, range(len(queries)), chunksize)
        finally:
            _BATCH_STATE = None

    # -------------------------------------------------------------- internal

    def _local_stage(
        self, qi: Point, qi1: Point, references: Sequence[Reference]
    ) -> Tuple[List[LocalRoute], PairDetail]:
        cfg = self._config
        method = cfg.local_method
        routes: List[Route] = []
        if references:
            if method == "tgi":
                routes, __ = self._tgi.infer(qi, qi1, references)
            elif method == "nni":
                routes, __ = self._nni.infer(qi, qi1, references)
            else:
                routes, method = self._hybrid.infer(qi, qi1, references)

        sp = self._shortest_path_fallback(qi, qi1)
        if sp is not None:
            # Hard guard: equation (1) cannot compare routes of wildly
            # different lengths, so candidates grossly longer than the
            # direct connection never reach the scoring stage.
            bound = sp.length(self._network) * cfg.max_detour_ratio
            routes = [r for r in routes if r.length(self._network) <= bound]
        fallback = not routes
        if sp is not None and (fallback or cfg.include_shortest_candidate):
            if all(sp.segment_ids != r.segment_ids for r in routes):
                routes = list(routes) + [sp]
        if not routes:
            raise RuntimeError(
                "no local route between query points — the road network is "
                "not connected around the query"
            )

        support = compute_segment_support(
            self._network, references, cfg.candidate_radius, engine=self._engine
        )
        stage = score_local_routes(
            routes, support, cfg.entropy_floor, cfg.normalize_entropy
        )
        pair_detail = PairDetail(
            n_references=len(references),
            n_spliced=sum(1 for r in references if r.spliced),
            density=reference_density_per_km2(references),
            method=method if not fallback else "fallback",
            n_local_routes=len(stage),
            fallback=fallback,
        )
        return stage, pair_detail

    def _shortest_path_fallback(self, qi: Point, qi1: Point) -> Optional[Route]:
        """Network shortest path between the points' nearest segments."""
        src = self._network.nearest_segments(qi, 1)
        dst = self._network.nearest_segments(qi1, 1)
        if not src or not dst:
            return None
        gap, route = self._engine.shortest_route_between_segments(
            src[0].segment.segment_id, dst[0].segment.segment_id
        )
        if math.isinf(gap):
            return None
        return route


#: Fork-inherited batch state: (hris, k, queries).  Set by
#: :meth:`HRIS.infer_routes_batch` immediately before the pool forks, so
#: workers address the shared read-only HRIS without pickling it.
_BATCH_STATE: Optional[Tuple["HRIS", Optional[int], List[Trajectory]]] = None


def _batch_infer_one(index: int) -> List[GlobalRoute]:
    assert _BATCH_STATE is not None, "batch worker started without state"
    hris, k, queries = _BATCH_STATE
    return hris.infer_routes(queries[index], k)


class HRISMatcher(MapMatcher):
    """Adapter: HRIS top-1 global route as a map matcher.

    This is exactly how the paper evaluates HRIS ("for fairness, we use the
    top-1 global route to compute the accuracy of our approach").
    """

    def __init__(self, hris: HRIS) -> None:
        self._hris = hris

    def match(self, trajectory: Trajectory) -> MatchResult:
        routes = self._hris.infer_routes(trajectory, k=1)
        route = routes[0].route if routes else Route.empty()
        return MatchResult(route=route, matched=tuple([None] * len(trajectory)))
