"""Durable per-shard write-ahead log (``repro-wal-v1``).

The distributed archive is an *online* system: trips stream into
:class:`~repro.core.remote.ArchiveShardServer` continuously, and the
reference mass behind Definitions 6/7 must survive a process death
without losing acknowledged mutations.  This module is the ingest
spine's durability layer — an append-only, checksummed log of mutation
records plus a snapshot/rotation compaction scheme:

**Record framing.**  A log file is a sequence of length-prefixed
records: a 8-byte big-endian header ``(payload_len: u32, crc32: u32)``
followed by ``payload_len`` bytes of compact UTF-8 JSON.  The first
record of every file is the *file header*
``{"format": "repro-wal-v1", "generation": G, "base_lsn": N}``; every
subsequent record is a mutation ``[lsn, op, rows]`` where ``op`` is
``"insert"`` or ``"delete"`` and ``rows`` are the effective
``[traj_id, index, x, y, t]`` observation rows.  LSNs are monotonic and
gap-free within a log (``base_lsn + 1, base_lsn + 2, ...``), so two
replicas at the same LSN hold byte-identical record streams — the
invariant replica log catch-up rests on.

**Torn tails.**  A crash mid-append leaves a torn final record (short
frame, CRC mismatch, or an LSN gap).  Replay stops at the first invalid
record and the recovery path truncates the file there: everything
*acknowledged* was fully framed before the ack, so truncation only ever
drops un-acked bytes.

**Generations and compaction.**  A directory holds one *generation* at
a time: ``wal-<G>.log`` plus, for ``G`` with ``base_lsn > 0``,
``snapshot-<G>.json`` (the full row set at ``base_lsn``).
:meth:`WriteAheadLog.rotate` compacts by writing the next generation's
snapshot to a ``*.tmp`` file, fsyncing it, and **atomically renaming**
it into place — the rename is the commit point, so a crash anywhere
mid-compaction leaves either the old generation intact or the new
snapshot complete; no window loses data.  Only then is the fresh log
created and the old generation deleted; recovery sweeps stale
generations and orphaned ``*.tmp`` files.

**Fsync policy.**  ``"always"`` fsyncs every append before the caller
acks (no acknowledged record can be lost to a power failure),
``"interval"`` flushes every append but fsyncs at most every
``fsync_interval_s`` seconds (bounded loss on *OS* crash, none on
process crash), ``"off"`` only flushes (process-crash safe, power-fail
unsafe).  ``benchmarks/bench_throughput.py`` measures the throughput
cost of each.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

__all__ = [
    "FSYNC_POLICIES",
    "SNAPSHOT_FORMAT",
    "WAL_FORMAT",
    "WalCorruptionError",
    "WriteAheadLog",
    "read_log",
]

WAL_FORMAT = "repro-wal-v1"
SNAPSHOT_FORMAT = "repro-wal-v1-snapshot"
FSYNC_POLICIES = ("always", "interval", "off")

#: ``(payload_len, crc32(payload))`` — both big-endian u32.
_RECORD_HEADER = struct.Struct(">II")

#: A mutation record as replayed: ``(lsn, op, rows)``.
WalRecord = Tuple[int, str, list]


class WalCorruptionError(RuntimeError):
    """The WAL directory is inconsistent beyond torn-tail repair."""


def _encode_record(obj: object) -> bytes:
    payload = json.dumps(obj, separators=(",", ":"), ensure_ascii=False).encode(
        "utf-8"
    )
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _log_name(generation: int) -> str:
    return f"wal-{generation:08d}.log"


def _snapshot_name(generation: int) -> str:
    return f"snapshot-{generation:08d}.json"


def _generation_of(path: Path) -> Optional[int]:
    stem = path.name
    for prefix, suffix in (("wal-", ".log"), ("snapshot-", ".json")):
        if stem.startswith(prefix) and stem.endswith(suffix):
            digits = stem[len(prefix) : -len(suffix)]
            if digits.isdigit():
                return int(digits)
    return None


def read_log(path: Union[str, Path]) -> Tuple[Optional[dict], List[WalRecord], int, int]:
    """Replay one log file with torn-tail detection (read-only).

    Returns:
        ``(header, records, valid_bytes, torn_bytes)`` — ``header`` is
        ``None`` when even the file-header record is unreadable;
        ``records`` are the valid ``(lsn, op, rows)`` mutations;
        ``valid_bytes`` is the offset of the first invalid byte (the
        truncation point) and ``torn_bytes`` what follows it.  Replay
        stops at the first short frame, CRC mismatch, undecodable
        payload, or LSN discontinuity.
    """
    data = Path(path).read_bytes()
    offset = 0
    header: Optional[dict] = None
    records: List[WalRecord] = []
    expected_lsn: Optional[int] = None
    while offset < len(data):
        if offset + _RECORD_HEADER.size > len(data):
            break
        length, crc = _RECORD_HEADER.unpack_from(data, offset)
        start = offset + _RECORD_HEADER.size
        end = start + length
        if end > len(data):
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            obj = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            break
        if header is None:
            if not isinstance(obj, dict) or obj.get("format") != WAL_FORMAT:
                break
            header = obj
            expected_lsn = int(obj["base_lsn"])
        else:
            if not isinstance(obj, list) or len(obj) != 3:
                break
            lsn, op, rows = obj
            if int(lsn) != expected_lsn + 1 or not isinstance(rows, list):
                break
            expected_lsn = int(lsn)
            records.append((int(lsn), str(op), rows))
        offset = end
    return header, records, offset, len(data) - offset


class WriteAheadLog:
    """One shard process's append-only mutation log (``repro-wal-v1``).

    Opening the directory *is* recovery: orphaned ``*.tmp`` files are
    swept, the newest complete generation is selected, its snapshot rows
    and replayed records are exposed on :attr:`snapshot_rows` /
    :attr:`records` for the caller to rebuild state from, a torn tail is
    truncated in place, and the log is reopened for appending.

    Args:
        directory: The WAL directory (created if missing).  One server
            process per directory — there is no cross-process locking.
        fsync: One of :data:`FSYNC_POLICIES` (see the module docstring
            for the durability trade-offs).
        fsync_interval_s: Minimum seconds between fsyncs under the
            ``"interval"`` policy.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: str = "always",
        fsync_interval_s: float = 0.05,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        if fsync_interval_s <= 0.0:
            raise ValueError("fsync_interval_s must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_interval_s = float(fsync_interval_s)
        #: Optional test hook called with a stage name at every
        #: compaction step — raising from it simulates a crash at that
        #: exact point (see ``tests/test_wal.py``).
        self.fault_hook: Optional[Callable[[str], None]] = None
        self.generation = 0
        self.base_lsn = 0
        self.lsn = 0
        #: Snapshot rows of the recovered generation (``None`` when it
        #: had no snapshot); the caller applies them, then `records`.
        self.snapshot_rows: Optional[list] = None
        #: Mutation records replayed from the recovered log.
        self.records: List[WalRecord] = []
        self.records_appended = 0
        self.fsyncs = 0
        self.compactions = 0
        self.unflushed_records = 0
        self.truncated_bytes = 0
        self.recovered_records = 0
        self.recovered_snapshot_rows = 0
        self._fh = None
        self._last_fsync = time.monotonic()
        self._recover()

    # ------------------------------------------------------------- recovery

    def _fault(self, stage: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(stage)

    def _log_path(self, generation: int) -> Path:
        return self.directory / _log_name(generation)

    def _snapshot_path(self, generation: int) -> Path:
        return self.directory / _snapshot_name(generation)

    def _recover(self) -> None:
        logs: dict = {}
        snapshots: dict = {}
        for path in self.directory.iterdir():
            if path.name.endswith(".tmp"):
                path.unlink()  # a compaction that never reached its commit point
                continue
            generation = _generation_of(path)
            if generation is None:
                continue
            (logs if path.suffix == ".log" else snapshots)[generation] = path

        if not logs and not snapshots:
            self._create_log(0, 0)
            return

        generation = max(set(logs) | set(snapshots))
        base_lsn = 0
        if generation in snapshots:
            snapshot = json.loads(snapshots[generation].read_text(encoding="utf-8"))
            if (
                snapshot.get("format") != SNAPSHOT_FORMAT
                or int(snapshot.get("generation", -1)) != generation
            ):
                raise WalCorruptionError(
                    f"{snapshots[generation]} is not a generation-{generation} "
                    f"{SNAPSHOT_FORMAT} snapshot"
                )
            base_lsn = int(snapshot["lsn"])
            self.snapshot_rows = snapshot["rows"]
            self.recovered_snapshot_rows = len(self.snapshot_rows)

        if generation in logs:
            header, records, valid_bytes, torn_bytes = read_log(logs[generation])
            if header is None:
                # The log's own header record is torn: the rotation that
                # was creating this file never completed, so the snapshot
                # (the rotation's commit point) covers everything.
                if generation not in snapshots and generation != 0:
                    raise WalCorruptionError(
                        f"{logs[generation]} has no readable header and no "
                        "snapshot to recover from"
                    )
                logs[generation].unlink()
                self._create_log(generation, base_lsn)
            else:
                if int(header.get("generation", -1)) != generation or (
                    generation in snapshots and int(header["base_lsn"]) != base_lsn
                ):
                    raise WalCorruptionError(
                        f"{logs[generation]} header {header} does not match its "
                        f"generation/snapshot (base_lsn {base_lsn})"
                    )
                if generation not in snapshots and int(header["base_lsn"]) != 0:
                    raise WalCorruptionError(
                        f"{logs[generation]} starts at lsn "
                        f"{header['base_lsn']} but generation {generation} "
                        "has no snapshot"
                    )
                base_lsn = int(header["base_lsn"])
                if torn_bytes:
                    with open(logs[generation], "r+b") as fh:
                        fh.truncate(valid_bytes)
                        fh.flush()
                        os.fsync(fh.fileno())
                    self.truncated_bytes = torn_bytes
                self.records = records
                self.recovered_records = len(records)
                self._fh = open(logs[generation], "ab")
        else:
            # Crash after the snapshot rename but before the new log was
            # created: the snapshot is complete, start its log fresh.
            self._create_log(generation, base_lsn)

        self.generation = generation
        self.base_lsn = base_lsn
        self.lsn = self.records[-1][0] if self.records else base_lsn

        for stale_generation, path in list(logs.items()) + list(snapshots.items()):
            if stale_generation != generation:
                path.unlink()

    def _create_log(self, generation: int, base_lsn: int) -> None:
        """Create ``wal-<generation>.log`` atomically (tmp, fsync, rename)."""
        path = self._log_path(generation)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(
                _encode_record(
                    {
                        "format": WAL_FORMAT,
                        "generation": generation,
                        "base_lsn": base_lsn,
                    }
                )
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._fsync_directory()
        self._fh = open(path, "ab")

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds; renames still ordered
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------- appending

    def append(self, lsn: int, op: str, rows: list) -> None:
        """Frame and write one mutation record, honouring the fsync policy.

        The caller assigns LSNs (``self.lsn + 1`` — gap-free within the
        generation) and must not ack the mutation before this returns.
        """
        if self._fh is None:
            raise ValueError("write-ahead log is closed")
        if lsn != self.lsn + 1:
            raise ValueError(f"lsn {lsn} leaves a gap after {self.lsn}")
        self._fh.write(_encode_record([lsn, op, rows]))
        self.lsn = lsn
        self.records_appended += 1
        self.unflushed_records += 1
        if self.fsync_policy == "always":
            self.sync()
        else:
            self._fh.flush()
            if (
                self.fsync_policy == "interval"
                and time.monotonic() - self._last_fsync >= self.fsync_interval_s
            ):
                self.sync()

    def sync(self) -> None:
        """Flush and fsync the live log now, whatever the policy."""
        if self._fh is None:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.fsyncs += 1
        self.unflushed_records = 0
        self._last_fsync = time.monotonic()

    # ------------------------------------------------------------ compaction

    def rotate(self, rows: list, lsn: int) -> None:
        """Compact: snapshot the full state at ``lsn``, start a new log.

        The snapshot is written to a ``*.tmp`` sibling, fsynced, and
        atomically renamed into place — the rename is the commit point.
        A crash before it leaves the old generation authoritative; a
        crash after it recovers from the new snapshot.  Only once the
        new generation's log exists are the old generation's files
        deleted.
        """
        if self._fh is None:
            raise ValueError("write-ahead log is closed")
        new_generation = self.generation + 1
        snapshot_path = self._snapshot_path(new_generation)
        tmp = snapshot_path.with_name(snapshot_path.name + ".tmp")
        self._fault("snapshot-write")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "format": SNAPSHOT_FORMAT,
                    "generation": new_generation,
                    "lsn": int(lsn),
                    "rows": rows,
                },
                fh,
                separators=(",", ":"),
            )
            fh.flush()
            os.fsync(fh.fileno())
        self._fault("snapshot-rename")
        os.replace(tmp, snapshot_path)  # commit point
        self._fsync_directory()
        self._fault("log-create")
        old_fh = self._fh
        old_log = self._log_path(self.generation)
        old_snapshot = self._snapshot_path(self.generation)
        self._create_log(new_generation, int(lsn))
        self._fault("old-delete")
        old_fh.close()
        old_log.unlink()
        if old_snapshot.exists():
            old_snapshot.unlink()
        self.generation = new_generation
        self.base_lsn = int(lsn)
        self.lsn = int(lsn)
        self.compactions += 1
        self.unflushed_records = 0
        self._last_fsync = time.monotonic()

    # ------------------------------------------------------------- lifecycle

    def close(self) -> int:
        """Flush, fsync and close the log.

        Returns:
            Records that were *awaiting* fsync when close was called —
            they are durable now, but under ``interval``/``off`` policies
            this is how many acknowledged records a crash at this moment
            would have lost.
        """
        if self._fh is None:
            return 0
        pending = self.unflushed_records
        try:
            self.sync()
        except (OSError, ValueError):
            pass
        try:
            self._fh.close()
        except OSError:
            pass
        self._fh = None
        return pending

    def stats(self) -> dict:
        return {
            "enabled": True,
            "directory": str(self.directory),
            "fsync_policy": self.fsync_policy,
            "generation": self.generation,
            "base_lsn": self.base_lsn,
            "lsn": self.lsn,
            "records_appended": self.records_appended,
            "fsyncs": self.fsyncs,
            "compactions": self.compactions,
            "unflushed_records": self.unflushed_records,
            "recovered_records": self.recovered_records,
            "recovered_snapshot_rows": self.recovered_snapshot_rows,
            "truncated_bytes": self.truncated_bytes,
        }
