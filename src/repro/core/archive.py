"""Trajectory archive layer: the preprocessed historical database.

The preprocessing component of Fig. 2: raw GPS logs are partitioned into
trips (stay-point removal), optionally aligned to the road network, and all
GPS points are organised in spatial indexes so the reference-trajectory
search can issue the two range queries of Sec. III-A efficiently.

The layer is split into pluggable backends behind one protocol:

* :class:`ArchiveBackend` — what the reference search, HRIS and the eval
  harness need from an archive (trip access, point iteration, the range
  queries);
* :class:`InMemoryArchive` — the classic single-R-tree implementation
  (kept available under its historical name :data:`TrajectoryArchive`);
* :class:`ShardedArchive` — points partitioned into square spatial tiles
  with one lazily built R-tree per tile; range and pair queries are routed
  only to the overlapping tiles, so a worker serving a localised query set
  materialises a fraction of the archive's index;
* :class:`~repro.core.remote.RemoteShardedArchive` (in
  :mod:`repro.core.remote`) — the same tiling split across *processes*:
  each :class:`~repro.core.remote.ArchiveShardServer` owns a subset of
  tiles and the client fans queries out over a socket protocol, merging
  replies back into the canonical order (see ``docs/distributed.md``).

Every backend returns **canonically ordered** query results — point hits
sorted by ``(traj_id, index)``, near-maps keyed in ascending trajectory
id — so backends are interchangeable bit-for-bit: merging per-shard hits
and sorting yields exactly the monolithic answer (each point lives in
exactly one tile, so the merge needs no boundary heuristics).

:func:`save_archive` / :func:`load_archive` persist an archive together
with its spatial index metadata (the tile assignment), so re-opening a
sharded archive skips the re-binning pass.
"""

from __future__ import annotations

import json
import math
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.spatial.rtree import RTree
from repro.trajectory.io import iter_trajectories, save_trajectories
from repro.trajectory.model import GPSPoint, Trajectory
from repro.trajectory.staypoint import partition_trips

__all__ = [
    "ArchivePoint",
    "ArchiveBackend",
    "InMemoryArchive",
    "ShardedArchive",
    "TrajectoryArchive",
    "ARCHIVE_BACKENDS",
    "make_archive",
    "convert_archive",
    "save_archive",
    "load_archive",
]


@dataclass(frozen=True, slots=True)
class ArchivePoint:
    """A reference into the archive: which trajectory, which observation."""

    traj_id: int
    index: int


def _ref_key(ref: ArchivePoint) -> Tuple[int, int]:
    return (ref.traj_id, ref.index)


def _group_refs(refs: Sequence[ArchivePoint]) -> Dict[int, List[int]]:
    """Canonically-ordered hits (see module docstring) to a near-map."""
    hits: Dict[int, List[int]] = {}
    for ref in refs:
        hits.setdefault(ref.traj_id, []).append(ref.index)
    return hits


@runtime_checkable
class ArchiveBackend(Protocol):
    """The archive surface the online system is written against.

    Implementations must return *canonically ordered* results: point hits
    sorted by ``(traj_id, index)`` and near-maps with ascending trajectory
    ids, each mapped to its sorted observation indices.  The ordering is
    what makes backends interchangeable bit-for-bit — downstream stages
    (reference assembly, scoring, K-GRI) see identical inputs whichever
    backend served the range queries.
    """

    def __len__(self) -> int: ...

    def __contains__(self, traj_id: int) -> bool: ...

    @property
    def num_points(self) -> int: ...

    def add(self, trajectory: Trajectory) -> int: ...

    def remove(self, traj_id: int) -> bool: ...

    def trajectory_ids(self) -> List[int]: ...

    def trajectory(self, traj_id: int) -> Trajectory: ...

    def trajectories(self) -> Iterable[Trajectory]: ...

    def point(self, ref: ArchivePoint) -> GPSPoint: ...

    def points_near(self, q: Point, radius: float) -> List[ArchivePoint]: ...

    def points_in_bbox(self, region: BBox) -> List[ArchivePoint]: ...

    def trajectories_near(self, q: Point, radius: float) -> Dict[int, List[int]]: ...

    def trajectories_near_pair(
        self, qi: Point, qi1: Point, radius: float
    ) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]: ...

    def density_per_km2(self, region: BBox) -> float: ...

    def backend_stats(self) -> Dict[str, object]: ...


class _ArchiveBase:
    """Shared trip store and derived queries of every archive backend.

    Subclasses supply the spatial substrate through three hooks:
    :meth:`_search_circles` (batched circular range queries returning
    canonically sorted hits), :meth:`points_in_bbox`, and the mutation
    notifications :meth:`_on_add` / :meth:`_on_remove`.
    """

    def __init__(self) -> None:
        self._trajectories: Dict[int, Trajectory] = {}
        self._next_id = 0

    # ---------------------------------------------------------------- builder

    def add(self, trajectory: Trajectory) -> int:
        """Add a trip, re-identifying it; returns the assigned id."""
        new_id = self._next_id
        self._next_id += 1
        traj = Trajectory(new_id, trajectory.points)
        self._trajectories[new_id] = traj
        self._on_add(traj)
        return new_id

    def remove(self, traj_id: int) -> bool:
        """Remove a trip by id (e.g. retention expiry).

        Returns:
            True if the trip existed.
        """
        traj = self._trajectories.pop(traj_id, None)
        if traj is None:
            return False
        self._on_remove(traj)
        return True

    def _restore(self, trajectory: Trajectory) -> None:
        """Re-insert a trip under its existing id (persistence/conversion).

        Raises:
            ValueError: If the id is already taken.
        """
        tid = trajectory.traj_id
        if tid in self._trajectories:
            raise ValueError(f"trajectory id {tid} already present")
        self._trajectories[tid] = trajectory
        self._next_id = max(self._next_id, tid + 1)
        self._on_add(trajectory)

    @classmethod
    def from_trips(cls, trips: Iterable[Trajectory], **kwargs) -> "_ArchiveBase":
        archive = cls(**kwargs)
        for t in trips:
            archive.add(t)
        return archive

    @classmethod
    def from_raw_logs(
        cls,
        logs: Iterable[Trajectory],
        stay_distance: float = 200.0,
        stay_time: float = 20.0 * 60.0,
        max_gap_s: float = 30.0 * 60.0,
        min_points: int = 2,
        **kwargs,
    ) -> "_ArchiveBase":
        """Preprocess raw multi-trip GPS logs: trip partition then indexing.

        This is the "Trip Partition" box of the paper's Fig. 2 applied to
        every log, with each resulting trip stored as its own archive entry.
        """
        archive = cls(**kwargs)
        for log in logs:
            for trip in partition_trips(
                log, stay_distance, stay_time, max_gap_s, min_points
            ):
                archive.add(trip)
        return archive

    # ----------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._trajectories)

    def __contains__(self, traj_id: int) -> bool:
        return traj_id in self._trajectories

    @property
    def num_points(self) -> int:
        return sum(len(t) for t in self._trajectories.values())

    def trajectory_ids(self) -> List[int]:
        """All trip ids, ascending."""
        return sorted(self._trajectories)

    def trajectory(self, traj_id: int) -> Trajectory:
        return self._trajectories[traj_id]

    def trajectories(self) -> Iterable[Trajectory]:
        return self._trajectories.values()

    def point(self, ref: ArchivePoint) -> GPSPoint:
        return self._trajectories[ref.traj_id].points[ref.index]

    def iter_points(self) -> Iterator[Tuple[ArchivePoint, GPSPoint]]:
        """Every observation in the archive, tagged with its reference."""
        for tid, traj in self._trajectories.items():
            for i, p in enumerate(traj.points):
                yield ArchivePoint(tid, i), p

    # ---------------------------------------------------------------- queries

    def points_near(self, q: Point, radius: float) -> List[ArchivePoint]:
        """All archive observations within ``radius`` of ``q``."""
        return self._search_circles([(q, radius)])[0]

    def trajectories_near(self, q: Point, radius: float) -> Dict[int, List[int]]:
        """Trajectory ids with at least one observation within ``radius``,
        mapped to the indices of those observations (sorted)."""
        return _group_refs(self.points_near(q, radius))

    def trajectories_near_pair(
        self, qi: Point, qi1: Point, radius: float
    ) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
        """:meth:`trajectories_near` around both points of a query pair.

        The reference search needs the φ-neighbourhoods of ``q_i`` and
        ``q_{i+1}`` together; backends serve both range queries in one
        index pass (a single R-tree walk for the monolithic backend, one
        visit per overlapping tile for the sharded one).

        Returns:
            ``(near_i, near_j)`` — trajectory id to sorted observation
            indices, one map per query point.
        """
        hits_i, hits_j = self._search_circles([(qi, radius), (qi1, radius)])
        return _group_refs(hits_i), _group_refs(hits_j)

    def density_per_km2(self, region: BBox) -> float:
        """Archive observations per km² inside ``region``."""
        if region.area == 0.0:
            return 0.0
        return len(self.points_in_bbox(region)) / (region.area / 1_000_000.0)

    # ------------------------------------------------------------- telemetry

    def backend_stats(self) -> Dict[str, object]:
        """One JSON-able snapshot of this backend's state for monitoring.

        Every backend reports at least ``backend`` / ``n_trajectories`` /
        ``n_points``; subclasses extend it with their resident-index and
        (for the remote backend) replication-health figures.
        """
        return {
            "backend": type(self).__name__,
            "n_trajectories": len(self),
            "n_points": self.num_points,
        }

    # ------------------------------------------------------------------ hooks

    def _on_add(self, trajectory: Trajectory) -> None:
        raise NotImplementedError

    def _on_remove(self, trajectory: Trajectory) -> None:
        raise NotImplementedError

    def _search_circles(
        self, queries: Sequence[Tuple[Point, float]]
    ) -> List[List[ArchivePoint]]:
        raise NotImplementedError

    def points_in_bbox(self, region: BBox) -> List[ArchivePoint]:
        """All observations inside ``region``, canonically ordered."""
        raise NotImplementedError


class InMemoryArchive(_ArchiveBase):
    """The monolithic backend: one R-tree over every archive point.

    The index is built lazily (STR bulk load) on the first spatial query.
    Once built it is maintained *incrementally*: :meth:`add` inserts the
    new trip's points and :meth:`remove` deletes them, so steady-state
    mutations cost ``O(points · log n)`` instead of a full rebuild.
    """

    def __init__(self) -> None:
        super().__init__()
        self._index: Optional[RTree[ArchivePoint]] = None

    # ------------------------------------------------------------------ hooks

    def _on_add(self, trajectory: Trajectory) -> None:
        if self._index is None:
            return
        for i, p in enumerate(trajectory.points):
            self._index.insert_point(p.point, ArchivePoint(trajectory.traj_id, i))

    def _on_remove(self, trajectory: Trajectory) -> None:
        if self._index is None:
            return
        for i, p in enumerate(trajectory.points):
            self._index.remove_point(p.point, ArchivePoint(trajectory.traj_id, i))

    def _ensure_index(self) -> RTree[ArchivePoint]:
        if self._index is None:
            entries = [
                (BBox.from_point(p.point), ref) for ref, p in self.iter_points()
            ]
            self._index = RTree.bulk_load(entries, max_entries=32)
        return self._index

    def _search_circles(
        self, queries: Sequence[Tuple[Point, float]]
    ) -> List[List[ArchivePoint]]:
        index = self._ensure_index()
        hits = index.search_radius_many(
            queries, position=lambda ref: self.point(ref).point
        )
        return [sorted(h, key=_ref_key) for h in hits]

    def points_in_bbox(self, region: BBox) -> List[ArchivePoint]:
        return sorted(self._ensure_index().search_bbox(region), key=_ref_key)

    # ------------------------------------------------------------- accounting

    @property
    def resident_points(self) -> int:
        """Observations currently held by a materialised spatial index."""
        return self.num_points if self._index is not None else 0

    @property
    def resident_tiles(self) -> int:
        return 1 if self._index is not None else 0

    @property
    def total_tiles(self) -> int:
        return 1

    def index_nbytes(self) -> int:
        """Approximate bytes held by the materialised R-tree (0 if lazy)."""
        return self._index.approx_nbytes() if self._index is not None else 0

    def backend_stats(self) -> Dict[str, object]:
        stats = super().backend_stats()
        stats.update(
            backend="memory",
            resident_points=self.resident_points,
            index_bytes=self.index_nbytes(),
        )
        return stats


#: Historical name of the single-R-tree archive, kept as the default
#: backend so existing code (and the seed test suite) keeps working.
TrajectoryArchive = InMemoryArchive


class ShardedArchive(_ArchiveBase):
    """Spatially tiled backend: one lazily built R-tree per occupied tile.

    Points are binned into square tiles of ``tile_size`` metres by
    ``floor(coord / tile_size)``, so every observation belongs to exactly
    one tile.  A range query is routed only to the tiles its bounding box
    overlaps; per-tile hits are merged, de-duplicated and canonically
    sorted, which makes the answer bit-identical to
    :class:`InMemoryArchive` on the same trips.

    The tile *assignment* (which refs live in which tile) is built in one
    pass on first use; each tile's R-tree is materialised only when a
    query first touches it.  A fork-pool batch worker therefore holds
    indexes only for the tiles its own queries visit — the point of the
    sharding (see :meth:`prepare_for_fork`).
    """

    DEFAULT_TILE_SIZE = 1_000.0

    def __init__(self, tile_size: float = DEFAULT_TILE_SIZE) -> None:
        if tile_size <= 0.0:
            raise ValueError("tile_size must be positive")
        super().__init__()
        self._tile_size = float(tile_size)
        self._assignment: Optional[Dict[Tuple[int, int], List[ArchivePoint]]] = None
        self._shards: Dict[Tuple[int, int], RTree[ArchivePoint]] = {}

    @property
    def tile_size(self) -> float:
        return self._tile_size

    def tile_key(self, p: Point) -> Tuple[int, int]:
        """The tile containing ``p``."""
        return (
            math.floor(p.x / self._tile_size),
            math.floor(p.y / self._tile_size),
        )

    # ------------------------------------------------------------------ hooks

    def _on_add(self, trajectory: Trajectory) -> None:
        if self._assignment is None:
            return
        for i, p in enumerate(trajectory.points):
            key = self.tile_key(p.point)
            ref = ArchivePoint(trajectory.traj_id, i)
            self._assignment.setdefault(key, []).append(ref)
            shard = self._shards.get(key)
            if shard is not None:
                shard.insert_point(p.point, ref)

    def _on_remove(self, trajectory: Trajectory) -> None:
        if self._assignment is None:
            return
        for i, p in enumerate(trajectory.points):
            key = self.tile_key(p.point)
            ref = ArchivePoint(trajectory.traj_id, i)
            refs = self._assignment.get(key)
            if refs is not None:
                refs.remove(ref)
                if not refs:
                    del self._assignment[key]
            shard = self._shards.get(key)
            if shard is not None:
                shard.remove_point(p.point, ref)
                if len(shard) == 0:
                    del self._shards[key]

    # ----------------------------------------------------------- tile routing

    def _ensure_assignment(self) -> Dict[Tuple[int, int], List[ArchivePoint]]:
        if self._assignment is None:
            assignment: Dict[Tuple[int, int], List[ArchivePoint]] = {}
            for ref, p in self.iter_points():
                assignment.setdefault(self.tile_key(p.point), []).append(ref)
            self._assignment = assignment
        return self._assignment

    def _shard(self, key: Tuple[int, int]) -> RTree[ArchivePoint]:
        tree = self._shards.get(key)
        if tree is None:
            assert self._assignment is not None
            entries = [
                (BBox.from_point(self.point(ref).point), ref)
                for ref in self._assignment[key]
            ]
            tree = RTree.bulk_load(entries, max_entries=32)
            self._shards[key] = tree
        return tree

    def _tiles_overlapping(self, box: BBox) -> List[Tuple[int, int]]:
        """Occupied tiles whose square intersects ``box``."""
        assignment = self._ensure_assignment()
        ix0 = math.floor(box.min_x / self._tile_size)
        ix1 = math.floor(box.max_x / self._tile_size)
        iy0 = math.floor(box.min_y / self._tile_size)
        iy1 = math.floor(box.max_y / self._tile_size)
        span = (ix1 - ix0 + 1) * (iy1 - iy0 + 1)
        if span <= len(assignment):
            return [
                (ix, iy)
                for ix in range(ix0, ix1 + 1)
                for iy in range(iy0, iy1 + 1)
                if (ix, iy) in assignment
            ]
        return [
            key
            for key in assignment
            if ix0 <= key[0] <= ix1 and iy0 <= key[1] <= iy1
        ]

    def _search_circles(
        self, queries: Sequence[Tuple[Point, float]]
    ) -> List[List[ArchivePoint]]:
        out: List[List[ArchivePoint]] = [[] for __ in queries]
        if not queries:
            return out
        boxes = [BBox.around(center, radius) for center, radius in queries]
        per_tile: Dict[Tuple[int, int], List[int]] = {}
        for qi, box in enumerate(boxes):
            for key in self._tiles_overlapping(box):
                per_tile.setdefault(key, []).append(qi)
        for key, circle_ids in per_tile.items():
            tree = self._shard(key)
            sub = tree.search_radius_many(
                [queries[qi] for qi in circle_ids],
                position=lambda ref: self.point(ref).point,
            )
            for qi, hits in zip(circle_ids, sub):
                out[qi].extend(hits)
        # Each point lives in exactly one tile, so the merge is disjoint;
        # the set() is defensive, the sort restores the canonical order.
        return [sorted(set(h), key=_ref_key) for h in out]

    def points_in_bbox(self, region: BBox) -> List[ArchivePoint]:
        refs: List[ArchivePoint] = []
        for key in self._tiles_overlapping(region):
            refs.extend(self._shard(key).search_bbox(region))
        return sorted(set(refs), key=_ref_key)

    # -------------------------------------------------------- fork/accounting

    def prepare_for_fork(self) -> None:
        """Build the tile assignment (cheap, one pass) without any R-tree.

        Called by :meth:`~repro.core.system.HRIS.infer_routes_batch` right
        before the worker pool forks: every worker then shares the binning
        via copy-on-write and materialises per-tile indexes only for the
        tiles its own queries touch.
        """
        self._ensure_assignment()

    @property
    def resident_points(self) -> int:
        """Observations held by materialised per-tile R-trees."""
        return sum(len(tree) for tree in self._shards.values())

    @property
    def resident_tiles(self) -> int:
        """Tiles whose R-tree has been materialised."""
        return len(self._shards)

    @property
    def total_tiles(self) -> int:
        """Occupied tiles (assignment is built on demand to count them)."""
        return len(self._ensure_assignment())

    def index_nbytes(self) -> int:
        """Approximate bytes held by materialised per-tile R-trees.

        The tile assignment is excluded: it is built once pre-fork and
        shared copy-on-write across batch workers, whereas the per-tile
        trees are each worker's private resident set.
        """
        return sum(tree.approx_nbytes() for tree in self._shards.values())

    def backend_stats(self) -> Dict[str, object]:
        stats = super().backend_stats()
        stats.update(
            backend="sharded",
            tile_size=self.tile_size,
            resident_points=self.resident_points,
            resident_tiles=self.resident_tiles,
            total_tiles=self.total_tiles,
            index_bytes=self.index_nbytes(),
        )
        return stats


#: Backend registry: CLI/IO names accepted by :func:`make_archive`.
ARCHIVE_BACKENDS = ("memory", "sharded", "remote")


def make_archive(
    backend: str = "memory",
    tile_size: Optional[float] = None,
    shard_addrs: Optional[Sequence[str]] = None,
    replication: Optional[int] = None,
    pool_size: Optional[int] = None,
) -> _ArchiveBase:
    """Construct an empty archive of the requested backend.

    Args:
        backend: ``"memory"`` (single R-tree), ``"sharded"`` (tiled) or
            ``"remote"`` (tiles served by shard-server processes, see
            :mod:`repro.core.remote`).
        tile_size: Tile side in metres for the sharded backend (defaults
            to :attr:`ShardedArchive.DEFAULT_TILE_SIZE`); for the remote
            backend it is validated against the servers' handshake;
            ignored for ``"memory"``.
        shard_addrs: ``host:port`` shard-server addresses; required by
            (and only meaningful for) the remote backend.  Several
            servers claiming the same shard index form that shard's
            replica set.
        replication: Optional replicas-per-shard count to enforce on the
            remote backend's handshake (remote only).
        pool_size: Optional persistent connections kept per replica
            (remote only; default 1).  Concurrent callers — the serving
            gateway's worker pool — raise it to multiplex in-flight
            requests per replica instead of serialising on one socket.

    Raises:
        ValueError: On an unknown backend name, a remote backend without
            shard addresses, or ``replication``/``pool_size`` with a
            local backend.
    """
    if backend != "remote" and pool_size is not None:
        raise ValueError("pool_size only applies to the remote backend")
    if backend != "remote" and replication is not None:
        raise ValueError("replication only applies to the remote backend")
    if backend == "memory":
        return InMemoryArchive()
    if backend == "sharded":
        return ShardedArchive(
            tile_size if tile_size is not None else ShardedArchive.DEFAULT_TILE_SIZE
        )
    if backend == "remote":
        if not shard_addrs:
            raise ValueError(
                "the remote backend needs at least one shard address "
                "(shard_addrs=[...] / --shard-addr host:port)"
            )
        from repro.core.remote import RemoteShardedArchive

        return RemoteShardedArchive(
            shard_addrs,
            expected_tile_size=tile_size,
            replication=replication,
            pool_size=pool_size if pool_size is not None else 1,
        )
    raise ValueError(
        f"unknown archive backend {backend!r}; expected one of {ARCHIVE_BACKENDS}"
    )


def convert_archive(
    source: _ArchiveBase,
    backend: str,
    tile_size: Optional[float] = None,
    shard_addrs: Optional[Sequence[str]] = None,
    replication: Optional[int] = None,
) -> _ArchiveBase:
    """Rebuild ``source`` under another backend, *preserving trip ids*.

    Identical ids mean identical reference search output (references carry
    ``source_ids``), so a converted archive is a drop-in replacement.
    Converting to ``"remote"`` pushes every observation to the owning
    shard servers (idempotently, so pre-seeded fleets are fine); with
    replicated shards every replica receives the push.
    """
    out = make_archive(backend, tile_size, shard_addrs, replication)
    for tid in sorted(source._trajectories):
        out._restore(source._trajectories[tid])
    out._next_id = max(out._next_id, source._next_id)
    return out


# ------------------------------------------------------------------ persistence

_MANIFEST_FILE = "manifest.json"
_TRIPS_FILE = "trips.jsonl"
_TILES_FILE = "tiles.json"
_ARCHIVE_FORMAT = "repro-archive-v1"


def _stash_path(directory: Path) -> Path:
    """Where a :func:`save_archive` replacement stashes the old archive."""
    return directory.parent / (directory.name + ".prev.tmp")


def _recover_interrupted_save(directory: Path) -> None:
    """Close the one crash window of an atomic archive replacement.

    :func:`save_archive` replaces an existing archive with two renames:
    target → ``<name>.prev.tmp``, then temp → target.  A crash between
    them leaves the target missing but the previous archive intact under
    the stash name; putting it back restores the pre-save state.  Both
    the next save and :func:`load_archive` call this first.
    """
    stash = _stash_path(directory)
    if stash.is_dir() and not directory.exists():
        os.rename(stash, directory)


def save_archive(archive: _ArchiveBase, directory: Union[str, Path]) -> Path:
    """Persist an archive (trips + index metadata) to a directory.

    Layout::

        manifest.json   backend, counters, tile size
        trips.jsonl     one trajectory per line (ids preserved)
        tiles.json      tile -> [[traj_id, index], ...]   (sharded only)

    The tile file is the *persistent spatial index*: reloading a sharded
    archive restores the binning without re-scanning every observation.

    The write is **crash-safe**: every artefact is written into a
    temporary sibling directory first and the target is replaced by
    atomic renames only once the temp copy is complete, so a crash (or
    an exception) mid-save can never leave a half-written or corrupted
    archive at ``directory`` — the previous contents survive untouched.

    Returns:
        The directory path.
    """
    directory = Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    _recover_interrupted_save(directory)
    staging = directory.parent / (directory.name + ".saving.tmp")
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        trips = [archive._trajectories[tid] for tid in sorted(archive._trajectories)]
        save_trajectories(trips, staging / _TRIPS_FILE)
        manifest: Dict[str, object] = {
            "format": _ARCHIVE_FORMAT,
            "backend": "sharded" if isinstance(archive, ShardedArchive) else "memory",
            "next_id": archive._next_id,
            "n_trajectories": len(archive),
            "n_points": archive.num_points,
        }
        if isinstance(archive, ShardedArchive):
            manifest["tile_size"] = archive.tile_size
            assignment = archive._ensure_assignment()
            tiles = {
                f"{ix},{iy}": [[ref.traj_id, ref.index] for ref in refs]
                for (ix, iy), refs in sorted(assignment.items())
            }
            with open(staging / _TILES_FILE, "w", encoding="utf-8") as f:
                json.dump(tiles, f)
        with open(staging / _MANIFEST_FILE, "w", encoding="utf-8") as f:
            json.dump(manifest, f, indent=2)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    if directory.exists():
        stash = _stash_path(directory)
        if stash.exists():
            shutil.rmtree(stash)
        os.rename(directory, stash)
        os.rename(staging, directory)  # commit point for the replacement
        shutil.rmtree(stash)
    else:
        os.rename(staging, directory)
    return directory


def load_archive(
    directory: Union[str, Path],
    backend: Optional[str] = None,
    tile_size: Optional[float] = None,
) -> _ArchiveBase:
    """Reload an archive saved by :func:`save_archive`.

    Args:
        directory: The archive directory.
        backend: Override the saved backend (``None`` keeps it).
        tile_size: Override the saved tile size (``None`` keeps it).  The
            persisted tile index is reused only when the effective backend
            and tile size match the saved ones; otherwise points are
            re-binned lazily.

    Raises:
        FileNotFoundError: If the directory or an artefact is missing.
        ValueError: On a manifest format/version mismatch (raised up
            front, naming the found version, before any trip parsing) or
            corrupt tile indexes.
    """
    directory = Path(directory)
    _recover_interrupted_save(directory)
    with open(directory / _MANIFEST_FILE, "r", encoding="utf-8") as f:
        manifest = json.load(f)
    found = manifest.get("format")
    if found is None:
        raise ValueError(
            f"{directory / _MANIFEST_FILE} is not an archive manifest: "
            "it has no 'format' field"
        )
    if found != _ARCHIVE_FORMAT:
        raise ValueError(
            f"unsupported archive format {found!r}: this build reads "
            f"{_ARCHIVE_FORMAT!r} (re-save the archive with a matching "
            "version of save_archive)"
        )

    saved_backend = manifest.get("backend", "memory")
    effective_backend = backend if backend is not None else saved_backend
    saved_tile = manifest.get("tile_size")
    effective_tile = tile_size if tile_size is not None else saved_tile

    archive = make_archive(effective_backend, effective_tile)
    for traj in iter_trajectories(directory / _TRIPS_FILE):
        archive._restore(traj)
    archive._next_id = max(archive._next_id, int(manifest.get("next_id", 0)))
    if len(archive) != int(manifest.get("n_trajectories", len(archive))):
        raise ValueError("archive manifest/trip count mismatch")

    tiles_path = directory / _TILES_FILE
    if (
        isinstance(archive, ShardedArchive)
        and effective_backend == saved_backend
        and saved_tile is not None
        and archive.tile_size == float(saved_tile)
        and tiles_path.exists()
    ):
        with open(tiles_path, "r", encoding="utf-8") as f:
            raw = json.load(f)
        assignment: Dict[Tuple[int, int], List[ArchivePoint]] = {}
        total = 0
        for key, refs in raw.items():
            ix, iy = (int(v) for v in key.split(","))
            assignment[(ix, iy)] = [
                ArchivePoint(int(tid), int(idx)) for tid, idx in refs
            ]
            total += len(refs)
        if total != archive.num_points:
            raise ValueError("persisted tile index does not cover the archive")
        archive._assignment = assignment
    return archive
