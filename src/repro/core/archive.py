"""Trajectory archive: the preprocessed historical database.

The preprocessing component of Fig. 2: raw GPS logs are partitioned into
trips (stay-point removal), optionally aligned to the road network, and all
GPS points are organised in an R-tree so the reference-trajectory search can
issue the two range queries of Sec. III-A efficiently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.spatial.rtree import RTree
from repro.trajectory.model import GPSPoint, Trajectory
from repro.trajectory.staypoint import partition_trips

__all__ = ["ArchivePoint", "TrajectoryArchive"]


@dataclass(frozen=True, slots=True)
class ArchivePoint:
    """A reference into the archive: which trajectory, which observation."""

    traj_id: int
    index: int


class TrajectoryArchive:
    """An indexed collection of historical trips.

    Build with :meth:`add` / :meth:`from_trips`, or run the full
    preprocessing pipeline over raw logs with :meth:`from_raw_logs`.  The
    point R-tree is built lazily on first spatial query and invalidated on
    mutation.
    """

    def __init__(self) -> None:
        self._trajectories: Dict[int, Trajectory] = {}
        self._index: Optional[RTree[ArchivePoint]] = None
        self._next_id = 0

    # ---------------------------------------------------------------- builder

    def add(self, trajectory: Trajectory) -> int:
        """Add a trip, re-identifying it; returns the assigned id."""
        new_id = self._next_id
        self._next_id += 1
        self._trajectories[new_id] = Trajectory(new_id, trajectory.points)
        self._index = None
        return new_id

    def remove(self, traj_id: int) -> bool:
        """Remove a trip by id (e.g. retention expiry).

        Returns:
            True if the trip existed.
        """
        if traj_id not in self._trajectories:
            return False
        del self._trajectories[traj_id]
        self._index = None
        return True

    @classmethod
    def from_trips(cls, trips: Iterable[Trajectory]) -> "TrajectoryArchive":
        archive = cls()
        for t in trips:
            archive.add(t)
        return archive

    @classmethod
    def from_raw_logs(
        cls,
        logs: Iterable[Trajectory],
        stay_distance: float = 200.0,
        stay_time: float = 20.0 * 60.0,
        max_gap_s: float = 30.0 * 60.0,
        min_points: int = 2,
    ) -> "TrajectoryArchive":
        """Preprocess raw multi-trip GPS logs: trip partition then indexing.

        This is the "Trip Partition" box of the paper's Fig. 2 applied to
        every log, with each resulting trip stored as its own archive entry.
        """
        archive = cls()
        for log in logs:
            for trip in partition_trips(
                log, stay_distance, stay_time, max_gap_s, min_points
            ):
                archive.add(trip)
        return archive

    # ----------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._trajectories)

    def __contains__(self, traj_id: int) -> bool:
        return traj_id in self._trajectories

    @property
    def num_points(self) -> int:
        return sum(len(t) for t in self._trajectories.values())

    def trajectory(self, traj_id: int) -> Trajectory:
        return self._trajectories[traj_id]

    def trajectories(self) -> Iterable[Trajectory]:
        return self._trajectories.values()

    def point(self, ref: ArchivePoint) -> GPSPoint:
        return self._trajectories[ref.traj_id].points[ref.index]

    # ---------------------------------------------------------------- queries

    def _ensure_index(self) -> RTree[ArchivePoint]:
        if self._index is None:
            entries = []
            for tid, traj in self._trajectories.items():
                for i, p in enumerate(traj.points):
                    entries.append((BBox.from_point(p.point), ArchivePoint(tid, i)))
            self._index = RTree.bulk_load(entries, max_entries=32)
        return self._index

    def points_near(self, q: Point, radius: float) -> List[ArchivePoint]:
        """All archive observations within ``radius`` of ``q``."""
        index = self._ensure_index()
        return index.search_radius(q, radius, position=lambda ref: self.point(ref).point)

    def trajectories_near(self, q: Point, radius: float) -> Dict[int, List[int]]:
        """Trajectory ids with at least one observation within ``radius``,
        mapped to the indices of those observations (sorted)."""
        hits: Dict[int, List[int]] = {}
        for ref in self.points_near(q, radius):
            hits.setdefault(ref.traj_id, []).append(ref.index)
        for indices in hits.values():
            indices.sort()
        return hits

    def trajectories_near_pair(
        self, qi: Point, qi1: Point, radius: float
    ) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
        """:meth:`trajectories_near` around both points of a query pair.

        The reference search needs the φ-neighbourhoods of ``q_i`` and
        ``q_{i+1}`` together; this issues both range queries in a single
        R-tree walk (:meth:`~repro.spatial.rtree.RTree.search_radius_many`)
        instead of two independent traversals that re-descend the shared
        upper levels.

        Returns:
            ``(near_i, near_j)`` — trajectory id to sorted observation
            indices, one map per query point.
        """
        index = self._ensure_index()
        hits_i, hits_j = index.search_radius_many(
            [(qi, radius), (qi1, radius)],
            position=lambda ref: self.point(ref).point,
        )
        out: Tuple[Dict[int, List[int]], Dict[int, List[int]]] = ({}, {})
        for side, refs in zip(out, (hits_i, hits_j)):
            for ref in refs:
                side.setdefault(ref.traj_id, []).append(ref.index)
            for indices in side.values():
                indices.sort()
        return out

    def density_per_km2(self, region: BBox) -> float:
        """Archive observations per km² inside ``region``."""
        if region.area == 0.0:
            return 0.0
        index = self._ensure_index()
        count = len(index.search_bbox(region))
        return count / (region.area / 1_000_000.0)
