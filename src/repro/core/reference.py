"""Reference-trajectory search (Sec. III-A, Definitions 6 and 7).

Given a consecutive query-point pair ``<q_i, q_{i+1}>``, find the historical
trajectories that hint at how objects travel between the two locations:

* **simple references** (Definition 6) — trajectories with a point within φ
  of both query points, travelling in the right direction, every in-between
  point satisfying the speed-ellipse condition
  ``d(p, q_i) + d(p, q_{i+1}) <= Δt · V_max``;
* **spliced references** (Definition 7) — virtual trajectories formed by
  joining the tail of a trajectory leaving ``q_i`` with the head of another
  arriving at ``q_{i+1}``, when the two come within ε of each other.

The search itself is a pure kernel (:func:`assemble_references`) over a
:class:`TripSource` — a narrow read interface asking only for the near-φ
candidate maps, per-candidate anchor observations, and index spans of
trajectory points.  Two sources implement it:

* :class:`ArchiveTripSource` answers from any in-process
  :class:`~repro.core.archive.ArchiveBackend` trip store — the monolithic
  path, and the float-level ground truth for every identity gate;
* ``repro.core.remote.RemoteTripSource`` answers over the
  ``repro-remote-v4`` wire: shards assemble candidate summaries and spans
  from the tiles they own, and the client stitches spans that cross tile
  ownership back into canonical index order.

Because both sources return byte-identical anchors and spans in the same
canonical order, the kernel produces bit-identical references (same
ref_ids, same floats, same splice selections) no matter where the trips
physically live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.archive import ArchiveBackend
from repro.geo.point import Point
from repro.roadnet.network import RoadNetwork
from repro.spatial.grid import GridIndex
from repro.trajectory.model import GPSPoint

__all__ = [
    "ArchiveTripSource",
    "Reference",
    "ReferencePoint",
    "ReferenceSearch",
    "ReferenceSearchConfig",
    "TripAnchor",
    "TripSource",
    "assemble_references",
    "closest_references",
    "movement_direction",
    "reference_traversed_segments",
    "simple_subtrajectory",
    "time_of_day_difference_s",
    "within_speed_ellipse",
]

#: Seconds per day, for time-of-day arithmetic.
SECONDS_PER_DAY = 86_400.0


def time_of_day_difference_s(t_a: float, t_b: float) -> float:
    """Circular time-of-day distance between two timestamps, in seconds.

    ``23:50`` and ``00:10`` are 20 minutes apart, not 23 h 40 min.
    """
    a = t_a % SECONDS_PER_DAY
    b = t_b % SECONDS_PER_DAY
    d = abs(a - b)
    return min(d, SECONDS_PER_DAY - d)


@dataclass(frozen=True, slots=True)
class ReferencePoint:
    """One observation of a reference, tagged with its owner.

    Attributes:
        point: Planar coordinate.
        ref_id: Id of the reference (unique within one search call).
        seq: Position of this point within the reference.
    """

    point: Point
    ref_id: int
    seq: int


@dataclass(frozen=True, slots=True)
class Reference:
    """A reference trajectory for one query pair.

    Attributes:
        ref_id: Id unique within the search call (the unit the popularity
            function counts).
        source_ids: Archive trajectory id(s) backing this reference — one
            for a simple reference, two for a spliced one.  The ids are
            global archive ids regardless of where the points were
            assembled: a shard-assembled reference whose span was stitched
            from several tile owners still carries the single id of the
            backing trajectory.
        points: The ordered observations from the ``q_i`` side to the
            ``q_{i+1}`` side (the sub-trajectory ``T_i^k``).
        spliced: True for Definition 7 references.
    """

    ref_id: int
    source_ids: Tuple[int, ...]
    points: Tuple[Point, ...]
    spliced: bool

    def __len__(self) -> int:
        return len(self.points)


def movement_direction(points: Sequence[Point], index: int) -> Point:
    """Local direction of travel at ``points[index]`` (central difference).

    Returns the (unnormalised) vector from the previous to the next point —
    a zero vector for a single-point sequence or coincident neighbors.
    """
    prev_p = points[max(index - 1, 0)]
    next_p = points[min(index + 1, len(points) - 1)]
    return next_p - prev_p


def reference_traversed_segments(
    network: RoadNetwork,
    reference: "Reference",
    candidate_radius: float,
    candidate_lookup: Optional[Callable[[Point, float], Sequence]] = None,
) -> Set[int]:
    """Segments a reference plausibly travels on.

    The paper's preprocessing map-matches archive points onto segments, so
    a reference supports the *directed* segment it is moving along — not
    the opposite carriageway.  We approximate that matching by taking each
    point's candidate edges (Definition 5) and keeping only those whose
    direction agrees with the local movement direction (positive dot
    product); points with no discernible movement keep all candidates.

    Args:
        candidate_lookup: Optional replacement for
            ``network.candidate_edges`` returning the identical result —
            e.g. the routing engine's memoised lookup.
    """
    lookup = candidate_lookup if candidate_lookup is not None else network.candidate_edges
    traversed: Set[int] = set()
    pts = reference.points
    for i, p in enumerate(pts):
        direction = movement_direction(pts, i)
        moving = direction.norm() > 0.0
        for cand in lookup(p, candidate_radius):
            seg = cand.segment
            if moving:
                seg_dir = seg.polyline[-1] - seg.polyline[0]
                if direction.dot(seg_dir) < 0.0:
                    continue
            traversed.add(seg.segment_id)
    return traversed


@dataclass(frozen=True, slots=True)
class ReferenceSearchConfig:
    """Parameters of the reference search.

    Attributes:
        phi: Search radius φ around each query point (Table II: 500 m).
        splice_epsilon: Max gap ε between the two halves of a splice.
        enable_splicing: Whether to search for spliced references at all.
        splice_when_fewer_than: Spliced references are only searched when
            fewer than this many simple references were found.  The paper
            introduces splicing for "an area with sparse historical data"
            where simple references are too few to support the inference;
            in dense areas splices join unrelated trajectories and only add
            noise (quantified in benchmarks/test_ablations.py).
        max_references: Cap on returned references (closest kept) so a dense
            downtown pair cannot flood the local inference.
        time_of_day_window_s: When set, only trajectories whose anchor
            observation (the point nearest q_i) occurred within this
            time-of-day window of the query qualify as references — the
            "incorporate the time" extension of the paper's future work
            (commute-hour patterns differ from midnight patterns).  None
            (the default, and the paper's behaviour) disables the filter.
        splice_network_gap: Score splice joints by *network* distance, not
            just the euclidean ε test — two observations ε apart across a
            river with no bridge are not actually joinable.  Requires a
            routing engine on the search; its batched transition oracle
            answers every joint's distance from one frontier sweep per
            tail-side node.  Off by default (the paper, and the identity
            gates, use the pure euclidean Definition 7).
        splice_gap_detour: Max network/euclidean detour ratio a splice
            joint may have when ``splice_network_gap`` is on.
    """

    phi: float = 500.0
    splice_epsilon: float = 300.0
    enable_splicing: bool = True
    splice_when_fewer_than: int = 5
    max_references: int = 60
    time_of_day_window_s: Optional[float] = None
    splice_network_gap: bool = False
    splice_gap_detour: float = 3.0


@dataclass(frozen=True, slots=True)
class TripAnchor:
    """A trajectory's nearest observation to one query point.

    Attributes:
        index: Position of the observation within the trajectory
            (``Trajectory.nearest_index`` semantics: lowest index among
            ties on squared distance).
        point: The observation's planar coordinate.
        t: The observation's timestamp (seconds).
    """

    index: int
    point: Point
    t: float


class TripSource:
    """Read interface the reference kernel assembles candidates from.

    A source is stateful per query pair: :meth:`near_pair` begins a pair
    session, and every later call refers to that pair's query points.  The
    contract every implementation must honour for bit-identity:

    * ``near_pair`` returns the canonical near-maps of
      ``ArchiveBackend.trajectories_near_pair`` (ascending trajectory id,
      ascending point indices);
    * ``anchor_i``/``anchor_j`` return exactly the observation
      ``Trajectory.nearest_index`` would pick — the lowest index among
      squared-distance ties — with its original coordinates so the kernel
      recomputes distances with the same floats everywhere;
    * ``span(tid, lo, hi)`` returns the trajectory's points for the
      inclusive index range in index order, regardless of how many
      physical owners the range is scattered across.

    ``announce`` and ``prefetch_spans`` are batching hints so a networked
    source can fetch metadata and spans in bulk rounds; in-process sources
    ignore them.
    """

    def near_pair(
        self, qi: Point, qi1: Point, radius: float
    ) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
        raise NotImplementedError

    def announce(self, tids: Iterable[int]) -> None:
        """Hint: anchors/metadata for these trajectories will be needed."""

    def anchor_i(self, tid: int) -> TripAnchor:
        raise NotImplementedError

    def anchor_j(self, tid: int) -> TripAnchor:
        raise NotImplementedError

    def last_index(self, tid: int) -> int:
        raise NotImplementedError

    def prefetch_spans(self, spans: Sequence[Tuple[int, int, int]]) -> None:
        """Hint: these ``(tid, lo, hi)`` spans will be requested next."""

    def span(self, tid: int, lo: int, hi: int) -> Tuple[Point, ...]:
        raise NotImplementedError


class ArchiveTripSource(TripSource):
    """The in-process :class:`TripSource`: reads an ``ArchiveBackend``.

    This is the monolithic path — trips live in the client's archive trip
    store — and the reference implementation the distributed source is
    gated bit-identical against.
    """

    def __init__(self, archive: ArchiveBackend) -> None:
        self._archive = archive
        self._qi: Optional[Point] = None
        self._qi1: Optional[Point] = None
        self._anchors_i: Dict[int, TripAnchor] = {}
        self._anchors_j: Dict[int, TripAnchor] = {}

    def near_pair(self, qi: Point, qi1: Point, radius: float):
        self._qi = qi
        self._qi1 = qi1
        self._anchors_i.clear()
        self._anchors_j.clear()
        return self._archive.trajectories_near_pair(qi, qi1, radius)

    def _anchor(self, tid: int, query: Point) -> TripAnchor:
        traj = self._archive.trajectory(tid)
        idx = traj.nearest_index(query)
        obs = traj.points[idx]
        return TripAnchor(index=idx, point=obs.point, t=obs.t)

    def anchor_i(self, tid: int) -> TripAnchor:
        anchor = self._anchors_i.get(tid)
        if anchor is None:
            anchor = self._anchors_i[tid] = self._anchor(tid, self._qi)
        return anchor

    def anchor_j(self, tid: int) -> TripAnchor:
        anchor = self._anchors_j.get(tid)
        if anchor is None:
            anchor = self._anchors_j[tid] = self._anchor(tid, self._qi1)
        return anchor

    def last_index(self, tid: int) -> int:
        return len(self._archive.trajectory(tid).points) - 1

    def span(self, tid: int, lo: int, hi: int) -> Tuple[Point, ...]:
        traj = self._archive.trajectory(tid)
        return tuple(p.point for p in traj.points[lo : hi + 1])


# ------------------------------------------------------------------ kernel


def within_speed_ellipse(
    points: Sequence[Point], qi: Point, qi1: Point, budget: float
) -> bool:
    """Definition 6 condition 3: every point inside the speed ellipse."""
    return all(p.distance_to(qi) + p.distance_to(qi1) <= budget for p in points)


def _in_time_window(
    source: TripSource, tid: int, qi: GPSPoint, window: Optional[float]
) -> bool:
    """Time-of-day filter (see ``time_of_day_window_s``)."""
    if window is None:
        return True
    anchor = source.anchor_i(tid)
    return time_of_day_difference_s(anchor.t, qi.t) <= window


def _screen_simple(
    source: TripSource, tid: int, qi: Point, qi1: Point, phi: float
) -> Optional[Tuple[int, int]]:
    """Definition 6 anchor conditions (everything except the ellipse).

    Returns the anchor index pair ``(m, n)`` when the candidate's anchors
    are inside both φ circles and ordered q_i-to-q_{i+1}, None otherwise.
    Needs no trajectory spans, so a networked source answers it from
    candidate summaries alone.
    """
    anchor_i = source.anchor_i(tid)
    # Condition 2: both anchors inside the φ circles.
    if anchor_i.point.distance_to(qi) > phi:
        return None
    anchor_j = source.anchor_j(tid)
    if anchor_j.point.distance_to(qi1) > phi:
        return None
    # Direction: the reference must travel from q_i towards q_{i+1}.
    if anchor_i.index > anchor_j.index:
        return None
    return anchor_i.index, anchor_j.index


def simple_subtrajectory(
    source: TripSource, tid: int, qi: Point, qi1: Point, phi: float, budget: float
) -> Optional[Tuple[Point, ...]]:
    """Definition 6 check for one candidate trajectory.

    Returns the sub-trajectory point tuple when the trajectory qualifies,
    None otherwise.  Pure over the :class:`TripSource` — identical on a
    client archive and on a shard.
    """
    anchors = _screen_simple(source, tid, qi, qi1, phi)
    if anchors is None:
        return None
    m, n = anchors
    points = source.span(tid, m, n)
    # Condition 3: the speed ellipse.
    if not within_speed_ellipse(points, qi, qi1, budget):
        return None
    return points


def closest_references(
    references: List[Reference], qi: Point, qi1: Point, max_references: int
) -> List[Reference]:
    """Keep the references hugging the query pair tightest, re-idded."""

    def tightness(ref: Reference) -> float:
        return ref.points[0].distance_to(qi) + ref.points[-1].distance_to(qi1)

    kept = sorted(references, key=tightness)[:max_references]
    return [
        Reference(
            ref_id=i,
            source_ids=r.source_ids,
            points=r.points,
            spliced=r.spliced,
        )
        for i, r in enumerate(kept)
    ]


def _network_reachable_pairs(
    best_pair: Dict[Tuple[int, int], Tuple[float, int, int]],
    tails: Dict[int, Tuple[int, Tuple[Point, ...]]],
    heads: Dict[int, Tuple[int, Tuple[Point, ...]]],
    network: RoadNetwork,
    engine,
    cfg: ReferenceSearchConfig,
) -> Dict[Tuple[int, int], Tuple[float, int, int]]:
    """Drop splice joints that are close in the plane but far on the road.

    Each joint's two observations are projected onto their nearest
    segments; the joint survives when the network distance between the
    projections stays within ``splice_gap_detour`` times ε.  All joints
    of the pair are announced to the engine's transition oracle first,
    so a table oracle serves them from one sweep per tail-side node.
    """
    bound = cfg.splice_epsilon * cfg.splice_gap_detour
    oracle = engine.transition_oracle(bound)
    projections: Dict[Tuple[float, float], object] = {}

    def project(p: Point):
        key = (p.x, p.y)
        cand = projections.get(key)
        if cand is None:
            near = network.nearest_segments(p, 1)
            cand = near[0] if near else None
            projections[key] = cand
        return cand

    joints = []
    for key, (cost, a_idx, b_idx) in best_pair.items():
        a_tid, b_tid = key
        a_m, a_span = tails[a_tid]
        pa = a_span[a_idx - a_m]
        pb = heads[b_tid][1][b_idx]
        ca, cb = project(pa), project(pb)
        if ca is None or cb is None:
            continue
        joints.append((key, (cost, a_idx, b_idx), ca, cb))
    oracle.prepare(
        (ca.segment.end for __, __, ca, __ in joints),
        (cb.segment.start for __, __, __, cb in joints),
    )

    kept: Dict[Tuple[int, int], Tuple[float, int, int]] = {}
    for key, value, ca, cb in joints:
        gap = oracle.route_distance_between_projections(
            ca.segment.segment_id,
            ca.projection.offset,
            cb.segment.segment_id,
            cb.projection.offset,
        )
        if gap <= bound:
            kept[key] = value
    return kept


def _spliced_references(
    source: TripSource,
    network: RoadNetwork,
    qi: GPSPoint,
    qi1: GPSPoint,
    near_i: Dict[int, List[int]],
    near_j: Dict[int, List[int]],
    simple_ids: Set[int],
    budget: float,
    next_ref_id: int,
    cfg: ReferenceSearchConfig,
    engine,
) -> List[Reference]:
    """Definition 7: join tails leaving q_i with heads reaching q_{i+1}."""
    # Candidate halves: trajectories near exactly one endpoint, minus
    # the ones already accepted as simple references.
    source.announce([t for t in near_i if t not in simple_ids])
    tail_ids = [
        t
        for t in near_i
        if t not in simple_ids
        and _in_time_window(source, t, qi, cfg.time_of_day_window_s)
    ]
    head_ids = [t for t in near_j if t not in simple_ids]
    if not tail_ids or not head_ids:
        return []
    source.announce(head_ids)

    # Tail of T_a: observations from nn(q_i, T_a) onwards.
    tail_anchors: List[Tuple[int, int]] = []
    for tid in tail_ids:
        anchor = source.anchor_i(tid)
        if anchor.point.distance_to(qi.point) > cfg.phi:
            continue
        tail_anchors.append((tid, anchor.index))
    # Head of T_b: observations up to nn(q_{i+1}, T_b).
    head_anchors: List[Tuple[int, int]] = []
    for tid in head_ids:
        anchor = source.anchor_j(tid)
        if anchor.point.distance_to(qi1.point) > cfg.phi:
            continue
        head_anchors.append((tid, anchor.index))
    if not tail_anchors or not head_anchors:
        return []

    source.prefetch_spans(
        [(tid, m, source.last_index(tid)) for tid, m in tail_anchors]
        + [(tid, 0, n) for tid, n in head_anchors]
    )
    # Each value is the anchor index plus the span of *absolute* indices
    # [m, last] (tails) or [0, n] (heads).
    tails: Dict[int, Tuple[int, Tuple[Point, ...]]] = {
        tid: (m, source.span(tid, m, source.last_index(tid)))
        for tid, m in tail_anchors
    }
    heads: Dict[int, Tuple[int, Tuple[Point, ...]]] = {
        tid: (n, source.span(tid, 0, n)) for tid, n in head_anchors
    }

    # On-line spatial join: index all head observations in a grid, probe
    # with every tail observation, keep the best splice pair per
    # trajectory pair (minimum d(p_a, q_i) + d(p_b, q_{i+1}), as the
    # paper specifies).
    head_grid: GridIndex[Tuple[int, int]] = GridIndex(max(cfg.splice_epsilon, 1.0))
    for tid, (n, span) in heads.items():
        for idx in range(0, n + 1):
            head_grid.insert(span[idx], (tid, idx))

    best_pair: Dict[Tuple[int, int], Tuple[float, int, int]] = {}
    for a_tid, (m, span) in tails.items():
        for a_idx in range(m, m + len(span)):
            pa = span[a_idx - m]
            for b_tid, b_idx in head_grid.search_radius(pa, cfg.splice_epsilon):
                if b_tid == a_tid:
                    continue
                pb = heads[b_tid][1][b_idx]
                cost = pa.distance_to(qi.point) + pb.distance_to(qi1.point)
                key = (a_tid, b_tid)
                if key not in best_pair or cost < best_pair[key][0]:
                    best_pair[key] = (cost, a_idx, b_idx)

    if cfg.splice_network_gap and engine is not None:
        best_pair = _network_reachable_pairs(
            best_pair, tails, heads, network, engine, cfg
        )

    out: List[Reference] = []
    for (a_tid, b_tid), (__, a_idx, b_idx) in best_pair.items():
        m, a_span = tails[a_tid]
        n, b_span = heads[b_tid]
        points = tuple(list(a_span[: a_idx - m + 1]) + list(b_span[b_idx : n + 1]))
        if len(points) < 2:
            continue
        # Condition 1 of Definition 7: the splice must satisfy the
        # simple-reference conditions, notably the speed ellipse.
        if not within_speed_ellipse(points, qi.point, qi1.point, budget):
            continue
        out.append(
            Reference(
                ref_id=next_ref_id + len(out),
                source_ids=(a_tid, b_tid),
                points=points,
                spliced=True,
            )
        )
    return out


def assemble_references(
    source: TripSource,
    network: RoadNetwork,
    qi: GPSPoint,
    qi1: GPSPoint,
    cfg: ReferenceSearchConfig,
    engine=None,
) -> List[Reference]:
    """All references w.r.t. ``<q_i, q_{i+1}>``, simple ones first.

    The shared kernel behind both reference modes: every decision is made
    from :class:`TripSource` answers, so two sources honouring the
    canonical-ordering contract yield bit-identical reference lists.

    Raises:
        ValueError: If the pair is not in temporal order.
    """
    if qi1.t <= qi.t:
        raise ValueError("query points must be in temporal order")
    budget = (qi1.t - qi.t) * network.max_speed

    near_i, near_j = source.near_pair(qi.point, qi1.point, cfg.phi)

    shared = list(near_i.keys() & near_j.keys())
    source.announce(shared)
    screened: List[Tuple[int, int, int]] = []
    for tid in shared:
        if not _in_time_window(source, tid, qi, cfg.time_of_day_window_s):
            continue
        anchors = _screen_simple(source, tid, qi.point, qi1.point, cfg.phi)
        if anchors is not None:
            screened.append((tid, anchors[0], anchors[1]))
    source.prefetch_spans([(tid, m, n) for tid, m, n in screened])

    references: List[Reference] = []
    simple_ids: Set[int] = set()
    for tid, m, n in screened:
        points = source.span(tid, m, n)
        if not within_speed_ellipse(points, qi.point, qi1.point, budget):
            continue
        references.append(
            Reference(
                ref_id=len(references),
                source_ids=(tid,),
                points=points,
                spliced=False,
            )
        )
        simple_ids.add(tid)

    if cfg.enable_splicing and len(references) < cfg.splice_when_fewer_than:
        references.extend(
            _spliced_references(
                source,
                network,
                qi,
                qi1,
                near_i,
                near_j,
                simple_ids,
                budget,
                len(references),
                cfg,
                engine,
            )
        )

    if len(references) > cfg.max_references:
        references = closest_references(
            references, qi.point, qi1.point, cfg.max_references
        )
    return references


class ReferenceSearch:
    """Searches an archive for the references of a query-point pair.

    A thin coordinator around :func:`assemble_references`: it owns the
    :class:`TripSource` (defaulting to the in-process
    :class:`ArchiveTripSource` over ``archive``) and the search
    configuration.  Pass ``source`` to run the identical kernel against a
    different trip store — e.g. ``RemoteTripSource`` for shard-side
    assembly.

    Args:
        engine: Optional :class:`~repro.roadnet.engine.RoutingEngine`.
            Only consulted when ``config.splice_network_gap`` is on, where
            its many-to-many transition oracle scores all splice joints of
            a pair in batched sweeps instead of per-joint routing calls.
        source: Optional :class:`TripSource` overriding the default
            archive-backed one.
    """

    def __init__(
        self,
        archive: ArchiveBackend,
        network: RoadNetwork,
        config: ReferenceSearchConfig = ReferenceSearchConfig(),
        engine=None,
        source: Optional[TripSource] = None,
    ) -> None:
        self._archive = archive
        self._network = network
        self._config = config
        self._engine = engine
        self._source = source if source is not None else ArchiveTripSource(archive)

    @property
    def source(self) -> TripSource:
        return self._source

    def search(self, qi: GPSPoint, qi1: GPSPoint) -> List[Reference]:
        """All references w.r.t. ``<q_i, q_{i+1}>``, simple ones first.

        Raises:
            ValueError: If the pair is not in temporal order.
        """
        return assemble_references(
            self._source, self._network, qi, qi1, self._config, engine=self._engine
        )

    def reference_points(self, references: Sequence[Reference]) -> List[ReferencePoint]:
        """Flatten references into the tagged point pool ``P_i``."""
        pool: List[ReferencePoint] = []
        for ref in references:
            for seq, p in enumerate(ref.points):
                pool.append(ReferencePoint(p, ref.ref_id, seq))
        return pool
