"""Reference-trajectory search (Sec. III-A, Definitions 6 and 7).

Given a consecutive query-point pair ``<q_i, q_{i+1}>``, find the historical
trajectories that hint at how objects travel between the two locations:

* **simple references** (Definition 6) — trajectories with a point within φ
  of both query points, travelling in the right direction, every in-between
  point satisfying the speed-ellipse condition
  ``d(p, q_i) + d(p, q_{i+1}) <= Δt · V_max``;
* **spliced references** (Definition 7) — virtual trajectories formed by
  joining the tail of a trajectory leaving ``q_i`` with the head of another
  arriving at ``q_{i+1}``, when the two come within ε of each other.

The search uses the archive R-tree exactly as the paper describes: two
range queries, a join on trajectory ids for simple references, and an
on-line spatial join between the two leftover candidate sets for splices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.archive import ArchiveBackend
from repro.geo.point import Point
from repro.roadnet.network import RoadNetwork
from repro.spatial.grid import GridIndex
from repro.trajectory.model import GPSPoint, Trajectory

__all__ = [
    "Reference",
    "ReferencePoint",
    "ReferenceSearch",
    "ReferenceSearchConfig",
    "movement_direction",
    "reference_traversed_segments",
    "time_of_day_difference_s",
]

#: Seconds per day, for time-of-day arithmetic.
SECONDS_PER_DAY = 86_400.0


def time_of_day_difference_s(t_a: float, t_b: float) -> float:
    """Circular time-of-day distance between two timestamps, in seconds.

    ``23:50`` and ``00:10`` are 20 minutes apart, not 23 h 40 min.
    """
    a = t_a % SECONDS_PER_DAY
    b = t_b % SECONDS_PER_DAY
    d = abs(a - b)
    return min(d, SECONDS_PER_DAY - d)


@dataclass(frozen=True, slots=True)
class ReferencePoint:
    """One observation of a reference, tagged with its owner.

    Attributes:
        point: Planar coordinate.
        ref_id: Id of the reference (unique within one search call).
        seq: Position of this point within the reference.
    """

    point: Point
    ref_id: int
    seq: int


@dataclass(frozen=True, slots=True)
class Reference:
    """A reference trajectory for one query pair.

    Attributes:
        ref_id: Id unique within the search call (the unit the popularity
            function counts).
        source_ids: Archive trajectory id(s) backing this reference — one
            for a simple reference, two for a spliced one.
        points: The ordered observations from the ``q_i`` side to the
            ``q_{i+1}`` side (the sub-trajectory ``T_i^k``).
        spliced: True for Definition 7 references.
    """

    ref_id: int
    source_ids: Tuple[int, ...]
    points: Tuple[Point, ...]
    spliced: bool

    def __len__(self) -> int:
        return len(self.points)


def movement_direction(points: Sequence[Point], index: int) -> Point:
    """Local direction of travel at ``points[index]`` (central difference).

    Returns the (unnormalised) vector from the previous to the next point —
    a zero vector for a single-point sequence or coincident neighbors.
    """
    prev_p = points[max(index - 1, 0)]
    next_p = points[min(index + 1, len(points) - 1)]
    return next_p - prev_p


def reference_traversed_segments(
    network: RoadNetwork,
    reference: "Reference",
    candidate_radius: float,
    candidate_lookup: Optional[Callable[[Point, float], Sequence]] = None,
) -> Set[int]:
    """Segments a reference plausibly travels on.

    The paper's preprocessing map-matches archive points onto segments, so
    a reference supports the *directed* segment it is moving along — not
    the opposite carriageway.  We approximate that matching by taking each
    point's candidate edges (Definition 5) and keeping only those whose
    direction agrees with the local movement direction (positive dot
    product); points with no discernible movement keep all candidates.

    Args:
        candidate_lookup: Optional replacement for
            ``network.candidate_edges`` returning the identical result —
            e.g. the routing engine's memoised lookup.
    """
    lookup = candidate_lookup if candidate_lookup is not None else network.candidate_edges
    traversed: Set[int] = set()
    pts = reference.points
    for i, p in enumerate(pts):
        direction = movement_direction(pts, i)
        moving = direction.norm() > 0.0
        for cand in lookup(p, candidate_radius):
            seg = cand.segment
            if moving:
                seg_dir = seg.polyline[-1] - seg.polyline[0]
                if direction.dot(seg_dir) < 0.0:
                    continue
            traversed.add(seg.segment_id)
    return traversed


@dataclass(frozen=True, slots=True)
class ReferenceSearchConfig:
    """Parameters of the reference search.

    Attributes:
        phi: Search radius φ around each query point (Table II: 500 m).
        splice_epsilon: Max gap ε between the two halves of a splice.
        enable_splicing: Whether to search for spliced references at all.
        splice_when_fewer_than: Spliced references are only searched when
            fewer than this many simple references were found.  The paper
            introduces splicing for "an area with sparse historical data"
            where simple references are too few to support the inference;
            in dense areas splices join unrelated trajectories and only add
            noise (quantified in benchmarks/test_ablations.py).
        max_references: Cap on returned references (closest kept) so a dense
            downtown pair cannot flood the local inference.
        time_of_day_window_s: When set, only trajectories whose anchor
            observation (the point nearest q_i) occurred within this
            time-of-day window of the query qualify as references — the
            "incorporate the time" extension of the paper's future work
            (commute-hour patterns differ from midnight patterns).  None
            (the default, and the paper's behaviour) disables the filter.
        splice_network_gap: Score splice joints by *network* distance, not
            just the euclidean ε test — two observations ε apart across a
            river with no bridge are not actually joinable.  Requires a
            routing engine on the search; its batched transition oracle
            answers every joint's distance from one frontier sweep per
            tail-side node.  Off by default (the paper, and the identity
            gates, use the pure euclidean Definition 7).
        splice_gap_detour: Max network/euclidean detour ratio a splice
            joint may have when ``splice_network_gap`` is on.
    """

    phi: float = 500.0
    splice_epsilon: float = 300.0
    enable_splicing: bool = True
    splice_when_fewer_than: int = 5
    max_references: int = 60
    time_of_day_window_s: Optional[float] = None
    splice_network_gap: bool = False
    splice_gap_detour: float = 3.0


class ReferenceSearch:
    """Searches an archive for the references of a query-point pair.

    Args:
        engine: Optional :class:`~repro.roadnet.engine.RoutingEngine`.
            Only consulted when ``config.splice_network_gap`` is on, where
            its many-to-many transition oracle scores all splice joints of
            a pair in batched sweeps instead of per-joint routing calls.
    """

    def __init__(
        self,
        archive: ArchiveBackend,
        network: RoadNetwork,
        config: ReferenceSearchConfig = ReferenceSearchConfig(),
        engine=None,
    ) -> None:
        self._archive = archive
        self._network = network
        self._config = config
        self._engine = engine

    def search(self, qi: GPSPoint, qi1: GPSPoint) -> List[Reference]:
        """All references w.r.t. ``<q_i, q_{i+1}>``, simple ones first.

        Raises:
            ValueError: If the pair is not in temporal order.
        """
        if qi1.t <= qi.t:
            raise ValueError("query points must be in temporal order")
        cfg = self._config
        budget = (qi1.t - qi.t) * self._network.max_speed

        near_i, near_j = self._archive.trajectories_near_pair(
            qi.point, qi1.point, cfg.phi
        )

        references: List[Reference] = []
        simple_ids: Set[int] = set()
        for tid in near_i.keys() & near_j.keys():
            if not self._in_time_window(tid, qi):
                continue
            sub = self._simple_subtrajectory(tid, qi.point, qi1.point, budget)
            if sub is not None:
                references.append(
                    Reference(
                        ref_id=len(references),
                        source_ids=(tid,),
                        points=sub,
                        spliced=False,
                    )
                )
                simple_ids.add(tid)

        if cfg.enable_splicing and len(references) < cfg.splice_when_fewer_than:
            references.extend(
                self._spliced_references(
                    qi, qi1, near_i, near_j, simple_ids, budget, len(references)
                )
            )

        if len(references) > cfg.max_references:
            references = self._closest_references(references, qi.point, qi1.point)
        return references

    def reference_points(self, references: Sequence[Reference]) -> List[ReferencePoint]:
        """Flatten references into the tagged point pool ``P_i``."""
        pool: List[ReferencePoint] = []
        for ref in references:
            for seq, p in enumerate(ref.points):
                pool.append(ReferencePoint(p, ref.ref_id, seq))
        return pool

    # -------------------------------------------------------------- internals

    def _in_time_window(self, tid: int, qi: GPSPoint) -> bool:
        """Time-of-day filter (see ``time_of_day_window_s``)."""
        window = self._config.time_of_day_window_s
        if window is None:
            return True
        traj = self._archive.trajectory(tid)
        anchor = traj.points[traj.nearest_index(qi.point)]
        return time_of_day_difference_s(anchor.t, qi.t) <= window

    def _closest_references(
        self, references: List[Reference], qi: Point, qi1: Point
    ) -> List[Reference]:
        """Keep the references hugging the query pair tightest, re-idded."""

        def tightness(ref: Reference) -> float:
            return ref.points[0].distance_to(qi) + ref.points[-1].distance_to(qi1)

        kept = sorted(references, key=tightness)[: self._config.max_references]
        return [
            Reference(
                ref_id=i,
                source_ids=r.source_ids,
                points=r.points,
                spliced=r.spliced,
            )
            for i, r in enumerate(kept)
        ]

    def _simple_subtrajectory(
        self, tid: int, qi: Point, qi1: Point, budget: float
    ) -> Optional[Tuple[Point, ...]]:
        """Definition 6 check for one candidate trajectory.

        Returns the sub-trajectory point tuple when the trajectory
        qualifies, None otherwise.
        """
        traj = self._archive.trajectory(tid)
        m = traj.nearest_index(qi)
        n = traj.nearest_index(qi1)
        # Condition 2: both anchors inside the φ circles.
        if traj.points[m].point.distance_to(qi) > self._config.phi:
            return None
        if traj.points[n].point.distance_to(qi1) > self._config.phi:
            return None
        # Direction: the reference must travel from q_i towards q_{i+1}.
        if m > n:
            return None
        points = tuple(p.point for p in traj.points[m : n + 1])
        # Condition 3: the speed ellipse.
        if not self._within_ellipse(points, qi, qi1, budget):
            return None
        return points

    @staticmethod
    def _within_ellipse(
        points: Sequence[Point], qi: Point, qi1: Point, budget: float
    ) -> bool:
        return all(p.distance_to(qi) + p.distance_to(qi1) <= budget for p in points)

    def _network_reachable_pairs(
        self,
        best_pair: Dict[Tuple[int, int], Tuple[float, int, int]],
        tails: Dict[int, Tuple[int, Trajectory]],
        heads: Dict[int, Tuple[int, Trajectory]],
    ) -> Dict[Tuple[int, int], Tuple[float, int, int]]:
        """Drop splice joints that are close in the plane but far on the road.

        Each joint's two observations are projected onto their nearest
        segments; the joint survives when the network distance between the
        projections stays within ``splice_gap_detour`` times ε.  All joints
        of the pair are announced to the engine's transition oracle first,
        so a table oracle serves them from one sweep per tail-side node.
        """
        cfg = self._config
        bound = cfg.splice_epsilon * cfg.splice_gap_detour
        oracle = self._engine.transition_oracle(bound)
        projections: Dict[Tuple[float, float], object] = {}

        def project(p: Point):
            key = (p.x, p.y)
            cand = projections.get(key)
            if cand is None:
                near = self._network.nearest_segments(p, 1)
                cand = near[0] if near else None
                projections[key] = cand
            return cand

        joints = []
        for key, (cost, a_idx, b_idx) in best_pair.items():
            a_tid, b_tid = key
            pa = self._archive.trajectory(a_tid).points[a_idx].point
            pb = self._archive.trajectory(b_tid).points[b_idx].point
            ca, cb = project(pa), project(pb)
            if ca is None or cb is None:
                continue
            joints.append((key, (cost, a_idx, b_idx), ca, cb))
        oracle.prepare(
            (ca.segment.end for __, __, ca, __ in joints),
            (cb.segment.start for __, __, __, cb in joints),
        )

        kept: Dict[Tuple[int, int], Tuple[float, int, int]] = {}
        for key, value, ca, cb in joints:
            gap = oracle.route_distance_between_projections(
                ca.segment.segment_id,
                ca.projection.offset,
                cb.segment.segment_id,
                cb.projection.offset,
            )
            if gap <= bound:
                kept[key] = value
        return kept

    def _spliced_references(
        self,
        qi: GPSPoint,
        qi1: GPSPoint,
        near_i: Dict[int, List[int]],
        near_j: Dict[int, List[int]],
        simple_ids: Set[int],
        budget: float,
        next_ref_id: int,
    ) -> List[Reference]:
        """Definition 7: join tails leaving q_i with heads reaching q_{i+1}."""
        cfg = self._config
        # Candidate halves: trajectories near exactly one endpoint, minus
        # the ones already accepted as simple references.
        tail_ids = [
            t for t in near_i if t not in simple_ids and self._in_time_window(t, qi)
        ]
        head_ids = [t for t in near_j if t not in simple_ids]
        if not tail_ids or not head_ids:
            return []

        # Tail of T_a: observations from nn(q_i, T_a) onwards.
        tails: Dict[int, Tuple[int, Trajectory]] = {}
        for tid in tail_ids:
            traj = self._archive.trajectory(tid)
            m = traj.nearest_index(qi.point)
            if traj.points[m].point.distance_to(qi.point) > cfg.phi:
                continue
            tails[tid] = (m, traj)
        # Head of T_b: observations up to nn(q_{i+1}, T_b).
        heads: Dict[int, Tuple[int, Trajectory]] = {}
        for tid in head_ids:
            traj = self._archive.trajectory(tid)
            n = traj.nearest_index(qi1.point)
            if traj.points[n].point.distance_to(qi1.point) > cfg.phi:
                continue
            heads[tid] = (n, traj)
        if not tails or not heads:
            return []

        # On-line spatial join: index all head observations in a grid, probe
        # with every tail observation, keep the best splice pair per
        # trajectory pair (minimum d(p_a, q_i) + d(p_b, q_{i+1}), as the
        # paper specifies).
        head_grid: GridIndex[Tuple[int, int]] = GridIndex(
            max(cfg.splice_epsilon, 1.0)
        )
        for tid, (n, traj) in heads.items():
            for idx in range(0, n + 1):
                head_grid.insert(traj.points[idx].point, (tid, idx))

        best_pair: Dict[Tuple[int, int], Tuple[float, int, int]] = {}
        for a_tid, (m, a_traj) in tails.items():
            for a_idx in range(m, len(a_traj.points)):
                pa = a_traj.points[a_idx].point
                for b_tid, b_idx in head_grid.search_radius(pa, cfg.splice_epsilon):
                    if b_tid == a_tid:
                        continue
                    pb = self._archive.trajectory(b_tid).points[b_idx].point
                    cost = pa.distance_to(qi.point) + pb.distance_to(qi1.point)
                    key = (a_tid, b_tid)
                    if key not in best_pair or cost < best_pair[key][0]:
                        best_pair[key] = (cost, a_idx, b_idx)

        if self._config.splice_network_gap and self._engine is not None:
            best_pair = self._network_reachable_pairs(best_pair, tails, heads)

        out: List[Reference] = []
        for (a_tid, b_tid), (__, a_idx, b_idx) in best_pair.items():
            m, a_traj = tails[a_tid]
            n, b_traj = heads[b_tid]
            points = tuple(
                [p.point for p in a_traj.points[m : a_idx + 1]]
                + [p.point for p in b_traj.points[b_idx : n + 1]]
            )
            if len(points) < 2:
                continue
            # Condition 1 of Definition 7: the splice must satisfy the
            # simple-reference conditions, notably the speed ellipse.
            if not self._within_ellipse(points, qi.point, qi1.point, budget):
                continue
            out.append(
                Reference(
                    ref_id=next_ref_id + len(out),
                    source_ids=(a_tid, b_tid),
                    points=points,
                    spliced=True,
                )
            )
        return out
