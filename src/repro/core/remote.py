"""Distributed tile serving: archive shard servers and the remote backend.

:class:`~repro.core.archive.ShardedArchive` (PR 2) tiles one process's
archive; this module takes the next scale step and serves those tiles
from *multiple processes*, so a city-scale archive's spatial indexes no
longer have to fit one machine's memory:

* :class:`ArchiveShardServer` — a process that **owns** a deterministic
  subset of tiles (see :func:`shard_of_tile`) and answers the archive
  range queries for them over a length-prefixed JSON socket protocol
  (``repro-remote-v1``, specified in ``docs/distributed.md``);
* :class:`RemoteShardedArchive` — an
  :class:`~repro.core.archive.ArchiveBackend` client that keeps the trip
  store locally, routes every spatial query to the owning shard servers,
  fans pair queries out concurrently, and merges the per-shard replies
  back into the canonical ``(traj_id, index)`` order — results are
  bit-identical to :class:`~repro.core.archive.InMemoryArchive` and
  :class:`~repro.core.archive.ShardedArchive` on the same trips.

Failure handling is explicit: every request carries a timeout, failed
requests are retried a bounded number of times with exponential backoff
(all operations are idempotent, so a retry after a lost reply is safe),
and a shard that stays unreachable surfaces as a typed
:class:`ShardUnavailableError` / :class:`ShardTimeoutError` naming the
degraded shard — never a hang, never a silent partial answer.
"""

from __future__ import annotations

import json
import math
import socket
import socketserver
import struct
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.spatial.rtree import RTree
from repro.trajectory.model import GPSPoint, Trajectory

from repro.core.archive import ArchivePoint, _ArchiveBase, _group_refs, _ref_key

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteArchiveError",
    "ShardProtocolError",
    "ShardUnavailableError",
    "ShardTimeoutError",
    "shard_of_tile",
    "parse_address",
    "ArchiveShardServer",
    "RemoteShardedArchive",
    "request_shutdown",
]

#: Wire-format version token.  Every request carries ``"v": 1`` and the
#: handshake reply carries this string; both sides reject mismatches up
#: front instead of mis-parsing payloads (see docs/distributed.md).
PROTOCOL_VERSION = "repro-remote-v1"

_WIRE_V = 1

#: Frame header: one big-endian u32 payload length.
_HEADER = struct.Struct(">I")

#: Upper bound on a single frame's JSON payload; a peer announcing more
#: is treated as protocol corruption, not an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024


# --------------------------------------------------------------------- errors


class RemoteArchiveError(RuntimeError):
    """Base class of every remote-archive failure."""


class ShardProtocolError(RemoteArchiveError):
    """The peer spoke, but not ``repro-remote-v1`` (version/shape/refusal)."""


class ShardUnavailableError(RemoteArchiveError):
    """A shard stayed unreachable after the bounded retry schedule.

    Attributes:
        address: ``(host, port)`` of the degraded shard.
        op: The operation that could not be served.
        attempts: Connection attempts made (``retries + 1``).
    """

    def __init__(self, address: Tuple[str, int], op: str, attempts: int, cause: str):
        self.address = address
        self.op = op
        self.attempts = attempts
        super().__init__(
            f"shard {address[0]}:{address[1]} unavailable for {op!r} "
            f"after {attempts} attempt(s): {cause}"
        )


class ShardTimeoutError(ShardUnavailableError):
    """The shard accepted connections but never answered within the timeout."""


# --------------------------------------------------------------- wire helpers


def _send_frame(sock: socket.socket, payload: dict) -> None:
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None  # orderly EOF
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Optional[dict]:
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ShardProtocolError(f"frame of {length} bytes exceeds the protocol cap")
    body = _recv_exact(sock, length)
    if body is None:
        raise ShardProtocolError("connection closed mid-frame")
    return json.loads(body.decode("utf-8"))


def parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` → ``(host, port)``.

    Raises:
        ValueError: If the string has no ``:port`` or the port is not an int.
    """
    if isinstance(address, tuple):
        host, port = address
        return (str(host), int(port))
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"shard address {address!r} is not host:port")
    return (host, int(port))


# ------------------------------------------------------------ shard ownership


def shard_of_tile(key: Tuple[int, int], num_shards: int) -> int:
    """The shard index owning tile ``key`` among ``num_shards`` shards.

    Deterministic and platform-independent (no salted ``hash()``): the
    classic two-prime spatial hash, reduced modulo the shard count.  Both
    client and servers evaluate this function, so ownership needs no
    coordination service — a tile's owner is a pure function of its key.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    ix, iy = key
    return ((ix * 73856093) ^ (iy * 19349663)) % num_shards


# ---------------------------------------------------------------- the server


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    shard: "ArchiveShardServer"


class _ShardRequestHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        while True:
            try:
                request = _recv_frame(self.request)
            except (OSError, ValueError, ShardProtocolError):
                return
            if request is None:
                return
            response = self.server.shard._dispatch(request)
            try:
                _send_frame(self.request, response)
            except OSError:
                return
            if request.get("op") == "shutdown" and response.get("ok"):
                threading.Thread(target=self.server.shutdown, daemon=True).start()
                return


class ArchiveShardServer:
    """One process of the distributed archive: owns a subset of tiles.

    The server stores bare observations — ``(traj_id, index) -> (x, y)``
    binned into the same ``floor(coord / tile_size)`` tiles as
    :class:`~repro.core.archive.ShardedArchive` — and materialises one
    R-tree per tile lazily, exactly like the single-process sharded
    backend.  It never holds whole trajectories: the trip store stays
    with the client, only the spatial tier is distributed.

    Ownership is closed under :func:`shard_of_tile`: inserts for a tile
    this shard does not own are refused (kind ``"ownership"``), so a
    misconfigured client fails loudly instead of splitting a tile across
    shards (which would break the disjoint-merge guarantee).

    Args:
        shard_index: This shard's index in ``[0, num_shards)``.
        num_shards: Total shards in the deployment.
        tile_size: Tile edge in metres (must match every peer and client).
        host / port: Bind address; port 0 picks an ephemeral port
            (read it back from :attr:`address`).
    """

    def __init__(
        self,
        shard_index: int,
        num_shards: int,
        tile_size: float,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if not 0 <= shard_index < num_shards:
            raise ValueError(f"shard_index {shard_index} outside [0, {num_shards})")
        if tile_size <= 0.0:
            raise ValueError("tile_size must be positive")
        self.shard_index = shard_index
        self.num_shards = num_shards
        self.tile_size = float(tile_size)
        self._tiles: Dict[Tuple[int, int], Dict[Tuple[int, int], Tuple[float, float]]] = {}
        self._trees: Dict[Tuple[int, int], RTree[Tuple[int, int]]] = {}
        self._lock = threading.RLock()
        self._server = _TCPServer((host, port), _ShardRequestHandler)
        self._server.shard = self
        self._thread: Optional[threading.Thread] = None

    # ----------------------------------------------------------- lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolved even when port 0 was asked."""
        host, port = self._server.server_address[:2]
        return (host, port)

    def start(self) -> "ArchiveShardServer":
        """Serve in a daemon thread (tests, benchmarks, embedding)."""
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI ``archive-serve`` path)."""
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ---------------------------------------------------------------- state

    def owns(self, key: Tuple[int, int]) -> bool:
        return shard_of_tile(key, self.num_shards) == self.shard_index

    def tile_key(self, x: float, y: float) -> Tuple[int, int]:
        return (math.floor(x / self.tile_size), math.floor(y / self.tile_size))

    @property
    def num_points(self) -> int:
        with self._lock:
            return sum(len(points) for points in self._tiles.values())

    def preload(
        self, points: Iterable[Tuple[ArchivePoint, Union[Point, GPSPoint]]]
    ) -> int:
        """Ingest observations directly (CLI ``--world`` preseeding).

        Observations in tiles this shard does not own are skipped — the
        caller can stream a whole archive and each shard keeps its share.

        Returns:
            Observations kept.
        """
        kept = 0
        with self._lock:
            for ref, p in points:
                key = self.tile_key(p.x, p.y)
                if not self.owns(key):
                    continue
                self._insert_one(key, (ref.traj_id, ref.index), (p.x, p.y))
                kept += 1
        return kept

    def _insert_one(
        self,
        key: Tuple[int, int],
        ref: Tuple[int, int],
        xy: Tuple[float, float],
    ) -> None:
        tile = self._tiles.setdefault(key, {})
        if ref in tile:  # idempotent re-insert (client retry after lost reply)
            return
        tile[ref] = xy
        tree = self._trees.get(key)
        if tree is not None:
            tree.insert_point(Point(*xy), ref)

    def _delete_one(
        self,
        key: Tuple[int, int],
        ref: Tuple[int, int],
        xy: Tuple[float, float],
    ) -> None:
        tile = self._tiles.get(key)
        if tile is None or ref not in tile:
            return  # idempotent
        del tile[ref]
        tree = self._trees.get(key)
        if tree is not None:
            tree.remove_point(Point(*xy), ref)
            if len(tree) == 0:
                del self._trees[key]
        if not tile:
            del self._tiles[key]

    def _tree(self, key: Tuple[int, int]) -> RTree[Tuple[int, int]]:
        tree = self._trees.get(key)
        if tree is None:
            entries = [
                (BBox(x, y, x, y), ref) for ref, (x, y) in self._tiles[key].items()
            ]
            tree = RTree.bulk_load(entries, max_entries=32)
            self._trees[key] = tree
        return tree

    def _tiles_overlapping(self, box: BBox) -> List[Tuple[int, int]]:
        ix0 = math.floor(box.min_x / self.tile_size)
        ix1 = math.floor(box.max_x / self.tile_size)
        iy0 = math.floor(box.min_y / self.tile_size)
        iy1 = math.floor(box.max_y / self.tile_size)
        span = (ix1 - ix0 + 1) * (iy1 - iy0 + 1)
        if span <= len(self._tiles):
            return [
                (ix, iy)
                for ix in range(ix0, ix1 + 1)
                for iy in range(iy0, iy1 + 1)
                if (ix, iy) in self._tiles
            ]
        return [
            key
            for key in self._tiles
            if ix0 <= key[0] <= ix1 and iy0 <= key[1] <= iy1
        ]

    def _search_circles(
        self, queries: Sequence[Tuple[Point, float]]
    ) -> List[List[Tuple[int, int]]]:
        out: List[List[Tuple[int, int]]] = [[] for __ in queries]
        per_tile: Dict[Tuple[int, int], List[int]] = {}
        for qi, (center, radius) in enumerate(queries):
            box = BBox.around(center, radius)
            for key in self._tiles_overlapping(box):
                per_tile.setdefault(key, []).append(qi)
        for key, circle_ids in per_tile.items():
            points = self._tiles[key]
            sub = self._tree(key).search_radius_many(
                [queries[qi] for qi in circle_ids],
                position=lambda ref, points=points: Point(*points[ref]),
            )
            for qi, hits in zip(circle_ids, sub):
                out[qi].extend(hits)
        return [sorted(set(hits)) for hits in out]

    def _search_bbox(self, region: BBox) -> List[Tuple[int, int]]:
        refs: List[Tuple[int, int]] = []
        for key in self._tiles_overlapping(region):
            refs.extend(self._tree(key).search_bbox(region))
        return sorted(set(refs))

    # ------------------------------------------------------------- protocol

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if request.get("v") != _WIRE_V:
            return {
                "ok": False,
                "kind": "protocol",
                "error": f"unsupported wire version {request.get('v')!r}; "
                f"this server speaks {PROTOCOL_VERSION} (v: {_WIRE_V})",
            }
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return {"ok": False, "kind": "protocol", "error": f"unknown op {op!r}"}
        try:
            with self._lock:
                return handler(request)
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "kind": "bad_request", "error": repr(exc)}

    def _op_hello(self, request: dict) -> dict:
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "shard_index": self.shard_index,
            "num_shards": self.num_shards,
            "tile_size": self.tile_size,
            "num_points": self.num_points,
            "num_tiles": len(self._tiles),
        }

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True}

    def _op_insert(self, request: dict) -> dict:
        rows = request["points"]
        for tid, idx, x, y in rows:
            key = self.tile_key(x, y)
            if not self.owns(key):
                return {
                    "ok": False,
                    "kind": "ownership",
                    "error": f"tile {key} of point ({tid}, {idx}) is owned by "
                    f"shard {shard_of_tile(key, self.num_shards)}, "
                    f"not {self.shard_index}",
                }
        for tid, idx, x, y in rows:
            self._insert_one(self.tile_key(x, y), (int(tid), int(idx)), (x, y))
        return {"ok": True, "inserted": len(rows)}

    def _op_delete(self, request: dict) -> dict:
        rows = request["points"]
        for tid, idx, x, y in rows:
            self._delete_one(self.tile_key(x, y), (int(tid), int(idx)), (x, y))
        return {"ok": True, "deleted": len(rows)}

    def _op_search_circles(self, request: dict) -> dict:
        queries = [(Point(x, y), r) for x, y, r in request["queries"]]
        hits = self._search_circles(queries)
        return {"ok": True, "hits": [[list(ref) for ref in h] for h in hits]}

    def _op_search_bbox(self, request: dict) -> dict:
        x0, y0, x1, y1 = request["bbox"]
        refs = self._search_bbox(BBox(x0, y0, x1, y1))
        return {"ok": True, "refs": [list(ref) for ref in refs]}

    def _op_near_pair(self, request: dict) -> dict:
        qi = Point(*request["qi"])
        qi1 = Point(*request["qi1"])
        radius = float(request["radius"])
        hits_i, hits_j = self._search_circles([(qi, radius), (qi1, radius)])
        return {
            "ok": True,
            "near_i": _group_pairs(hits_i),
            "near_j": _group_pairs(hits_j),
        }

    def _op_stats(self, request: dict) -> dict:
        return {
            "ok": True,
            "shard_index": self.shard_index,
            "num_points": self.num_points,
            "num_tiles": len(self._tiles),
            "resident_tiles": len(self._trees),
            "resident_points": sum(len(t) for t in self._trees.values()),
            "index_bytes": sum(t.approx_nbytes() for t in self._trees.values()),
        }

    def _op_shutdown(self, request: dict) -> dict:
        return {"ok": True}


def _group_pairs(hits: Sequence[Tuple[int, int]]) -> List[List[object]]:
    """Sorted ``(tid, idx)`` hits → ``[[tid, [idx, ...]], ...]`` wire shape."""
    grouped: Dict[int, List[int]] = {}
    for tid, idx in hits:
        grouped.setdefault(tid, []).append(idx)
    return [[tid, idxs] for tid, idxs in grouped.items()]


# ---------------------------------------------------------------- the client


class _ShardConnection:
    """One shard's persistent connection: framing, timeout, bounded retry.

    Every ``repro-remote-v1`` operation is idempotent, so a request whose
    reply was lost can be resent verbatim; the retry schedule is
    ``retries`` resends with exponential backoff starting at
    ``backoff_s``.  A request that exhausts the schedule raises
    :class:`ShardTimeoutError` (timeouts) or
    :class:`ShardUnavailableError` (connection refusals/resets) — the
    degraded-shard surface callers handle.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        timeout_s: float,
        retries: int,
        backoff_s: float,
        latencies: List[float],
    ) -> None:
        self.address = address
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self._latencies = latencies
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    def _connected(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(self.address, timeout=self.timeout_s)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                finally:
                    self._sock = None

    def request(self, payload: dict) -> dict:
        op = str(payload.get("op"))
        last_error: Optional[BaseException] = None
        with self._lock:
            for attempt in range(self.retries + 1):
                if attempt:
                    time.sleep(self.backoff_s * (2 ** (attempt - 1)))
                t0 = time.perf_counter()
                try:
                    sock = self._connected()
                    _send_frame(sock, payload)
                    response = _recv_frame(sock)
                    if response is None:
                        raise ConnectionError("shard closed the connection")
                except (TimeoutError, socket.timeout, OSError) as exc:
                    self._sock = None
                    last_error = exc
                    continue
                finally:
                    self._latencies.append(time.perf_counter() - t0)
                if not response.get("ok"):
                    raise ShardProtocolError(
                        f"shard {self.address[0]}:{self.address[1]} refused "
                        f"{op!r}: [{response.get('kind', 'error')}] "
                        f"{response.get('error', 'no detail')}"
                    )
                return response
        attempts = self.retries + 1
        cause = repr(last_error)
        if isinstance(last_error, (TimeoutError, socket.timeout)):
            raise ShardTimeoutError(self.address, op, attempts, cause)
        raise ShardUnavailableError(self.address, op, attempts, cause)


class RemoteShardedArchive(_ArchiveBase):
    """Archive backend served by remote :class:`ArchiveShardServer` fleet.

    The trip store (whole trajectories, by id) lives in this process —
    reference assembly needs the actual trajectories — while every
    spatial query is fanned out to the shard servers owning the tiles the
    query's region covers and the disjoint per-shard answers are merged
    into the canonical ``(traj_id, index)`` order.  Equivalence with the
    in-process backends is therefore structural, exactly as for
    :class:`~repro.core.archive.ShardedArchive`: each observation lives
    in exactly one tile, each tile on exactly one shard.

    Mutations (:meth:`add` / :meth:`remove`) forward each trip's points
    to the owning shards, so the fleet tracks the local trip store.  Use
    :meth:`attach_trips` instead when the servers were pre-seeded with the
    same archive (``repro archive-serve --world``): it registers trips
    locally without re-pushing points.

    Construction performs the ``hello`` handshake against every address
    and validates the deployment: protocol version, one server per shard
    index in ``[0, num_shards)``, and a single tile size.

    Args:
        addresses: One ``"host:port"`` (or ``(host, port)``) per shard,
            in any order — servers are identified by their handshake
            ``shard_index``, not by list position.
        timeout_s: Per-request socket timeout.
        retries: Resends after a failed request (bounded; idempotent ops).
        backoff_s: First retry delay; doubles per further attempt.
        expected_tile_size: Optional cross-check against the handshake.
    """

    def __init__(
        self,
        addresses: Sequence[Union[str, Tuple[str, int]]],
        timeout_s: float = 5.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        expected_tile_size: Optional[float] = None,
    ) -> None:
        if not addresses:
            raise ValueError("a remote archive needs at least one shard address")
        super().__init__()
        self.request_latencies: List[float] = []
        self._timeout_s = timeout_s
        self._retries = retries
        self._backoff_s = backoff_s
        connections = [
            _ShardConnection(
                parse_address(a), timeout_s, retries, backoff_s, self.request_latencies
            )
            for a in addresses
        ]
        by_index: Dict[int, _ShardConnection] = {}
        tile_size: Optional[float] = None
        for conn in connections:
            hello = conn.request({"op": "hello", "v": _WIRE_V})
            if hello.get("protocol") != PROTOCOL_VERSION:
                raise ShardProtocolError(
                    f"shard {conn.address} speaks {hello.get('protocol')!r}, "
                    f"expected {PROTOCOL_VERSION!r}"
                )
            if int(hello["num_shards"]) != len(connections):
                raise ShardProtocolError(
                    f"shard {conn.address} is part of a "
                    f"{hello['num_shards']}-shard deployment but "
                    f"{len(connections)} address(es) were given"
                )
            index = int(hello["shard_index"])
            if index in by_index:
                raise ShardProtocolError(
                    f"two servers claim shard index {index}: "
                    f"{by_index[index].address} and {conn.address}"
                )
            size = float(hello["tile_size"])
            if tile_size is None:
                tile_size = size
            elif size != tile_size:
                raise ShardProtocolError(
                    f"inconsistent tile sizes across shards: {tile_size} vs "
                    f"{size} at {conn.address}"
                )
            by_index[index] = conn
        assert tile_size is not None
        if expected_tile_size is not None and tile_size != float(expected_tile_size):
            raise ShardProtocolError(
                f"shards use tile_size={tile_size}, caller expected "
                f"{float(expected_tile_size)}"
            )
        self._tile_size = tile_size
        self._connections = [by_index[i] for i in range(len(connections))]
        self._executor_lock = threading.Lock()
        self._executor = None

    # ------------------------------------------------------------- plumbing

    @property
    def tile_size(self) -> float:
        return self._tile_size

    @property
    def num_shards(self) -> int:
        return len(self._connections)

    def tile_key(self, p: Point) -> Tuple[int, int]:
        return (
            math.floor(p.x / self._tile_size),
            math.floor(p.y / self._tile_size),
        )

    def close(self) -> None:
        """Drop sockets and the fan-out thread pool (reconnects lazily)."""
        for conn in self._connections:
            conn.close()
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
                self._executor = None

    def __enter__(self) -> "RemoteShardedArchive":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def prepare_for_fork(self) -> None:
        """Called by the batch pool right before forking workers.

        Sockets and thread pools do not survive ``fork``; dropping them
        here makes every worker (and the parent) reconnect lazily on its
        next request instead of sharing a corrupted stream.
        """
        self.close()

    def reset_latencies(self) -> None:
        self.request_latencies.clear()

    def _pool(self):
        from concurrent.futures import ThreadPoolExecutor

        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(1, len(self._connections)),
                    thread_name_prefix="repro-remote",
                )
            return self._executor

    def _fan_out(self, payloads: Dict[int, dict]) -> Dict[int, dict]:
        """Issue one request per shard concurrently; raise on any failure."""
        if not payloads:
            return {}
        if len(payloads) == 1:
            ((index, payload),) = payloads.items()
            return {index: self._connections[index].request(payload)}
        futures = {
            index: self._pool().submit(self._connections[index].request, payload)
            for index, payload in payloads.items()
        }
        return {index: future.result() for index, future in futures.items()}

    # --------------------------------------------------------- shard routing

    #: Covered-tile enumeration cap: a query box spanning more tiles than
    #: this is simply broadcast to every shard (enumerating the owners
    #: would cost more than the spare requests it saves).
    _ENUMERATION_CAP = 4096

    def _shards_for_boxes(self, boxes: Sequence[BBox]) -> Dict[int, List[int]]:
        """Shard index → indices of the boxes whose tiles it may own."""
        n = len(self._connections)
        out: Dict[int, List[int]] = {}
        for bi, box in enumerate(boxes):
            ix0 = math.floor(box.min_x / self._tile_size)
            ix1 = math.floor(box.max_x / self._tile_size)
            iy0 = math.floor(box.min_y / self._tile_size)
            iy1 = math.floor(box.max_y / self._tile_size)
            span = (ix1 - ix0 + 1) * (iy1 - iy0 + 1)
            if span > self._ENUMERATION_CAP or span >= n * 8:
                owners = range(n)
            else:
                owners = {
                    shard_of_tile((ix, iy), n)
                    for ix in range(ix0, ix1 + 1)
                    for iy in range(iy0, iy1 + 1)
                }
            for owner in owners:
                out.setdefault(owner, []).append(bi)
        return out

    # ------------------------------------------------------------ mutations

    def _rows_by_shard(self, trajectory: Trajectory) -> Dict[int, List[List[float]]]:
        rows: Dict[int, List[List[float]]] = {}
        n = len(self._connections)
        for i, p in enumerate(trajectory.points):
            owner = shard_of_tile(self.tile_key(p.point), n)
            rows.setdefault(owner, []).append(
                [trajectory.traj_id, i, p.point.x, p.point.y]
            )
        return rows

    def _on_add(self, trajectory: Trajectory) -> None:
        self._fan_out(
            {
                shard: {"op": "insert", "v": _WIRE_V, "points": rows}
                for shard, rows in self._rows_by_shard(trajectory).items()
            }
        )

    def _on_remove(self, trajectory: Trajectory) -> None:
        self._fan_out(
            {
                shard: {"op": "delete", "v": _WIRE_V, "points": rows}
                for shard, rows in self._rows_by_shard(trajectory).items()
            }
        )

    def attach_trips(self, trips: Iterable[Trajectory]) -> None:
        """Register trips locally *without* pushing points to the shards.

        For deployments whose servers were pre-seeded with the same
        archive (``repro archive-serve --world``): the client still needs
        the trip store for reference assembly, but the observations are
        already resident on the fleet.

        Raises:
            ValueError: On a duplicate trip id.
        """
        for trajectory in trips:
            tid = trajectory.traj_id
            if tid in self._trajectories:
                raise ValueError(f"trajectory id {tid} already present")
            self._trajectories[tid] = trajectory
            self._next_id = max(self._next_id, tid + 1)

    # -------------------------------------------------------------- queries

    def _search_circles(
        self, queries: Sequence[Tuple[Point, float]]
    ) -> List[List[ArchivePoint]]:
        out: List[List[ArchivePoint]] = [[] for __ in queries]
        if not queries:
            return out
        boxes = [BBox.around(center, radius) for center, radius in queries]
        payloads = {}
        members: Dict[int, List[int]] = {}
        for shard, circle_ids in self._shards_for_boxes(boxes).items():
            members[shard] = circle_ids
            payloads[shard] = {
                "op": "search_circles",
                "v": _WIRE_V,
                "queries": [
                    [queries[qi][0].x, queries[qi][0].y, queries[qi][1]]
                    for qi in circle_ids
                ],
            }
        for shard, response in self._fan_out(payloads).items():
            for qi, hits in zip(members[shard], response["hits"]):
                out[qi].extend(ArchivePoint(int(t), int(i)) for t, i in hits)
        # Tiles are disjoint and each tile lives on one shard, so the
        # per-shard answers are disjoint; sorting restores canonical order.
        return [sorted(set(hits), key=_ref_key) for hits in out]

    def points_in_bbox(self, region: BBox) -> List[ArchivePoint]:
        payloads = {
            shard: {
                "op": "search_bbox",
                "v": _WIRE_V,
                "bbox": [region.min_x, region.min_y, region.max_x, region.max_y],
            }
            for shard in self._shards_for_boxes([region])
        }
        refs: List[ArchivePoint] = []
        for response in self._fan_out(payloads).values():
            refs.extend(ArchivePoint(int(t), int(i)) for t, i in response["refs"])
        return sorted(set(refs), key=_ref_key)

    def trajectories_near_pair(
        self, qi: Point, qi1: Point, radius: float
    ) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
        """Remote fan-out of the reference search's φ-pair query.

        Each owning shard answers both circles for its tiles in one
        request (``near_pair``); the per-shard near-maps are merged by
        concatenating index lists per trajectory id, then re-sorted into
        the canonical shape — ascending trajectory ids, each with its
        sorted observation indices — matching
        :meth:`repro.core.archive._ArchiveBase.trajectories_near_pair`
        bit for bit.
        """
        boxes = [BBox.around(qi, radius), BBox.around(qi1, radius)]
        shards = sorted(self._shards_for_boxes(boxes))
        payload = {
            "op": "near_pair",
            "v": _WIRE_V,
            "qi": [qi.x, qi.y],
            "qi1": [qi1.x, qi1.y],
            "radius": radius,
        }
        responses = self._fan_out({shard: dict(payload) for shard in shards})
        near_i: Dict[int, List[int]] = {}
        near_j: Dict[int, List[int]] = {}
        for response in responses.values():
            for accumulator, field in ((near_i, "near_i"), (near_j, "near_j")):
                for tid, idxs in response[field]:
                    accumulator.setdefault(int(tid), []).extend(int(v) for v in idxs)
        return _canonical_near_map(near_i), _canonical_near_map(near_j)

    # ------------------------------------------------------------ telemetry

    def ping(self) -> List[float]:
        """Round-trip seconds per shard (raises on a degraded shard)."""
        out = []
        for conn in self._connections:
            t0 = time.perf_counter()
            conn.request({"op": "ping", "v": _WIRE_V})
            out.append(time.perf_counter() - t0)
        return out

    def shard_stats(self) -> List[dict]:
        """Per-shard resident-size stats, ordered by shard index."""
        responses = self._fan_out(
            {
                shard: {"op": "stats", "v": _WIRE_V}
                for shard in range(len(self._connections))
            }
        )
        out = []
        for shard in range(len(self._connections)):
            stats = dict(responses[shard])
            stats.pop("ok", None)
            out.append(stats)
        return out


def _canonical_near_map(raw: Dict[int, List[int]]) -> Dict[int, List[int]]:
    return {tid: sorted(raw[tid]) for tid in sorted(raw)}


def request_shutdown(
    address: Union[str, Tuple[str, int]], timeout_s: float = 5.0
) -> None:
    """Ask the shard server at ``address`` to shut down (orderly teardown)."""
    conn = _ShardConnection(parse_address(address), timeout_s, 0, 0.0, [])
    try:
        conn.request({"op": "shutdown", "v": _WIRE_V})
    finally:
        conn.close()
