"""Distributed tile serving: archive shard servers and the remote backend.

:class:`~repro.core.archive.ShardedArchive` (PR 2) tiles one process's
archive; this module takes the next scale step and serves those tiles
from *multiple processes*, so a city-scale archive's spatial indexes no
longer have to fit one machine's memory:

* :class:`ArchiveShardServer` — a process that **owns** a deterministic
  subset of tiles (see :func:`shard_of_tile`) and answers the archive
  range queries for them over a length-prefixed JSON socket protocol
  (``repro-remote-v4``, specified in ``docs/distributed.md``),
  optionally journalling every mutation to a durable write-ahead log
  (:mod:`repro.core.wal`) so a process death loses no acknowledged
  ingest;
* :class:`RemoteShardedArchive` — an
  :class:`~repro.core.archive.ArchiveBackend` client that routes every
  spatial query to the owning shard servers, fans pair queries out
  concurrently, and merges the per-shard replies back into the canonical
  ``(traj_id, index)`` order — results are bit-identical to
  :class:`~repro.core.archive.InMemoryArchive` and
  :class:`~repro.core.archive.ShardedArchive` on the same trips;
* :class:`RemoteTripSource` — the ``repro-remote-v4`` implementation of
  :class:`repro.core.reference.TripSource`: reference candidates are
  summarised and assembled **on the shards** (``search_references``,
  ``traj_meta``, ``fetch_spans``), and spans whose trajectory crosses
  tile ownership are stitched client-side back into canonical index
  order, so reference search no longer needs a client-held trip store.

Failure handling is explicit: every request carries a timeout, failed
requests are retried a bounded number of times with exponential backoff
and full jitter (all operations are idempotent, so a retry after a lost
reply is safe), and a shard that stays unreachable surfaces as a typed
:class:`ShardUnavailableError` / :class:`ShardTimeoutError` naming the
degraded shard — never a hang, never a silent partial answer.

Replication: each shard index may be served by a
**replica set** of several :class:`ArchiveShardServer` processes holding
identical tile data.  Mutations fan out to every replica of the owning
shard; reads route to one healthy replica and fail over transparently.
:class:`RemoteShardedArchive` tracks per-replica health with a
consecutive-failure circuit breaker: a replica that keeps failing is
*demoted* (its circuit opens), reads stop routing to it, and after a
cooldown a half-open ``stats`` probe restores it.  A probe that finds
the replica *lagging* — alive, but behind the mutation stream this
client has driven — **repairs** it before restoring it: the missing
record suffix is fetched from a healthy peer (``log_since``) and
replayed onto the laggard (``apply_log``), so a replica that restarted
from an old WAL generation or missed writes while its breaker was open
rejoins the rotation with bit-identical data.  Only a replica whose
missing prefix is gone (compacted away on every peer) or whose data
truly diverged is left *stale* — excluded from reads, cheaply re-probed
after each cooldown, never silently serving divergent answers.  No
error reaches the caller while at least one current replica of every
queried shard survives.
"""

from __future__ import annotations

import json
import math
import random
import socket
import socketserver
import struct
import threading
import time
from collections import deque
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    MutableSequence,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.spatial.rtree import RTree
from repro.trajectory.model import GPSPoint, Trajectory

from repro.core.archive import ArchivePoint, _ArchiveBase, _group_refs, _ref_key
from repro.core.wal import FSYNC_POLICIES, WriteAheadLog

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteArchiveError",
    "ShardProtocolError",
    "ShardUnavailableError",
    "ShardTimeoutError",
    "ShardExhaustedError",
    "InjectedFault",
    "shard_of_tile",
    "parse_address",
    "ArchiveShardServer",
    "RemoteShardedArchive",
    "RemoteTripSource",
    "WireMeter",
    "request_shutdown",
]

#: Wire-format version token.  Every request carries ``"v": 4`` and the
#: handshake reply carries this string; both sides reject mismatches up
#: front instead of mis-parsing payloads (see docs/distributed.md).  The
#: ``hello`` op is version-agnostic on the server so that any client can
#: discover what a server speaks before committing to the dialect.
#: v4 over v3: servers expose their mutation-log position (``lsn`` in
#: ``hello``/``insert``/``delete``/``stats`` replies) and the replica
#: catch-up ops ``log_since`` / ``apply_log`` exist, so a lagging
#: replica is repaired by log replay instead of demoted permanently.
#: v3 over v2: observations carry timestamps, shards keep a per-trajectory
#: point store alongside the tile bins, and the reference-assembly ops
#: (``search_references`` / ``traj_meta`` / ``fetch_spans``) exist.
PROTOCOL_VERSION = "repro-remote-v4"

_WIRE_V = 4

#: Bound on the per-client request-latency telemetry ring
#: (:attr:`RemoteShardedArchive.request_latencies`): old samples fall off
#: instead of growing without bound on long-lived servers.
LATENCY_WINDOW = 16_384

#: Frame header: one big-endian u32 payload length.
_HEADER = struct.Struct(">I")

#: Upper bound on a single frame's JSON payload; a peer announcing more
#: is treated as protocol corruption, not an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024


# --------------------------------------------------------------------- errors


class RemoteArchiveError(RuntimeError):
    """Base class of every remote-archive failure."""


class ShardProtocolError(RemoteArchiveError):
    """The peer spoke, but not ``repro-remote-v4`` (version/shape/refusal)."""


class ShardUnavailableError(RemoteArchiveError):
    """A shard stayed unreachable after the bounded retry schedule.

    Attributes:
        address: ``(host, port)`` of the degraded shard.
        op: The operation that could not be served.
        attempts: Connection attempts made (``retries + 1``).
    """

    def __init__(self, address: Tuple[str, int], op: str, attempts: int, cause: str):
        self.address = address
        self.op = op
        self.attempts = attempts
        super().__init__(
            f"shard {address[0]}:{address[1]} unavailable for {op!r} "
            f"after {attempts} attempt(s): {cause}"
        )


class ShardTimeoutError(ShardUnavailableError):
    """The shard accepted connections but never answered within the timeout."""


class ShardExhaustedError(ShardUnavailableError):
    """Every replica of a shard is unavailable — the shard itself is lost.

    Raised by a replicated deployment only after transparent failover ran
    out of candidates; with a single replica per shard the underlying
    :class:`ShardUnavailableError` / :class:`ShardTimeoutError` is raised
    directly instead (the v1 surface).

    Attributes:
        shard_index: The shard whose whole replica set is down.
        failures: The per-replica errors, in the order replicas were tried.
    """

    def __init__(
        self,
        shard_index: int,
        op: str,
        replicas: int,
        failures: Sequence["ShardUnavailableError"],
    ):
        self.shard_index = shard_index
        self.op = op
        self.failures = list(failures)
        self.attempts = sum(f.attempts for f in self.failures)
        self.address = self.failures[-1].address if self.failures else ("?", 0)
        detail = (
            "; ".join(str(f) for f in self.failures)
            or "no replica eligible (all demoted as stale)"
        )
        RuntimeError.__init__(
            self,
            f"shard {shard_index}: all {replicas} replica(s) unavailable "
            f"for {op!r}: {detail}",
        )


class InjectedFault(Exception):
    """Raised by a server-side fault hook to sever the connection.

    Not a :class:`RemoteArchiveError`: it lives on the *server*, where the
    request handler treats it as "crash now" — the connection is dropped
    without a reply, exactly as if the process died mid-request.  The
    chaos harness (:mod:`repro.core.chaos`) raises it from
    :attr:`ArchiveShardServer.fault_hook` callbacks.
    """


# --------------------------------------------------------------- wire helpers


class WireMeter:
    """Thread-safe byte counters for one client's shard traffic.

    Frame payloads plus headers, in both directions, across every
    connection of a :class:`RemoteShardedArchive`.  The benchmark uses
    deltas around a query batch to report bytes-on-the-wire per query.
    """

    __slots__ = ("_lock", "bytes_sent", "bytes_received", "frames_sent", "frames_received")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.bytes_sent = 0
            self.bytes_received = 0
            self.frames_sent = 0
            self.frames_received = 0

    def add_sent(self, n: int) -> None:
        with self._lock:
            self.bytes_sent += n
            self.frames_sent += 1

    def add_received(self, n: int) -> None:
        with self._lock:
            self.bytes_received += n
            self.frames_received += 1

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self.bytes_sent + self.bytes_received

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "frames_sent": self.frames_sent,
                "frames_received": self.frames_received,
            }


def _send_frame(
    sock: socket.socket, payload: dict, meter: Optional[WireMeter] = None
) -> None:
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(data)) + data)
    if meter is not None:
        meter.add_sent(_HEADER.size + len(data))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None  # orderly EOF
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(
    sock: socket.socket, meter: Optional[WireMeter] = None
) -> Optional[dict]:
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ShardProtocolError(f"frame of {length} bytes exceeds the protocol cap")
    body = _recv_exact(sock, length)
    if meter is not None and body is not None:
        meter.add_received(_HEADER.size + length)
    if body is None:
        # A peer that dies mid-reply truncates the frame: that is an
        # availability event (retry on a fresh connection), not a
        # protocol violation by a live peer.
        raise ConnectionError("connection closed mid-frame")
    decoded = json.loads(body.decode("utf-8"))
    if not isinstance(decoded, dict):
        raise ShardProtocolError(
            f"frame payload is {type(decoded).__name__}, expected an object"
        )
    return decoded


def parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` → ``(host, port)``.

    Raises:
        ValueError: If the string has no ``:port`` or the port is not an int.
    """
    if isinstance(address, tuple):
        host, port = address
        return (str(host), int(port))
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"shard address {address!r} is not host:port")
    return (host, int(port))


# ------------------------------------------------------------ shard ownership


def shard_of_tile(key: Tuple[int, int], num_shards: int) -> int:
    """The shard index owning tile ``key`` among ``num_shards`` shards.

    Deterministic and platform-independent (no salted ``hash()``): the
    classic two-prime spatial hash, reduced modulo the shard count.  Both
    client and servers evaluate this function, so ownership needs no
    coordination service — a tile's owner is a pure function of its key.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    ix, iy = key
    return ((ix * 73856093) ^ (iy * 19349663)) % num_shards


# ---------------------------------------------------------------- the server


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    shard: "ArchiveShardServer"


class _ShardRequestHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        shard = self.server.shard
        shard._track_connection(self.request)
        try:
            while True:
                try:
                    request = _recv_frame(self.request)
                except (OSError, ValueError, ShardProtocolError):
                    return
                if request is None:
                    return
                hook = shard.fault_hook
                if hook is not None:
                    try:
                        hook(request)
                    except InjectedFault:
                        return  # crash-mid-request: drop without replying
                response = shard._dispatch(request)
                try:
                    _send_frame(self.request, response)
                except OSError:
                    return
                if request.get("op") == "shutdown" and response.get("ok"):
                    threading.Thread(target=self.server.shutdown, daemon=True).start()
                    return
        finally:
            shard._untrack_connection(self.request)


class ArchiveShardServer:
    """One process of the distributed archive: owns a subset of tiles.

    The server stores timestamped observations —
    ``(traj_id, index) -> (x, y, t)`` binned into the same
    ``floor(coord / tile_size)`` tiles as
    :class:`~repro.core.archive.ShardedArchive` — and materialises one
    R-tree per tile lazily, exactly like the single-process sharded
    backend.  Since wire v3 it additionally keeps the owned
    observations grouped per trajectory id, so it can answer the
    reference-assembly ops (``search_references`` / ``traj_meta`` /
    ``fetch_spans``) for the index ranges it owns: whole trajectories
    never need to live on the client, and a trajectory whose points
    scatter across several owners is stitched back together client-side.

    Ownership is closed under :func:`shard_of_tile`: inserts for a tile
    this shard does not own are refused (kind ``"ownership"``), so a
    misconfigured client fails loudly instead of splitting a tile across
    shards (which would break the disjoint-merge guarantee).

    Replication: several servers may share one ``shard_index`` — they
    form that shard's replica set and are expected to receive identical
    mutation streams (the client fans mutations out to all of them).
    ``replica_id`` distinguishes them in handshakes, stats and logs; it
    carries no routing semantics.

    Durability: every *effective* mutation (rows that actually change
    state — idempotent retries append nothing) is assigned the next LSN,
    journalled, and only then applied and acknowledged.  With ``wal_dir``
    set the journal is a :class:`~repro.core.wal.WriteAheadLog` on disk:
    construction *is* recovery (snapshot + log-suffix replay with
    torn-tail truncation), and every ``compact_every`` records the log
    is compacted into a new snapshot generation.  Without ``wal_dir``
    the same record stream is kept in memory only — volatile, but it
    still feeds the ``log_since`` replica catch-up op.

    Args:
        shard_index: This shard's index in ``[0, num_shards)``.
        num_shards: Total shards in the deployment.
        tile_size: Tile edge in metres (must match every peer and client).
        host / port: Bind address; port 0 picks an ephemeral port
            (read it back from :attr:`address`).
        replica_id: This process's label within the shard's replica set.
        wal_dir: Directory for the durable write-ahead log (``None``
            keeps the mutation journal in memory only).
        fsync: WAL fsync policy — one of
            :data:`~repro.core.wal.FSYNC_POLICIES`.
        fsync_interval_s: Seconds between fsyncs under ``"interval"``.
        compact_every: Compact the WAL after this many records since the
            last snapshot (0 disables compaction).
    """

    DEFAULT_COMPACT_EVERY = 4096

    def __init__(
        self,
        shard_index: int,
        num_shards: int,
        tile_size: float,
        host: str = "127.0.0.1",
        port: int = 0,
        replica_id: int = 0,
        wal_dir: Optional[Union[str, Path]] = None,
        fsync: str = "always",
        fsync_interval_s: float = 0.05,
        compact_every: int = DEFAULT_COMPACT_EVERY,
    ) -> None:
        if not 0 <= shard_index < num_shards:
            raise ValueError(f"shard_index {shard_index} outside [0, {num_shards})")
        if tile_size <= 0.0:
            raise ValueError("tile_size must be positive")
        if compact_every < 0:
            raise ValueError("compact_every must be non-negative")
        self.shard_index = shard_index
        self.num_shards = num_shards
        self.tile_size = float(tile_size)
        self.replica_id = int(replica_id)
        #: Optional test/chaos hook called with every decoded request
        #: before dispatch; raising :class:`InjectedFault` severs the
        #: connection without a reply (see :mod:`repro.core.chaos`).
        self.fault_hook: Optional[Callable[[dict], None]] = None
        self._tiles: Dict[Tuple[int, int], Dict[Tuple[int, int], Tuple[float, float]]] = {}
        #: Owned observations regrouped per trajectory:
        #: ``traj_id -> {index: (x, y, t)}`` — the v3 reference ops read
        #: from here.  Holds exactly the points of ``_tiles``.
        self._trips: Dict[int, Dict[int, Tuple[float, float, float]]] = {}
        self._trees: Dict[Tuple[int, int], RTree[Tuple[int, int]]] = {}
        self._lock = threading.RLock()
        self._conn_lock = threading.Lock()
        self._active_conns: set = set()
        #: Mutation journal state: ``_lsn`` is the last record applied,
        #: ``_log`` the in-memory record tail ``(lsn, op, rows)`` since
        #: ``_base_lsn`` — exactly what ``log_since`` can serve.
        self._lsn = 0
        self._base_lsn = 0
        self._log: List[Tuple[int, str, list]] = []
        self._compact_every = int(compact_every)
        self._wal: Optional[WriteAheadLog] = None
        self._wal_unflushed_at_close = 0
        if wal_dir is not None:
            self._wal = WriteAheadLog(
                wal_dir, fsync=fsync, fsync_interval_s=fsync_interval_s
            )
            self._recover_from_wal()
        elif fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        self._server = _TCPServer((host, port), _ShardRequestHandler)
        self._server.shard = self
        self._thread: Optional[threading.Thread] = None

    def _recover_from_wal(self) -> None:
        """Rebuild tiles/trips from the recovered snapshot + log suffix."""
        assert self._wal is not None
        if self._wal.snapshot_rows:
            self._apply_rows("insert", self._wal.snapshot_rows)
        for __, op, rows in self._wal.records:
            self._apply_rows(op, rows)
        self._lsn = self._wal.lsn
        self._base_lsn = self._wal.base_lsn
        self._log = list(self._wal.records)
        # The replayed lists now live in self._log; drop the WAL's copies.
        self._wal.snapshot_rows = None
        self._wal.records = []

    # ----------------------------------------------------------- lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolved even when port 0 was asked."""
        host, port = self._server.server_address[:2]
        return (host, port)

    def start(self) -> "ArchiveShardServer":
        """Serve in a daemon thread (tests, benchmarks, embedding)."""
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI ``archive-serve`` path)."""
        self._server.serve_forever()

    def stop(self) -> int:
        """Stop serving, sever live connections, flush and close the WAL.

        Closing only the listener would leave in-flight handler threads
        answering their persistent connections, which makes an in-process
        "kill" unfaithful to a process death; tearing the sockets down
        makes every client see the same reset a crashed replica causes.

        Returns:
            Records that were still awaiting fsync when the WAL was
            closed (0 with no WAL or policy ``"always"``) — the
            acknowledged-but-volatile count a crash at this moment would
            have lost; the CLI reports it on shutdown.
        """
        self._server.shutdown()
        self._server.server_close()
        with self._conn_lock:
            conns = list(self._active_conns)
            self._active_conns.clear()
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            if self._wal is not None:
                self._wal_unflushed_at_close = self._wal.close()
        return self._wal_unflushed_at_close

    def _track_connection(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._active_conns.add(sock)

    def _untrack_connection(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._active_conns.discard(sock)

    # ---------------------------------------------------------------- state

    def owns(self, key: Tuple[int, int]) -> bool:
        return shard_of_tile(key, self.num_shards) == self.shard_index

    def tile_key(self, x: float, y: float) -> Tuple[int, int]:
        return (math.floor(x / self.tile_size), math.floor(y / self.tile_size))

    @property
    def num_points(self) -> int:
        with self._lock:
            return sum(len(points) for points in self._tiles.values())

    def preload(
        self, points: Iterable[Tuple[ArchivePoint, Union[Point, GPSPoint]]]
    ) -> int:
        """Ingest observations directly (CLI ``--world`` preseeding).

        Observations in tiles this shard does not own are skipped — the
        caller can stream a whole archive and each shard keeps its share.

        Returns:
            Observations kept.
        """
        kept = 0
        effective: List[list] = []
        with self._lock:
            for ref, p in points:
                key = self.tile_key(p.x, p.y)
                if not self.owns(key):
                    continue
                kept += 1
                if (ref.traj_id, ref.index) in self._tiles.get(key, ()):
                    continue  # already resident (e.g. WAL recovery preceded us)
                effective.append(
                    [
                        int(ref.traj_id),
                        int(ref.index),
                        float(p.x),
                        float(p.y),
                        float(getattr(p, "t", 0.0)),
                    ]
                )
            if effective:
                self._commit("insert", effective)
        return kept

    # ------------------------------------------------------------ durability

    def _apply_rows(self, op: str, rows: Sequence[Sequence[float]]) -> None:
        """Apply one journal record's rows to the tile/trip state."""
        if op == "insert":
            for tid, idx, x, y, *rest in rows:
                self._insert_one(
                    self.tile_key(x, y),
                    (int(tid), int(idx)),
                    (x, y),
                    float(rest[0]) if rest else 0.0,
                )
        elif op == "delete":
            for tid, idx, x, y, *__ in rows:
                self._delete_one(self.tile_key(x, y), (int(tid), int(idx)), (x, y))
        else:
            raise ValueError(f"unknown journal op {op!r}")

    def _commit(self, op: str, rows: list, lsn: Optional[int] = None) -> int:
        """Journal one effective mutation, then apply it (write-ahead).

        The WAL append happens *before* the state change and before any
        reply is framed, so an acknowledged mutation is always on disk
        (subject to the fsync policy); a crash between append and apply
        is repaired by replay.  ``lsn`` defaults to the next in sequence
        and may only be passed by ``apply_log`` (which preserves the
        donor's numbering — the gap check there guarantees it matches).
        """
        next_lsn = self._lsn + 1 if lsn is None else int(lsn)
        if next_lsn != self._lsn + 1:
            raise ValueError(f"lsn {next_lsn} leaves a gap after {self._lsn}")
        if self._wal is not None:
            self._wal.append(next_lsn, op, rows)
        self._log.append((next_lsn, op, rows))
        self._lsn = next_lsn
        self._apply_rows(op, rows)
        self._maybe_compact()
        return next_lsn

    def _maybe_compact(self) -> None:
        """Snapshot + rotate once ``compact_every`` records accumulate.

        Only the durable WAL compacts: an in-memory journal keeps its
        whole tail (it costs no I/O and lets ``log_since`` always serve
        a complete feed for catch-up in tests and embedded fleets).
        """
        if (
            self._wal is None
            or self._compact_every <= 0
            or self._lsn - self._base_lsn < self._compact_every
        ):
            return
        self._wal.rotate(self._snapshot_rows(), self._lsn)
        self._log = []
        self._base_lsn = self._lsn

    def _snapshot_rows(self) -> List[list]:
        """Every resident observation as canonical ``[tid, idx, x, y, t]``
        rows (sorted), the payload of a compaction snapshot."""
        rows: List[list] = []
        for tid in sorted(self._trips):
            points = self._trips[tid]
            for idx in sorted(points):
                x, y, t = points[idx]
                rows.append([tid, idx, x, y, t])
        return rows

    def _insert_one(
        self,
        key: Tuple[int, int],
        ref: Tuple[int, int],
        xy: Tuple[float, float],
        t: float = 0.0,
    ) -> None:
        tile = self._tiles.setdefault(key, {})
        if ref in tile:  # idempotent re-insert (client retry after lost reply)
            return
        tile[ref] = xy
        self._trips.setdefault(ref[0], {})[ref[1]] = (xy[0], xy[1], t)
        tree = self._trees.get(key)
        if tree is not None:
            tree.insert_point(Point(*xy), ref)

    def _delete_one(
        self,
        key: Tuple[int, int],
        ref: Tuple[int, int],
        xy: Tuple[float, float],
    ) -> None:
        tile = self._tiles.get(key)
        if tile is None or ref not in tile:
            return  # idempotent
        del tile[ref]
        trip = self._trips.get(ref[0])
        if trip is not None:
            trip.pop(ref[1], None)
            if not trip:
                del self._trips[ref[0]]
        tree = self._trees.get(key)
        if tree is not None:
            tree.remove_point(Point(*xy), ref)
            if len(tree) == 0:
                del self._trees[key]
        if not tile:
            del self._tiles[key]

    def _tree(self, key: Tuple[int, int]) -> RTree[Tuple[int, int]]:
        tree = self._trees.get(key)
        if tree is None:
            entries = [
                (BBox(x, y, x, y), ref) for ref, (x, y) in self._tiles[key].items()
            ]
            tree = RTree.bulk_load(entries, max_entries=32)
            self._trees[key] = tree
        return tree

    def _tiles_overlapping(self, box: BBox) -> List[Tuple[int, int]]:
        ix0 = math.floor(box.min_x / self.tile_size)
        ix1 = math.floor(box.max_x / self.tile_size)
        iy0 = math.floor(box.min_y / self.tile_size)
        iy1 = math.floor(box.max_y / self.tile_size)
        span = (ix1 - ix0 + 1) * (iy1 - iy0 + 1)
        if span <= len(self._tiles):
            return [
                (ix, iy)
                for ix in range(ix0, ix1 + 1)
                for iy in range(iy0, iy1 + 1)
                if (ix, iy) in self._tiles
            ]
        return [
            key
            for key in self._tiles
            if ix0 <= key[0] <= ix1 and iy0 <= key[1] <= iy1
        ]

    def _search_circles(
        self, queries: Sequence[Tuple[Point, float]]
    ) -> List[List[Tuple[int, int]]]:
        out: List[List[Tuple[int, int]]] = [[] for __ in queries]
        per_tile: Dict[Tuple[int, int], List[int]] = {}
        for qi, (center, radius) in enumerate(queries):
            box = BBox.around(center, radius)
            for key in self._tiles_overlapping(box):
                per_tile.setdefault(key, []).append(qi)
        for key, circle_ids in per_tile.items():
            points = self._tiles[key]
            sub = self._tree(key).search_radius_many(
                [queries[qi] for qi in circle_ids],
                position=lambda ref, points=points: Point(*points[ref]),
            )
            for qi, hits in zip(circle_ids, sub):
                out[qi].extend(hits)
        return [sorted(set(hits)) for hits in out]

    def _search_bbox(self, region: BBox) -> List[Tuple[int, int]]:
        refs: List[Tuple[int, int]] = []
        for key in self._tiles_overlapping(region):
            refs.extend(self._tree(key).search_bbox(region))
        return sorted(set(refs))

    # ------------------------------------------------------------- protocol

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "hello":
            # Version-agnostic: clients of any dialect may ask what this
            # server speaks; the reply names the protocol so mismatches
            # fail with a clear message instead of a mis-parse.
            return self._op_hello(request)
        if request.get("v") != _WIRE_V:
            return {
                "ok": False,
                "kind": "protocol",
                "error": f"unsupported wire version {request.get('v')!r}; "
                f"this server speaks {PROTOCOL_VERSION} (v: {_WIRE_V})",
            }
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return {"ok": False, "kind": "protocol", "error": f"unknown op {op!r}"}
        try:
            with self._lock:
                return handler(request)
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "kind": "bad_request", "error": repr(exc)}

    def _op_hello(self, request: dict) -> dict:
        with self._lock:
            return {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "shard_index": self.shard_index,
                "num_shards": self.num_shards,
                "replica_id": self.replica_id,
                "tile_size": self.tile_size,
                "num_points": self.num_points,
                "num_tiles": len(self._tiles),
                "lsn": self._lsn,
            }

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True}

    def _op_insert(self, request: dict) -> dict:
        # Rows are ``[tid, idx, x, y, t]``; the timestamp may be omitted
        # (v2-era callers) and defaults to 0.0 — it only feeds the
        # time-of-day reference filter, never spatial answers.
        rows = request["points"]
        for tid, idx, x, y, *__ in rows:
            key = self.tile_key(x, y)
            if not self.owns(key):
                return {
                    "ok": False,
                    "kind": "ownership",
                    "error": f"tile {key} of point ({tid}, {idx}) is owned by "
                    f"shard {shard_of_tile(key, self.num_shards)}, "
                    f"not {self.shard_index}",
                }
        # Journal only the *effective* rows: a client retry after a lost
        # reply finds every row resident, appends no record and bumps no
        # LSN — idempotence extends to the durable log, and replicas fed
        # the same stream assign identical LSNs to identical records.
        effective = []
        for tid, idx, x, y, *rest in rows:
            if (int(tid), int(idx)) in self._tiles.get(self.tile_key(x, y), ()):
                continue
            effective.append(
                [int(tid), int(idx), float(x), float(y), float(rest[0]) if rest else 0.0]
            )
        if effective:
            self._commit("insert", effective)
        # The post-mutation point count and log position let the client
        # audit replica convergence: every replica of a shard receives
        # the same stream, so divergence exposes a stale replica
        # immediately.
        return {
            "ok": True,
            "inserted": len(rows),
            "num_points": self.num_points,
            "lsn": self._lsn,
        }

    def _op_delete(self, request: dict) -> dict:
        rows = request["points"]
        effective = []
        for tid, idx, x, y, *__ in rows:
            if (int(tid), int(idx)) in self._tiles.get(self.tile_key(x, y), ()):
                effective.append([int(tid), int(idx), float(x), float(y)])
        if effective:
            self._commit("delete", effective)
        return {
            "ok": True,
            "deleted": len(rows),
            "num_points": self.num_points,
            "lsn": self._lsn,
        }

    def _op_log_since(self, request: dict) -> dict:
        """The mutation records after ``lsn`` — the replica catch-up feed.

        ``complete`` is false when the requested position predates this
        journal's retained tail (``base_lsn`` — older records were
        compacted into a snapshot): the caller cannot rebuild a peer
        from here and must fall back to demotion.
        """
        since = int(request["lsn"])
        if since < self._base_lsn:
            return {
                "ok": True,
                "complete": False,
                "lsn": self._lsn,
                "base_lsn": self._base_lsn,
                "records": [],
            }
        return {
            "ok": True,
            "complete": True,
            "lsn": self._lsn,
            "base_lsn": self._base_lsn,
            "records": [
                [lsn, op, rows] for lsn, op, rows in self._log if lsn > since
            ],
        }

    def _op_apply_log(self, request: dict) -> dict:
        """Replay a peer's record suffix, preserving its LSNs.

        Records at or below this journal's position are skipped
        (idempotent retry); the first new record must extend the local
        stream gap-free — a gap means the suffix does not match this
        replica's history, and applying it would diverge silently.
        Applied records are journalled to this server's own WAL with
        their original LSNs, so both replicas end bit-identical on disk.
        """
        applied = 0
        for record in request["records"]:
            lsn, op, rows = int(record[0]), str(record[1]), record[2]
            if op not in ("insert", "delete"):
                return {
                    "ok": False,
                    "kind": "bad_request",
                    "error": f"unknown log op {op!r}",
                }
            if lsn <= self._lsn:
                continue
            if lsn != self._lsn + 1:
                return {
                    "ok": False,
                    "kind": "log_gap",
                    "error": f"record lsn {lsn} leaves a gap after local "
                    f"lsn {self._lsn}",
                }
            self._commit(op, rows, lsn=lsn)
            applied += 1
        return {
            "ok": True,
            "applied": applied,
            "num_points": self.num_points,
            "lsn": self._lsn,
        }

    def _op_search_circles(self, request: dict) -> dict:
        queries = [(Point(x, y), r) for x, y, r in request["queries"]]
        hits = self._search_circles(queries)
        return {"ok": True, "hits": [[list(ref) for ref in h] for h in hits]}

    def _op_search_bbox(self, request: dict) -> dict:
        x0, y0, x1, y1 = request["bbox"]
        refs = self._search_bbox(BBox(x0, y0, x1, y1))
        return {"ok": True, "refs": [list(ref) for ref in refs]}

    def _op_near_pair(self, request: dict) -> dict:
        qi = Point(*request["qi"])
        qi1 = Point(*request["qi1"])
        radius = float(request["radius"])
        hits_i, hits_j = self._search_circles([(qi, radius), (qi1, radius)])
        return {
            "ok": True,
            "near_i": _group_pairs(hits_i),
            "near_j": _group_pairs(hits_j),
        }

    # --------------------------------------------- v3: reference assembly

    def _trip_summary(self, tid: int, qi: Point, qi1: Point) -> List[object]:
        """This shard's share of trajectory ``tid``, summarised for merging.

        The anchor entries are the owned observation minimising
        ``(squared_distance, index)`` w.r.t. each query point — the same
        lexicographic rule as ``Trajectory.nearest_index`` (strict ``<``
        over ascending indices), so the client's merge of per-shard minima
        equals the sequential scan over the whole trajectory, float for
        float.  Anchors ship their coordinates, not their distances: the
        client re-derives every ``d2`` from the originals with the same
        ``squared_distance_to`` expression (bit-identical by IEEE-754
        determinism), which both halves the anchor row and avoids
        trusting a wire float.

        Wire shape::

            [tid, owned, min_idx, max_idx,
             [idx_i, x_i, y_i, t_i],
             [idx_j, x_j, y_j, t_j]]
        """
        trip = self._trips[tid]
        indices = sorted(trip)
        best_i: Optional[Tuple[float, List[object]]] = None
        best_j: Optional[Tuple[float, List[object]]] = None
        for idx in indices:
            x, y, t = trip[idx]
            p = Point(x, y)
            d2i = p.squared_distance_to(qi)
            if best_i is None or d2i < best_i[0]:
                best_i = (d2i, [idx, x, y, t])
            d2j = p.squared_distance_to(qi1)
            if best_j is None or d2j < best_j[0]:
                best_j = (d2j, [idx, x, y, t])
        return [tid, len(indices), indices[0], indices[-1], best_i[1], best_j[1]]

    def _trip_span(self, tid: int, lo: int, hi: int) -> List[List[float]]:
        """Owned observations of ``tid`` with ``lo <= index <= hi``, as
        ``[idx, x, y]`` rows in ascending index order."""
        trip = self._trips.get(tid, {})
        return [
            [idx, trip[idx][0], trip[idx][1]]
            for idx in sorted(trip)
            if lo <= idx <= hi
        ]

    def _op_search_references(self, request: dict) -> dict:
        """Round 1 of a shard-side reference search (one fused request).

        Answers the φ-pair range query (exactly ``near_pair``), a
        :meth:`_trip_summary` for every *simple-reference* candidate —
        trajectories this shard saw near both query points; on dense
        data the union of the two φ-discs is several times larger, and
        summaries for splice tails/heads are cheaper fetched lazily via
        ``traj_meta`` only when the client actually attempts splicing —
        and, for candidates whose *entire* trajectory is resident here
        and whose anchors are ordered q_i-to-q_{i+1}, the speculative
        pre-assembled anchor-to-anchor span, saving the client a
        ``fetch_spans`` round.  The client only accepts an assembled
        span after verifying, from the merged summaries, that this
        shard really owned the whole trajectory.
        """
        qi = Point(*request["qi"])
        qi1 = Point(*request["qi1"])
        radius = float(request["radius"])
        hits_i, hits_j = self._search_circles([(qi, radius), (qi1, radius)])
        tids_i = {tid for tid, __ in hits_i}
        tids_j = {tid for tid, __ in hits_j}
        summaries = [
            self._trip_summary(tid, qi, qi1) for tid in sorted(tids_i & tids_j)
        ]
        assembled = []
        for summary in summaries:
            tid, owned, min_idx, max_idx = summary[0], summary[1], summary[2], summary[3]
            if min_idx != 0 or owned != max_idx + 1:
                continue  # other shards own part of this trajectory
            m, n = summary[4][0], summary[5][0]
            if m > n:
                continue  # wrong direction of travel — span never needed
            assembled.append(
                [tid, m, n, [[x, y] for __, x, y in self._trip_span(tid, m, n)]]
            )
        return {
            "ok": True,
            "near_i": _group_pairs(hits_i),
            "near_j": _group_pairs(hits_j),
            "trajs": summaries,
            "assembled": assembled,
        }

    def _op_traj_meta(self, request: dict) -> dict:
        """Summaries for the requested trajectory ids this shard owns
        points of; ids it holds nothing of are simply absent from the
        reply (another owner answers for them)."""
        qi = Point(*request["qi"])
        qi1 = Point(*request["qi1"])
        return {
            "ok": True,
            "trajs": [
                self._trip_summary(int(tid), qi, qi1)
                for tid in request["tids"]
                if int(tid) in self._trips
            ],
        }

    def _op_fetch_spans(self, request: dict) -> dict:
        """Owned ``[idx, x, y]`` rows for each requested ``[tid, lo, hi]``
        index range — the cross-shard stitching fallback for trajectories
        scattered over several tile owners.  The reply aligns 1:1 with the
        request (empty row lists included): one trajectory may appear with
        several, even overlapping, ranges in one request."""
        return {
            "ok": True,
            "spans": [
                [int(tid), self._trip_span(int(tid), int(lo), int(hi))]
                for tid, lo, hi in request["spans"]
            ],
        }

    def _op_stats(self, request: dict) -> dict:
        return {
            "ok": True,
            "shard_index": self.shard_index,
            "replica_id": self.replica_id,
            "num_points": self.num_points,
            "num_tiles": len(self._tiles),
            "num_trips": len(self._trips),
            "resident_tiles": len(self._trees),
            "resident_points": sum(len(t) for t in self._trees.values()),
            "index_bytes": sum(t.approx_nbytes() for t in self._trees.values()),
            "lsn": self._lsn,
            "base_lsn": self._base_lsn,
            "wal": self._wal.stats() if self._wal is not None else {"enabled": False},
        }

    def _op_shutdown(self, request: dict) -> dict:
        return {"ok": True}


def _group_pairs(hits: Sequence[Tuple[int, int]]) -> List[List[object]]:
    """Sorted ``(tid, idx)`` hits → ``[[tid, [idx, ...]], ...]`` wire shape."""
    grouped: Dict[int, List[int]] = {}
    for tid, idx in hits:
        grouped.setdefault(tid, []).append(idx)
    return [[tid, idxs] for tid, idxs in grouped.items()]


# ---------------------------------------------------------------- the client


class _ShardConnection:
    """One replica's persistent connection: framing, timeout, bounded retry.

    Every ``repro-remote-v4`` operation is idempotent, so a request whose
    reply was lost can be resent verbatim; the retry schedule is
    ``retries`` resends with *full-jitter* exponential backoff — each
    wait is drawn uniformly from ``[0, backoff_s · 2^(attempt−1)]``, so
    concurrent fan-out workers whose retries would otherwise be in
    lockstep spread their reconnects across a recovering shard instead
    of stampeding it.  A request that exhausts the schedule raises
    :class:`ShardTimeoutError` (timeouts) or
    :class:`ShardUnavailableError` (connection refusals/resets) — the
    degraded-shard surface callers handle.

    A *malformed* reply (frame over the protocol cap, undecodable JSON,
    a non-object payload) raises :class:`ShardProtocolError` **and drops
    the socket**: after a framing error the stream position is unknown,
    and reusing the connection would poison every subsequent request
    with leftover bytes.  The next request reconnects cleanly.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        timeout_s: float,
        retries: int,
        backoff_s: float,
        latencies: MutableSequence[float],
        rng: Optional[random.Random] = None,
        meter: Optional[WireMeter] = None,
    ) -> None:
        self.address = address
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self._latencies = latencies
        self._meter = meter
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    def _connected(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(self.address, timeout=self.timeout_s)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        """Close the (possibly desynced) socket; reconnect lazily."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop()

    def _backoff(self, attempt: int) -> float:
        """Full-jitter wait before retry ``attempt`` (1-based)."""
        return self._rng.uniform(0.0, self.backoff_s * (2 ** (attempt - 1)))

    def request(self, payload: dict) -> dict:
        op = str(payload.get("op"))
        last_error: Optional[BaseException] = None
        with self._lock:
            for attempt in range(self.retries + 1):
                if attempt:
                    time.sleep(self._backoff(attempt))
                t0 = time.perf_counter()
                try:
                    sock = self._connected()
                    _send_frame(sock, payload, self._meter)
                    response = _recv_frame(sock, self._meter)
                    if response is None:
                        raise ConnectionError("shard closed the connection")
                except (TimeoutError, socket.timeout, OSError) as exc:
                    self._drop()
                    last_error = exc
                    continue
                except (ShardProtocolError, ValueError) as exc:
                    # Malformed reply: the frame stream may be desynced —
                    # never reuse this socket (see class docstring).
                    self._drop()
                    raise ShardProtocolError(
                        f"shard {self.address[0]}:{self.address[1]} sent a "
                        f"malformed reply to {op!r}: {exc}"
                    ) from exc
                finally:
                    self._latencies.append(time.perf_counter() - t0)
                if not response.get("ok"):
                    raise ShardProtocolError(
                        f"shard {self.address[0]}:{self.address[1]} refused "
                        f"{op!r}: [{response.get('kind', 'error')}] "
                        f"{response.get('error', 'no detail')}"
                    )
                return response
        attempts = self.retries + 1
        cause = repr(last_error)
        if isinstance(last_error, (TimeoutError, socket.timeout)):
            raise ShardTimeoutError(self.address, op, attempts, cause)
        raise ShardUnavailableError(self.address, op, attempts, cause)


class _ShardConnectionPool:
    """A bounded pool of persistent connections to one replica.

    :class:`_ShardConnection` serialises requests behind a per-connection
    lock — exactly right for one blocking client, but the gateway's
    concurrent workers would all queue on a single socket per replica.
    The pool keeps up to ``size`` persistent connections to the same
    address: a request borrows an idle one (created lazily while under
    the cap, otherwise waiting for a return), so up to ``size`` requests
    are in flight to the replica *concurrently* while every socket is
    still reused across requests rather than opened per request.

    The surface — ``request`` / ``close`` / ``address`` — matches
    :class:`_ShardConnection`, so replica sets, the circuit breaker and
    the failover path are oblivious to which of the two they hold.
    ``close`` drops every pooled socket (waiting out in-flight requests,
    like the single connection's ``close``); the pool then reconnects
    lazily, which keeps ``prepare_for_fork`` semantics unchanged.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        timeout_s: float,
        retries: int,
        backoff_s: float,
        latencies: MutableSequence[float],
        size: int,
        rng: Optional[random.Random] = None,
        meter: Optional[WireMeter] = None,
    ) -> None:
        if size < 1:
            raise ValueError("a connection pool needs a positive size")
        self.address = address
        self.size = size
        self._timeout_s = timeout_s
        self._retries = retries
        self._backoff_s = backoff_s
        self._latencies = latencies
        self._meter = meter
        self._seeder = rng if rng is not None else random.Random()
        self._cond = threading.Condition()
        self._idle: List[_ShardConnection] = []
        self._conns: List[_ShardConnection] = []

    def _acquire(self) -> _ShardConnection:
        with self._cond:
            while True:
                if self._idle:
                    return self._idle.pop()
                if len(self._conns) < self.size:
                    conn = _ShardConnection(
                        self.address,
                        self._timeout_s,
                        self._retries,
                        self._backoff_s,
                        self._latencies,
                        rng=random.Random(self._seeder.getrandbits(64)),
                        meter=self._meter,
                    )
                    self._conns.append(conn)
                    return conn
                self._cond.wait()

    def _release(self, conn: _ShardConnection) -> None:
        with self._cond:
            self._idle.append(conn)
            self._cond.notify()

    def request(self, payload: dict) -> dict:
        conn = self._acquire()
        try:
            return conn.request(payload)
        finally:
            self._release(conn)

    def close(self) -> None:
        with self._cond:
            conns = list(self._conns)
        for conn in conns:
            conn.close()


# ------------------------------------------------------------- replica sets


#: Circuit-breaker states (per replica).
_CLOSED = "closed"  # healthy: reads may route here
_OPEN = "open"  # demoted: skipped until the cooldown elapses


class _ReplicaState:
    """One replica's connection plus health bookkeeping."""

    __slots__ = (
        "conn",
        "replica_id",
        "state",
        "stale",
        "consecutive_failures",
        "opened_at",
        "failures",
        "successes",
    )

    def __init__(
        self,
        conn: Union[_ShardConnection, _ShardConnectionPool],
        replica_id: int,
    ) -> None:
        self.conn = conn
        self.replica_id = replica_id
        self.state = _CLOSED
        #: A stale replica's data could not be brought current: its
        #: missing log prefix was compacted away on every healthy peer,
        #: or its contents diverged from the mutation stream.  It is
        #: excluded from routing; each cooldown a cheap probe re-checks
        #: whether a log catch-up has become possible.
        self.stale = False
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.failures = 0
        self.successes = 0

    @property
    def address(self) -> Tuple[str, int]:
        return self.conn.address

    def health(self) -> dict:
        return {
            "address": f"{self.address[0]}:{self.address[1]}",
            "replica_id": self.replica_id,
            "state": "stale" if self.stale else self.state,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "successes": self.successes,
        }


class _ReplicaSet:
    """One shard's replicas: health-tracked routing, failover, fan-out.

    Reads route to one replica and fail over transparently: candidates
    are the closed (healthy) replicas in round-robin order, then any
    demoted replica whose breaker cooldown has elapsed.  The latter pass
    through a half-open ``stats`` probe first: a replica whose point
    count *and* log position match the mutation stream this client has
    driven (``expected_points`` / ``expected_lsn``) is restored
    directly; a replica that is alive but *lagging* — restarted from an
    old WAL generation, or demoted while writes went on — is **repaired**
    before restoration by replaying the missing record suffix from a
    healthy peer (``log_since`` on the donor, ``apply_log`` on the
    laggard) and re-verifying.  Only when no complete feed exists (the
    donor compacted past the laggard's position) or the replay fails to
    converge is the replica marked stale — out of rotation, cheaply
    re-probed each cooldown.

    Mutations fan out to every healthy (closed, non-stale) replica.  A
    demoted replica must *not* receive writes out of order — it rejoins
    only through catch-up, which preserves the canonical record stream —
    so mutate skips it; a replica that fails to apply a mutation is
    demoted on the spot (it now lags by that record), and one that
    reports a divergent post-mutation point count or log position is
    marked stale.  Partial mutation failure degrades capacity, never
    correctness: the mutation succeeds if at least one replica applied
    it.

    The breaker: ``breaker_threshold`` consecutive request failures open
    a replica's circuit (reads stop routing to it); after
    ``breaker_cooldown_s`` seconds it becomes half-open and the next
    read probes it.  All timing uses a injectable monotonic ``clock`` so
    the fault-injection tests stay deterministic.
    """

    def __init__(
        self,
        shard_index: int,
        replicas: Sequence[_ReplicaState],
        expected_points: int,
        breaker_threshold: int,
        breaker_cooldown_s: float,
        clock: Callable[[], float] = time.monotonic,
        expected_lsn: int = 0,
    ) -> None:
        self.shard_index = shard_index
        self.replicas = list(replicas)
        self.expected_points = expected_points
        self.expected_lsn = expected_lsn
        self.breaker_threshold = max(1, int(breaker_threshold))
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._rotation = 0
        self.failovers = 0
        self.demotions = 0
        self.restorations = 0
        self.catchups = 0
        self.catchup_records = 0

    # ------------------------------------------------------------- breaker

    def _record_failure(self, replica: _ReplicaState) -> None:
        with self._lock:
            replica.failures += 1
            replica.consecutive_failures += 1
            if (
                replica.state == _CLOSED
                and replica.consecutive_failures >= self.breaker_threshold
            ):
                replica.state = _OPEN
                replica.opened_at = self._clock()
                self.demotions += 1
            elif replica.state == _OPEN:
                replica.opened_at = self._clock()  # restart the cooldown

    def _record_success(self, replica: _ReplicaState) -> None:
        with self._lock:
            replica.successes += 1
            replica.consecutive_failures = 0
            if replica.state == _OPEN and not replica.stale:
                replica.state = _CLOSED
                self.restorations += 1

    def _mark_lagging(self, replica: _ReplicaState) -> None:
        """A missed mutation demotes immediately, whatever the threshold:
        the replica now lags the canonical stream, and it may only rejoin
        through the probe's log catch-up."""
        with self._lock:
            replica.failures += 1
            replica.consecutive_failures += 1
            if replica.state == _CLOSED:
                replica.state = _OPEN
                self.demotions += 1
            replica.opened_at = self._clock()

    def _mark_stale(self, replica: _ReplicaState) -> None:
        with self._lock:
            replica.opened_at = self._clock()  # pace the re-probes
            if not replica.stale:
                replica.stale = True
                self.demotions += 1

    def _restore(self, replica: _ReplicaState) -> None:
        """Return a verified-current replica to the read rotation."""
        with self._lock:
            replica.successes += 1
            replica.consecutive_failures = 0
            demoted = replica.state == _OPEN or replica.stale
            replica.state = _CLOSED
            replica.stale = False
            if demoted:
                self.restorations += 1

    def _cooldown_elapsed(self, replica: _ReplicaState, now: float) -> bool:
        return (now - replica.opened_at) >= self.breaker_cooldown_s

    def _probe_eligible(self) -> List[_ReplicaState]:
        """Demoted replicas (open *or* stale) whose cooldown has elapsed."""
        now = self._clock()
        return [
            r
            for r in self.replicas
            if (r.state == _OPEN or r.stale) and self._cooldown_elapsed(r, now)
        ]

    def _read_candidates(self) -> List[_ReplicaState]:
        """Healthy replicas (round-robin), then probe-eligible demoted ones."""
        with self._lock:
            closed = [
                r for r in self.replicas if r.state == _CLOSED and not r.stale
            ]
            if closed:
                start = self._rotation % len(closed)
                self._rotation += 1
                closed = closed[start:] + closed[:start]
            half_open = self._probe_eligible()
        return closed + half_open

    def _try_restore(self, replica: _ReplicaState) -> bool:
        """Half-open probe: liveness, then data currency — with repair.

        A replica that answers but lags the expected log position is
        caught up from a healthy donor before restoration; see
        :meth:`_try_catch_up`.
        """
        try:
            stats = replica.conn.request({"op": "stats", "v": _WIRE_V})
        except RemoteArchiveError:
            self._record_failure(replica)
            return False
        with self._lock:
            expected_points = self.expected_points
            expected_lsn = self.expected_lsn
        if (
            int(stats["num_points"]) == expected_points
            and int(stats.get("lsn", -1)) == expected_lsn
        ):
            self._restore(replica)
            return True
        return self._try_catch_up(replica, int(stats.get("lsn", 0)))

    def _try_catch_up(self, replica: _ReplicaState, replica_lsn: int) -> bool:
        """Repair a lagging replica by replaying a donor's log suffix.

        Fetches the records after ``replica_lsn`` from a healthy peer
        (``log_since``), replays them onto the laggard (``apply_log``),
        and re-verifies point count and log position before restoring.
        The replica is marked stale only when repair is *impossible*
        (no healthy donor, the donor compacted past the laggard's
        position, or the replay failed to converge — i.e. the laggard's
        history diverged from the canonical stream).
        """
        with self._lock:
            donors = [
                r
                for r in self.replicas
                if r is not replica and r.state == _CLOSED and not r.stale
            ]
        if not donors:
            self._mark_stale(replica)
            return False
        try:
            feed = donors[0].conn.request(
                {"op": "log_since", "v": _WIRE_V, "lsn": max(replica_lsn, 0)}
            )
        except RemoteArchiveError:
            self._record_failure(donors[0])
            return False
        if not feed.get("ok", False) or not feed.get("complete", False):
            # The missing prefix was compacted away on the donor: only an
            # operator resync (restart from a copied snapshot) can repair
            # this replica.
            self._mark_stale(replica)
            return False
        try:
            reply = replica.conn.request(
                {"op": "apply_log", "v": _WIRE_V, "records": feed["records"]}
            )
        except RemoteArchiveError:
            self._record_failure(replica)
            return False
        with self._lock:
            expected_points = self.expected_points
            expected_lsn = self.expected_lsn
        if (
            not reply.get("ok", False)
            or int(reply.get("num_points", -1)) != expected_points
            or int(reply.get("lsn", -1)) != expected_lsn
        ):
            self._mark_stale(replica)
            return False
        with self._lock:
            self.catchups += 1
            self.catchup_records += len(feed["records"])
        self._restore(replica)
        return True

    def _maybe_probe_demoted(self) -> None:
        """Opportunistic restore of one cooled-down replica after a read.

        Keeps capacity recovering even while healthy peers absorb all
        reads; the cooldown bounds the probe rate, and a failed probe
        restarts it.
        """
        with self._lock:
            eligible = self._probe_eligible()
        if eligible:
            self._try_restore(eligible[0])

    # -------------------------------------------------------------- routing

    def request(self, payload: dict) -> dict:
        """Serve a read from one healthy replica, failing over as needed."""
        failures: List[ShardUnavailableError] = []
        candidates = self._read_candidates()
        for replica in candidates:
            if replica.state == _OPEN or replica.stale:
                if not self._try_restore(replica):
                    continue
            try:
                response = replica.conn.request(payload)
            except ShardUnavailableError as exc:
                self._record_failure(replica)
                failures.append(exc)
                self.failovers += 1
                continue
            self._record_success(replica)
            self._maybe_probe_demoted()
            return response
        op = str(payload.get("op"))
        if len(self.replicas) == 1 and len(failures) == 1:
            # Unreplicated shard: surface the underlying typed error
            # (ShardTimeoutError vs ShardUnavailableError) unchanged.
            raise failures[0]
        raise ShardExhaustedError(self.shard_index, op, len(self.replicas), failures)

    def mutate(self, payload: dict) -> dict:
        """Fan a mutation out to every healthy replica.

        Returns the first successful reply.  Demoted replicas (open or
        stale) are skipped — feeding them writes out of order would
        corrupt the per-replica record stream the catch-up protocol
        relies on; the half-open probe replays what they missed instead.
        A replica that fails to apply the mutation is demoted on the
        spot (it lags by this record now); one that disagrees with the
        first success on the post-mutation point count or log position
        is marked stale.
        """
        successes: List[Tuple[_ReplicaState, dict]] = []
        failures: List[ShardUnavailableError] = []
        targets = [r for r in self.replicas if not r.stale and r.state != _OPEN]
        if not targets:
            # The whole set is demoted: probe (and repair) any replica
            # whose cooldown has elapsed right now, rather than failing
            # the write while a healthy server sits behind an open
            # breaker.
            with self._lock:
                eligible = self._probe_eligible()
            targets = [r for r in eligible if self._try_restore(r)]
        for replica in targets:
            try:
                response = replica.conn.request(payload)
            except ShardUnavailableError as exc:
                self._mark_lagging(replica)
                failures.append(exc)
                continue
            successes.append((replica, response))
        if not successes:
            op = str(payload.get("op"))
            if len(self.replicas) == 1 and len(failures) == 1:
                raise failures[0]
            raise ShardExhaustedError(
                self.shard_index, op, len(self.replicas), failures
            )
        authoritative = successes[0][1].get("num_points")
        authoritative_lsn = successes[0][1].get("lsn")
        for replica, response in successes:
            if (
                response.get("num_points") != authoritative
                or response.get("lsn") != authoritative_lsn
            ):
                self._mark_stale(replica)
            else:
                self._record_success(replica)
        with self._lock:
            if authoritative is not None:
                self.expected_points = int(authoritative)
            if authoritative_lsn is not None:
                self.expected_lsn = int(authoritative_lsn)
        return successes[0][1]

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        for replica in self.replicas:
            replica.conn.close()

    def health(self) -> dict:
        with self._lock:
            return {
                "shard_index": self.shard_index,
                "expected_points": self.expected_points,
                "expected_lsn": self.expected_lsn,
                "failovers": self.failovers,
                "demotions": self.demotions,
                "restorations": self.restorations,
                "catchups": self.catchups,
                "catchup_records": self.catchup_records,
                "replicas": [r.health() for r in self.replicas],
            }


class RemoteShardedArchive(_ArchiveBase):
    """Archive backend served by remote :class:`ArchiveShardServer` fleet.

    Every spatial query is fanned out to the shard servers owning the
    tiles the query's region covers and the disjoint per-shard answers
    are merged into the canonical ``(traj_id, index)`` order.
    Equivalence with the in-process backends is therefore structural,
    exactly as for :class:`~repro.core.archive.ShardedArchive`: each
    observation lives in exactly one tile, each tile on exactly one
    shard.

    A trip store (whole trajectories, by id) may still live in this
    process — ``reference_mode="local"`` assembles references from it via
    ``archive.trajectory(tid)``.  With ``reference_mode="shard"`` the
    client instead runs the identical reference kernel over
    :meth:`trip_source`, and the trip store is never read during search:
    shards summarise and assemble candidates from the observations they
    own (``repro-remote-v4``), which is what removes the single-machine
    bound on archive size.

    Mutations (:meth:`add` / :meth:`remove`) forward each trip's points
    to the owning shards, so the fleet tracks the local trip store.  Use
    :meth:`attach_trips` instead when the servers were pre-seeded with the
    same archive (``repro archive-serve --world``): it registers trips
    locally without re-pushing points.

    Construction performs the ``hello`` handshake against every address
    and validates the deployment: protocol version, at least one server
    per shard index in ``[0, num_shards)``, a single tile size, and —
    when several servers claim the same shard index — that the replicas
    of each shard agree on their point count (they form that shard's
    replica set; see :class:`_ReplicaSet` for the routing, failover and
    circuit-breaker semantics).

    Args:
        addresses: One ``"host:port"`` (or ``(host, port)``) per server,
            in any order — servers are identified by their handshake
            ``shard_index``, not by list position; several servers with
            the same index form that shard's replica set.
        timeout_s: Per-request socket timeout.
        retries: Resends after a failed request (bounded; idempotent ops).
        backoff_s: Base retry delay; the wait before retry *n* is drawn
            uniformly from ``[0, backoff_s · 2^(n−1)]`` (full jitter).
        expected_tile_size: Optional cross-check against the handshake.
        replication: Optional replica count to enforce — every shard
            must then have exactly this many servers.
        breaker_threshold: Consecutive request failures that open a
            replica's circuit (each already covers the bounded retry
            schedule, so the default demotes on the first exhaustion).
        breaker_cooldown_s: Seconds a demoted replica waits before the
            half-open probe may restore it.
        latency_window: Cap on the request-latency telemetry ring.
        jitter_seed: Seed for the backoff jitter streams (tests); the
            default seeds from the OS.
        pool_size: Persistent connections kept per replica.  The default
            of 1 is the historical behaviour — one socket per replica,
            requests serialised behind its lock.  Concurrent callers
            (the serving gateway's worker pool) pass their worker count
            so each replica multiplexes up to that many in-flight
            requests over reused sockets (see
            :class:`_ShardConnectionPool`).  Results are identical at
            any pool size.
    """

    def __init__(
        self,
        addresses: Sequence[Union[str, Tuple[str, int]]],
        timeout_s: float = 5.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        expected_tile_size: Optional[float] = None,
        replication: Optional[int] = None,
        breaker_threshold: int = 1,
        breaker_cooldown_s: float = 1.0,
        latency_window: int = LATENCY_WINDOW,
        jitter_seed: Optional[int] = None,
        pool_size: int = 1,
    ) -> None:
        if not addresses:
            raise ValueError("a remote archive needs at least one shard address")
        if replication is not None and replication < 1:
            raise ValueError("replication must be a positive replica count")
        if pool_size < 1:
            raise ValueError("pool_size must be a positive connection count")
        super().__init__()
        self.request_latencies: MutableSequence[float] = deque(maxlen=latency_window)
        #: Bytes/frames in both directions across all shard connections.
        self.wire_meter = WireMeter()
        self._timeout_s = timeout_s
        self._retries = retries
        self._backoff_s = backoff_s
        self._pool_size = pool_size
        seeder = random.Random(jitter_seed)
        if pool_size == 1:
            connections = [
                _ShardConnection(
                    parse_address(a),
                    timeout_s,
                    retries,
                    backoff_s,
                    self.request_latencies,
                    rng=random.Random(seeder.getrandbits(64)),
                    meter=self.wire_meter,
                )
                for a in addresses
            ]
        else:
            connections = [
                _ShardConnectionPool(
                    parse_address(a),
                    timeout_s,
                    retries,
                    backoff_s,
                    self.request_latencies,
                    size=pool_size,
                    rng=random.Random(seeder.getrandbits(64)),
                    meter=self.wire_meter,
                )
                for a in addresses
            ]
        by_index: Dict[int, List[Tuple[_ShardConnection, dict]]] = {}
        tile_size: Optional[float] = None
        num_shards: Optional[int] = None
        for conn in connections:
            hello = conn.request({"op": "hello", "v": _WIRE_V})
            if hello.get("protocol") != PROTOCOL_VERSION:
                raise ShardProtocolError(
                    f"shard {conn.address} speaks {hello.get('protocol')!r}, "
                    f"expected {PROTOCOL_VERSION!r}"
                )
            n = int(hello["num_shards"])
            if num_shards is None:
                num_shards = n
            elif n != num_shards:
                raise ShardProtocolError(
                    f"server {conn.address} is part of a {n}-shard deployment "
                    f"but its peers report {num_shards} shards"
                )
            size = float(hello["tile_size"])
            if tile_size is None:
                tile_size = size
            elif size != tile_size:
                raise ShardProtocolError(
                    f"inconsistent tile sizes across shards: {tile_size} vs "
                    f"{size} at {conn.address}"
                )
            by_index.setdefault(int(hello["shard_index"]), []).append((conn, hello))
        assert tile_size is not None and num_shards is not None
        missing = sorted(set(range(num_shards)) - set(by_index))
        extraneous = sorted(set(by_index) - set(range(num_shards)))
        if missing or extraneous:
            raise ShardProtocolError(
                f"shard(s) {missing or extraneous} of the {num_shards}-shard "
                f"deployment have no server among the given addresses"
                if missing
                else f"server(s) claim shard(s) {extraneous} outside the "
                f"{num_shards}-shard deployment"
            )
        if expected_tile_size is not None and tile_size != float(expected_tile_size):
            raise ShardProtocolError(
                f"shards use tile_size={tile_size}, caller expected "
                f"{float(expected_tile_size)}"
            )
        self._tile_size = tile_size
        self._shards: List[_ReplicaSet] = []
        for index in range(num_shards):
            members = by_index[index]
            if replication is not None and len(members) != replication:
                raise ShardProtocolError(
                    f"shard {index} has {len(members)} replica(s) at "
                    f"{[m[0].address for m in members]} but --replication "
                    f"{replication} was requested"
                )
            counts = {int(h["num_points"]) for __, h in members}
            if len(counts) > 1:
                raise ShardProtocolError(
                    f"replicas of shard {index} diverge before any query: "
                    f"point counts {sorted(counts)} across "
                    f"{[m[0].address for m in members]}"
                )
            lsns = {int(h.get("lsn", 0)) for __, h in members}
            if len(lsns) > 1:
                raise ShardProtocolError(
                    f"replicas of shard {index} diverge before any query: "
                    f"log positions {sorted(lsns)} across "
                    f"{[m[0].address for m in members]}"
                )
            self._shards.append(
                _ReplicaSet(
                    index,
                    [
                        _ReplicaState(conn, int(h.get("replica_id", i)))
                        for i, (conn, h) in enumerate(members)
                    ],
                    expected_points=counts.pop(),
                    breaker_threshold=breaker_threshold,
                    breaker_cooldown_s=breaker_cooldown_s,
                    expected_lsn=lsns.pop(),
                )
            )
        self._executor_lock = threading.Lock()
        self._executor = None

    # ------------------------------------------------------------- plumbing

    @property
    def tile_size(self) -> float:
        return self._tile_size

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def replication(self) -> List[int]:
        """Replica count per shard index."""
        return [len(s.replicas) for s in self._shards]

    def tile_key(self, p: Point) -> Tuple[int, int]:
        return (
            math.floor(p.x / self._tile_size),
            math.floor(p.y / self._tile_size),
        )

    def close(self) -> None:
        """Drop sockets and the fan-out thread pool (reconnects lazily)."""
        for shard in self._shards:
            shard.close()
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
                self._executor = None

    def __enter__(self) -> "RemoteShardedArchive":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def prepare_for_fork(self) -> None:
        """Called by the batch pool right before forking workers.

        Sockets and thread pools do not survive ``fork``; dropping them
        here makes every worker (and the parent) reconnect lazily on its
        next request instead of sharing a corrupted stream.
        """
        self.close()

    def reset_latencies(self) -> None:
        self.request_latencies.clear()

    def trip_source(self) -> "RemoteTripSource":
        """A :class:`RemoteTripSource` running reference assembly on the
        fleet (``reference_mode="shard"``).  Requires servers whose tiles
        were fed timestamped observations (v3 inserts or ``--world``
        preseeding); the client-held trip store is not consulted."""
        return RemoteTripSource(self)

    def _pool(self):
        from concurrent.futures import ThreadPoolExecutor

        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(1, len(self._shards)),
                    thread_name_prefix="repro-remote",
                )
            return self._executor

    def _fan_out(
        self, payloads: Dict[int, dict], mutate: bool = False
    ) -> Dict[int, dict]:
        """Issue one request per shard concurrently; raise on any failure.

        Reads route to one healthy replica per shard (with transparent
        failover); mutations fan out to every replica of each shard.
        """
        if not payloads:
            return {}

        def call(index: int, payload: dict) -> dict:
            shard = self._shards[index]
            return shard.mutate(payload) if mutate else shard.request(payload)

        if len(payloads) == 1:
            ((index, payload),) = payloads.items()
            return {index: call(index, payload)}
        futures = {
            index: self._pool().submit(call, index, payload)
            for index, payload in payloads.items()
        }
        return {index: future.result() for index, future in futures.items()}

    # --------------------------------------------------------- shard routing

    #: Covered-tile enumeration cap: a query box spanning more tiles than
    #: this is simply broadcast to every shard (enumerating the owners
    #: would cost more than the spare requests it saves).
    _ENUMERATION_CAP = 4096

    def _shards_for_boxes(self, boxes: Sequence[BBox]) -> Dict[int, List[int]]:
        """Shard index → indices of the boxes whose tiles it may own."""
        n = len(self._shards)
        out: Dict[int, List[int]] = {}
        for bi, box in enumerate(boxes):
            ix0 = math.floor(box.min_x / self._tile_size)
            ix1 = math.floor(box.max_x / self._tile_size)
            iy0 = math.floor(box.min_y / self._tile_size)
            iy1 = math.floor(box.max_y / self._tile_size)
            span = (ix1 - ix0 + 1) * (iy1 - iy0 + 1)
            if span > self._ENUMERATION_CAP or span >= n * 8:
                owners = range(n)
            else:
                owners = {
                    shard_of_tile((ix, iy), n)
                    for ix in range(ix0, ix1 + 1)
                    for iy in range(iy0, iy1 + 1)
                }
            for owner in owners:
                out.setdefault(owner, []).append(bi)
        return out

    # ------------------------------------------------------------ mutations

    def _rows_by_shard(self, trajectory: Trajectory) -> Dict[int, List[List[float]]]:
        rows: Dict[int, List[List[float]]] = {}
        n = len(self._shards)
        for i, p in enumerate(trajectory.points):
            owner = shard_of_tile(self.tile_key(p.point), n)
            rows.setdefault(owner, []).append(
                [trajectory.traj_id, i, p.point.x, p.point.y, p.t]
            )
        return rows

    def _on_add(self, trajectory: Trajectory) -> None:
        self._fan_out(
            {
                shard: {"op": "insert", "v": _WIRE_V, "points": rows}
                for shard, rows in self._rows_by_shard(trajectory).items()
            },
            mutate=True,
        )

    def _on_remove(self, trajectory: Trajectory) -> None:
        self._fan_out(
            {
                shard: {"op": "delete", "v": _WIRE_V, "points": rows}
                for shard, rows in self._rows_by_shard(trajectory).items()
            },
            mutate=True,
        )

    def attach_trips(self, trips: Iterable[Trajectory]) -> None:
        """Register trips locally *without* pushing points to the shards.

        For deployments whose servers were pre-seeded with the same
        archive (``repro archive-serve --world``): the client still needs
        the trip store for reference assembly, but the observations are
        already resident on the fleet.

        Raises:
            ValueError: On a duplicate trip id.
        """
        for trajectory in trips:
            tid = trajectory.traj_id
            if tid in self._trajectories:
                raise ValueError(f"trajectory id {tid} already present")
            self._trajectories[tid] = trajectory
            self._next_id = max(self._next_id, tid + 1)

    # -------------------------------------------------------------- queries

    def _search_circles(
        self, queries: Sequence[Tuple[Point, float]]
    ) -> List[List[ArchivePoint]]:
        out: List[List[ArchivePoint]] = [[] for __ in queries]
        if not queries:
            return out
        boxes = [BBox.around(center, radius) for center, radius in queries]
        payloads = {}
        members: Dict[int, List[int]] = {}
        for shard, circle_ids in self._shards_for_boxes(boxes).items():
            members[shard] = circle_ids
            payloads[shard] = {
                "op": "search_circles",
                "v": _WIRE_V,
                "queries": [
                    [queries[qi][0].x, queries[qi][0].y, queries[qi][1]]
                    for qi in circle_ids
                ],
            }
        for shard, response in self._fan_out(payloads).items():
            for qi, hits in zip(members[shard], response["hits"]):
                out[qi].extend(ArchivePoint(int(t), int(i)) for t, i in hits)
        # Tiles are disjoint and each tile lives on one shard, so the
        # per-shard answers are disjoint; sorting restores canonical order.
        return [sorted(set(hits), key=_ref_key) for hits in out]

    def points_in_bbox(self, region: BBox) -> List[ArchivePoint]:
        payloads = {
            shard: {
                "op": "search_bbox",
                "v": _WIRE_V,
                "bbox": [region.min_x, region.min_y, region.max_x, region.max_y],
            }
            for shard in self._shards_for_boxes([region])
        }
        refs: List[ArchivePoint] = []
        for response in self._fan_out(payloads).values():
            refs.extend(ArchivePoint(int(t), int(i)) for t, i in response["refs"])
        return sorted(set(refs), key=_ref_key)

    def trajectories_near_pair(
        self, qi: Point, qi1: Point, radius: float
    ) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
        """Remote fan-out of the reference search's φ-pair query.

        Each owning shard answers both circles for its tiles in one
        request (``near_pair``); the per-shard near-maps are merged by
        concatenating index lists per trajectory id, then re-sorted into
        the canonical shape — ascending trajectory ids, each with its
        sorted observation indices — matching
        :meth:`repro.core.archive._ArchiveBase.trajectories_near_pair`
        bit for bit.
        """
        boxes = [BBox.around(qi, radius), BBox.around(qi1, radius)]
        shards = sorted(self._shards_for_boxes(boxes))
        payload = {
            "op": "near_pair",
            "v": _WIRE_V,
            "qi": [qi.x, qi.y],
            "qi1": [qi1.x, qi1.y],
            "radius": radius,
        }
        responses = self._fan_out({shard: dict(payload) for shard in shards})
        near_i: Dict[int, List[int]] = {}
        near_j: Dict[int, List[int]] = {}
        for response in responses.values():
            for accumulator, field in ((near_i, "near_i"), (near_j, "near_j")):
                for tid, idxs in response[field]:
                    accumulator.setdefault(int(tid), []).extend(int(v) for v in idxs)
        return _canonical_near_map(near_i), _canonical_near_map(near_j)

    # ------------------------------------------------------------ telemetry

    def ping(self) -> List[float]:
        """Round-trip seconds per shard (served by one healthy replica;
        raises only when a whole replica set is degraded)."""
        out = []
        for shard in self._shards:
            t0 = time.perf_counter()
            shard.request({"op": "ping", "v": _WIRE_V})
            out.append(time.perf_counter() - t0)
        return out

    def shard_stats(self) -> List[dict]:
        """Per-shard resident-size stats, ordered by shard index.

        Each shard's stats come from whichever replica currently serves
        its reads (``replica_id`` in the payload names it).
        """
        responses = self._fan_out(
            {
                shard: {"op": "stats", "v": _WIRE_V}
                for shard in range(len(self._shards))
            }
        )
        out = []
        for shard in range(len(self._shards)):
            stats = dict(responses[shard])
            stats.pop("ok", None)
            out.append(stats)
        return out

    def replica_health(self) -> List[dict]:
        """Per-shard health: breaker states, failover/demotion counters.

        Purely local bookkeeping — no network traffic — so it is safe to
        poll from monitoring even while the fleet is degraded.
        """
        return [shard.health() for shard in self._shards]

    @property
    def failover_count(self) -> int:
        """Reads that were transparently retried against a peer replica."""
        return sum(s.failovers for s in self._shards)

    def backend_stats(self) -> dict:
        health = self.replica_health()
        return {
            "backend": "remote",
            "wire": self.wire_meter.snapshot(),
            "n_trajectories": len(self),
            "n_points": self.num_points,
            "num_shards": self.num_shards,
            "replication": self.replication,
            "healthy_replicas": sum(
                1
                for shard in health
                for replica in shard["replicas"]
                if replica["state"] == "closed"
            ),
            "total_replicas": sum(len(s["replicas"]) for s in health),
            "failovers": sum(s["failovers"] for s in health),
            "demotions": sum(s["demotions"] for s in health),
            "restorations": sum(s["restorations"] for s in health),
            "catchups": sum(s["catchups"] for s in health),
            "catchup_records": sum(s["catchup_records"] for s in health),
            "latency_window": self.request_latencies.maxlen,
            "latencies_recorded": len(self.request_latencies),
            "pool_size": self._pool_size,
            "wal": self._wal_summary(),
        }

    def _wal_summary(self) -> dict:
        """Server-side WAL durability counters summed across shards.

        One ``stats`` probe per shard (whichever replica serves reads);
        shards running without a WAL directory contribute nothing.  An
        unreachable fleet yields ``reachable: False`` rather than an
        exception — ``backend_stats`` feeds metrics paths that must not
        fail while the fleet is degraded.
        """
        summary = {
            "enabled_shards": 0,
            "records_appended": 0,
            "fsyncs": 0,
            "compactions": 0,
            "unflushed_records": 0,
            "reachable": True,
        }
        try:
            per_shard = self.shard_stats()
        except RemoteArchiveError:
            summary["reachable"] = False
            return summary
        for shard in per_shard:
            wal = shard.get("wal") or {}
            if not wal.get("enabled"):
                continue
            summary["enabled_shards"] += 1
            for key in (
                "records_appended",
                "fsyncs",
                "compactions",
                "unflushed_records",
            ):
                summary[key] += int(wal.get(key, 0))
        return summary


def _canonical_near_map(raw: Dict[int, List[int]]) -> Dict[int, List[int]]:
    return {tid: sorted(raw[tid]) for tid in sorted(raw)}


# ------------------------------------------------- shard-side reference trips


class _TripMeta:
    """Merged cross-shard view of one candidate trajectory."""

    __slots__ = ("total", "anchor_i", "anchor_j", "owners")

    def __init__(
        self,
        total: int,
        anchor_i: "TripAnchor",
        anchor_j: "TripAnchor",
        owners: List[Tuple[int, int, int]],
    ) -> None:
        self.total = total
        self.anchor_i = anchor_i
        self.anchor_j = anchor_j
        #: ``(shard_index, min_owned_idx, max_owned_idx)`` per owning shard
        #: — the ranges may interleave (ownership is per tile, and a
        #: trajectory may zig-zag between tiles), but each index lives on
        #: exactly one shard.
        self.owners = owners


class RemoteTripSource:
    """``repro.core.reference.TripSource`` over the ``repro-remote-v4`` wire.

    Reference assembly without a client-held trip store, in at most three
    request rounds per query pair:

    1. **search_references** (fan-out to the φ-overlapping shards): the
       near-maps of both query circles, a per-shard summary of every
       candidate trajectory (owned count, index range, and the owned
       observation minimising ``(squared_distance, index)`` w.r.t. each
       query point), and speculative pre-assembled spans for candidates
       wholly resident on one shard.
    2. **traj_meta** (lazy, via :meth:`announce`): summaries from the
       shards that have not yet reported a candidate — needed because a
       trajectory's far-away points may be owned by shards the φ-boxes
       never touched.
    3. **fetch_spans** (lazy, via :meth:`prefetch_spans`): ``[idx, x, y]``
       rows from every shard whose owned index range overlaps a requested
       span, stitched back into ascending index order client-side.

    Bit-identity with :class:`~repro.core.reference.ArchiveTripSource`
    holds by construction: per-shard anchor minima merge lexicographically
    to exactly ``Trajectory.nearest_index``'s answer (strict ``<`` over
    ascending indices), anchors and spans carry the original coordinates
    (JSON round-trips floats exactly), and the near-maps are the canonical
    merge already gated for the spatial ops.  Incomplete coverage — a span
    index or trajectory share no shard accounts for — raises
    :class:`ShardProtocolError` instead of silently assembling a partial
    reference; per-replica failures below that are handled by the usual
    failover/breaker machinery, invisible here.
    """

    def __init__(self, archive: RemoteShardedArchive) -> None:
        self._archive = archive
        self._qi: Optional[Point] = None
        self._qi1: Optional[Point] = None
        #: tid -> shard -> raw wire summary (see ``_trip_summary``).
        self._summaries: Dict[int, Dict[int, list]] = {}
        #: shard -> tids whose share this shard has reported (possibly
        #: empty shares, after a ``traj_meta`` ask).
        self._answered: Dict[int, set] = {}
        #: Speculative round-1 spans, pending acceptance during merge.
        self._assembled: Dict[int, Tuple[int, int, int, Tuple[Point, ...]]] = {}
        self._meta: Dict[int, _TripMeta] = {}
        self._spans: Dict[Tuple[int, int, int], Tuple[Point, ...]] = {}

    # ------------------------------------------------------ TripSource API

    def near_pair(
        self, qi: Point, qi1: Point, radius: float
    ) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
        archive = self._archive
        self._qi = qi
        self._qi1 = qi1
        self._summaries.clear()
        self._answered.clear()
        self._assembled.clear()
        self._meta.clear()
        self._spans.clear()
        boxes = [BBox.around(qi, radius), BBox.around(qi1, radius)]
        shards = sorted(archive._shards_for_boxes(boxes))
        payload = {
            "op": "search_references",
            "v": _WIRE_V,
            "qi": [qi.x, qi.y],
            "qi1": [qi1.x, qi1.y],
            "radius": radius,
        }
        responses = archive._fan_out({shard: dict(payload) for shard in shards})
        near_i: Dict[int, List[int]] = {}
        near_j: Dict[int, List[int]] = {}
        for shard, response in responses.items():
            for accumulator, field in ((near_i, "near_i"), (near_j, "near_j")):
                for tid, idxs in response[field]:
                    accumulator.setdefault(int(tid), []).extend(int(v) for v in idxs)
            answered = self._answered.setdefault(shard, set())
            for summary in response["trajs"]:
                tid = int(summary[0])
                self._summaries.setdefault(tid, {})[shard] = summary
                answered.add(tid)
            for tid, lo, hi, pts in response["assembled"]:
                self._assembled[int(tid)] = (
                    shard,
                    int(lo),
                    int(hi),
                    tuple(Point(x, y) for x, y in pts),
                )
        return _canonical_near_map(near_i), _canonical_near_map(near_j)

    def announce(self, tids) -> None:
        qi, qi1 = self._qi, self._qi1
        pending = sorted({int(t) for t in tids} - set(self._meta))
        if not pending:
            return
        payloads: Dict[int, dict] = {}
        for shard in range(self._archive.num_shards):
            answered = self._answered.setdefault(shard, set())
            missing = [t for t in pending if t not in answered]
            if missing:
                payloads[shard] = {
                    "op": "traj_meta",
                    "v": _WIRE_V,
                    "tids": missing,
                    "qi": [qi.x, qi.y],
                    "qi1": [qi1.x, qi1.y],
                }
        for shard, response in self._archive._fan_out(payloads).items():
            for summary in response["trajs"]:
                tid = int(summary[0])
                self._summaries.setdefault(tid, {})[shard] = summary
            self._answered[shard].update(payloads[shard]["tids"])
        for tid in pending:
            self._meta[tid] = self._merge(tid)

    def anchor_i(self, tid: int) -> "TripAnchor":
        return self._require_meta(tid).anchor_i

    def anchor_j(self, tid: int) -> "TripAnchor":
        return self._require_meta(tid).anchor_j

    def last_index(self, tid: int) -> int:
        return self._require_meta(tid).total - 1

    def prefetch_spans(self, spans) -> None:
        need = []
        for tid, lo, hi in spans:
            key = (int(tid), int(lo), int(hi))
            if key not in self._spans and key not in need:
                need.append(key)
        if not need:
            return
        payloads: Dict[int, dict] = {}
        for tid, lo, hi in need:
            for shard, owned_lo, owned_hi in self._require_meta(tid).owners:
                if owned_lo <= hi and owned_hi >= lo:
                    payloads.setdefault(
                        shard, {"op": "fetch_spans", "v": _WIRE_V, "spans": []}
                    )["spans"].append([tid, lo, hi])
        rows: Dict[Tuple[int, int, int], Dict[int, Point]] = {k: {} for k in need}
        for shard, response in self._archive._fan_out(payloads).items():
            requested = payloads[shard]["spans"]
            replied = response["spans"]
            if len(replied) != len(requested):
                raise ShardProtocolError(
                    f"shard {shard} answered {len(replied)} span(s) for a "
                    f"{len(requested)}-span fetch"
                )
            for (tid, lo, hi), (echo_tid, row_list) in zip(requested, replied):
                if int(echo_tid) != tid:
                    raise ShardProtocolError(
                        f"shard {shard} answered trajectory {echo_tid} for a "
                        f"span of trajectory {tid}"
                    )
                bucket = rows[(tid, lo, hi)]
                for idx, x, y in row_list:
                    bucket[int(idx)] = Point(x, y)
        for key in need:
            tid, lo, hi = key
            bucket = rows[key]
            missing = [i for i in range(lo, hi + 1) if i not in bucket]
            if missing:
                raise ShardProtocolError(
                    f"stitched span [{lo}, {hi}] of trajectory {tid} is "
                    f"missing {len(missing)} index(es), first {missing[:5]} — "
                    f"shard coverage is incomplete"
                )
            self._spans[key] = tuple(bucket[i] for i in range(lo, hi + 1))

    def span(self, tid: int, lo: int, hi: int) -> Tuple[Point, ...]:
        key = (int(tid), int(lo), int(hi))
        cached = self._spans.get(key)
        if cached is None:
            self.prefetch_spans([key])
            cached = self._spans[key]
        return cached

    # ------------------------------------------------------------ internals

    def _require_meta(self, tid: int) -> _TripMeta:
        meta = self._meta.get(tid)
        if meta is None:
            self.announce([tid])
            meta = self._meta[tid]
        return meta

    def _merge(self, tid: int) -> _TripMeta:
        """Fold per-shard summaries into the global trajectory view.

        The global nearest observation to a query point is the
        lexicographic minimum of ``(squared_distance, index)`` over all
        points; each shard reports its local minimum over the indices it
        owns, so taking the minimum of the minima reproduces the
        sequential ``Trajectory.nearest_index`` scan exactly.  Anchor
        rows carry coordinates only — the distances are re-derived here
        with the same ``squared_distance_to`` the shard scan used, so
        the merge keys are bit-identical to the shard-local ones.
        """
        per_shard = self._summaries.get(tid, {})
        if not per_shard:
            raise ShardProtocolError(
                f"no shard reported any point of trajectory {tid}"
            )
        total = 0
        min_idx: Optional[int] = None
        max_idx: Optional[int] = None
        best_i: Optional[Tuple[float, int, list]] = None
        best_j: Optional[Tuple[float, int, list]] = None
        owners: List[Tuple[int, int, int]] = []
        for shard in sorted(per_shard):
            summary = per_shard[shard]
            owned, lo, hi = int(summary[1]), int(summary[2]), int(summary[3])
            total += owned
            min_idx = lo if min_idx is None else min(min_idx, lo)
            max_idx = hi if max_idx is None else max(max_idx, hi)
            owners.append((shard, lo, hi))
            cand_i, cand_j = summary[4], summary[5]
            d2i = Point(cand_i[1], cand_i[2]).squared_distance_to(self._qi)
            if best_i is None or (d2i, cand_i[0]) < (best_i[0], best_i[1]):
                best_i = (d2i, cand_i[0], cand_i)
            d2j = Point(cand_j[1], cand_j[2]).squared_distance_to(self._qi1)
            if best_j is None or (d2j, cand_j[0]) < (best_j[0], best_j[1]):
                best_j = (d2j, cand_j[0], cand_j)
        if min_idx != 0 or max_idx + 1 != total:
            raise ShardProtocolError(
                f"trajectory {tid} has incomplete shard coverage: indices "
                f"[{min_idx}, {max_idx}] but only {total} owned point(s) "
                f"across shards {[s for s, __, __ in owners]}"
            )
        from repro.core.reference import TripAnchor

        row_i, row_j = best_i[2], best_j[2]
        anchor_i = TripAnchor(
            index=int(row_i[0]), point=Point(row_i[1], row_i[2]), t=float(row_i[3])
        )
        anchor_j = TripAnchor(
            index=int(row_j[0]), point=Point(row_j[1], row_j[2]), t=float(row_j[3])
        )
        speculative = self._assembled.pop(tid, None)
        if speculative is not None:
            shard, lo, hi, pts = speculative
            # Accept the round-1 pre-assembled span only when the merged
            # view confirms that shard owned the *whole* trajectory and
            # the span is exactly the anchor-to-anchor range.
            if (
                len(per_shard) == 1
                and shard in per_shard
                and lo == anchor_i.index
                and hi == anchor_j.index
                and len(pts) == hi - lo + 1
            ):
                self._spans[(tid, lo, hi)] = pts
        return _TripMeta(total, anchor_i, anchor_j, owners)


def request_shutdown(
    address: Union[str, Tuple[str, int]], timeout_s: float = 5.0
) -> None:
    """Ask the shard server at ``address`` to shut down (orderly teardown)."""
    conn = _ShardConnection(parse_address(address), timeout_s, 0, 0.0, [])
    try:
        conn.request({"op": "shutdown", "v": _WIRE_V})
    finally:
        conn.close()
