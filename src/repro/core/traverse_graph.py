"""Traverse-graph based local route inference — TGI (Sec. III-B.1, Alg. 1).

The traverse graph is a conceptual directed graph whose nodes are the road
segments actually travelled by some reference trajectory (*traverse edges*,
Definition 9) and whose links connect each node to the traverse edges in its
λ-neighborhood (Definition 8).  Inference = top-K shortest paths on this
graph between the candidate edges of ``q_i`` (sources) and of ``q_{i+1}``
(destinations), projected back onto the physical road network.

Both subroutines of Algorithm 1 are implemented:

* ``graph augmentation`` (line 9) — when the traverse graph is not strongly
  connected, the closest node pair across two components is linked in both
  directions until one component remains (the k = 1 connectivity
  augmentation the paper reduces to a spanning-tree problem);
* ``graph reduction`` (line 10) — hop-redundant links (a direct link whose
  endpoints are also joined by a two-link path of equal hop length through a
  third node) are removed, the paper's transitive-reduction step, which
  pays off at larger λ (reproduced in Fig. 11b / 12b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.reference import Reference, reference_traversed_segments
from repro.geo.point import Point, midpoint
from repro.roadnet.connectivity import strongly_connected_components
from repro.roadnet.ksp import yen_k_shortest_paths
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route
from repro.roadnet.shortest_path import shortest_route_between_segments

__all__ = ["TGIConfig", "TGIStats", "TraverseGraphInference"]


def _filter_detours(
    network: RoadNetwork,
    routes: List[Route],
    ratio: float,
    yardstick: Optional[float] = None,
) -> List[Route]:
    """Drop routes longer than ``ratio`` times the reference length.

    With a ``yardstick`` (normally the network shortest-path distance
    between the pair's endpoints) the bound is strict — a candidate set can
    legitimately come back empty, and callers fall back to another method.
    Without one, the bound is relative to the shortest candidate, which
    always survives.
    """
    if not routes or ratio <= 0:
        return routes
    lengths = [r.length(network) for r in routes]
    if yardstick is not None:
        bound = max(yardstick, 1.0) * ratio
    else:
        bound = min(lengths) * ratio
    return [r for r, length in zip(routes, lengths) if length <= bound]


@dataclass(frozen=True, slots=True)
class TGIConfig:
    """TGI parameters (Table II defaults).

    Attributes:
        lam: λ, radius of the hop neighborhood (default 4).
        k_shortest: K of the K-shortest-path search per source/destination
            pair (the paper's k1, default 5).
        candidate_radius: ε of the candidate-edge search in metres.
        use_augmentation: Run the graph-augmentation subroutine.
        use_reduction: Run the graph-reduction subroutine.
        max_endpoint_candidates: Candidate edges of q_i / q_{i+1} used as
            sources/destinations (4 keeps both directions of the two
            nearest streets in play).
        support_weighted: Discount link costs by reference support, so the
            K-shortest-path search ranks heavily travelled corridors ahead
            of geometrically shorter but untravelled ones — the stated
            motivation of Sec. III-B.1 ("if R_a is the shortest path but is
            not travelled by any reference while R_b is heavily traversed
            but longer, we have more confidence in R_b").
        max_routes: Cap on distinct local routes returned.
        max_detour_ratio: Local routes longer than this multiple of the
            shortest returned route are discarded (all candidates connect
            the same endpoints, so gross detours are never competitive).
    """

    lam: int = 4
    k_shortest: int = 5
    candidate_radius: float = 50.0
    use_augmentation: bool = True
    use_reduction: bool = True
    max_endpoint_candidates: int = 4
    max_routes: int = 10
    max_detour_ratio: float = 1.5
    support_weighted: bool = True

    def __post_init__(self) -> None:
        if self.lam < 1:
            raise ValueError("lambda must be at least 1")
        if self.k_shortest < 1:
            raise ValueError("k_shortest must be at least 1")
        if self.candidate_radius <= 0:
            raise ValueError("candidate_radius must be positive")


@dataclass(slots=True)
class TGIStats:
    """Instrumentation of one TGI invocation (drives Figs. 11–12)."""

    n_traverse_edges: int = 0
    n_links: int = 0
    n_links_removed: int = 0
    n_links_augmented: int = 0
    n_ksp_calls: int = 0


@dataclass(slots=True)
class _Link:
    """A traverse-graph link ``r → s``.

    ``via`` holds the intermediate physical segments between r and s
    (exclusive of both); None marks an augmentation bridge that must be
    re-routed on the road network at projection time.
    """

    weight: float
    hops: int
    via: Optional[Tuple[int, ...]]


class TraverseGraphInference:
    """Local route inference on the traverse graph.

    Args:
        engine: Optional :class:`~repro.roadnet.engine.RoutingEngine`
            providing memoised candidate-edge lookups, reference-support
            sets and ALT-accelerated bridge routing.  Results are identical
            with or without it.
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: TGIConfig = TGIConfig(),
        engine=None,
    ) -> None:
        self._network = network
        self._config = config
        self._engine = engine

    def infer(
        self, qi: Point, qi1: Point, references: Sequence[Reference]
    ) -> Tuple[List[Route], TGIStats]:
        """Infer the local routes between ``q_i`` and ``q_{i+1}``.

        Returns:
            ``(routes, stats)``.  Routes are deduplicated, ordered by
            traverse-graph path cost, at most ``max_routes`` of them; empty
            when there are no references or no connectable candidates.
        """
        cfg = self._config
        stats = TGIStats()

        support = self._collect_support(references)
        traverse_edges = set(support)
        stats.n_traverse_edges = len(traverse_edges)
        if not traverse_edges:
            return [], stats

        sources = self._endpoint_candidates(qi)
        destinations = self._endpoint_candidates(qi1)
        if not sources or not destinations:
            return [], stats

        nodes: Set[int] = set(traverse_edges) | set(sources) | set(destinations)
        links = self._build_links(nodes, traverse_edges, sources, support)
        stats.n_links = sum(len(v) for v in links.values())

        if cfg.use_augmentation:
            stats.n_links_augmented = self._augment(nodes, links)
        if cfg.use_reduction:
            stats.n_links_removed = self._reduce(links)

        # Materialised adjacency: the K-shortest-path search touches these
        # lists hundreds of thousands of times, so plain tuples handed to
        # the search as a mapping beat a fresh generator per expansion.
        adj_lists: Dict[int, Tuple[Tuple[int, float], ...]] = {
            node: tuple((target, link.weight) for target, link in out.items())
            for node, out in links.items()
        }

        seen: Set[Tuple[int, ...]] = set()
        scored: List[Tuple[float, Route]] = []
        for src in sources:
            for dst in destinations:
                stats.n_ksp_calls += 1
                for cost, node_path in yen_k_shortest_paths(
                    adj_lists, src, dst, cfg.k_shortest
                ):
                    route = self._project(node_path, links)
                    if route is None:
                        continue
                    key = route.segment_ids
                    if key in seen:
                        continue
                    seen.add(key)
                    scored.append((cost, route))
        scored.sort(key=lambda pair: pair[0])
        routes = [route for __, route in scored]
        gap, direct = self._route_between_segments(sources[0], destinations[0])
        yardstick = direct.length(self._network) if not math.isinf(gap) else None
        routes = _filter_detours(
            self._network, routes, cfg.max_detour_ratio, yardstick=yardstick
        )
        return routes[: cfg.max_routes], stats

    # -------------------------------------------------------------- building

    def _route_between_segments(self, a: int, b: int) -> Tuple[float, Route]:
        if self._engine is not None:
            return self._engine.shortest_route_between_segments(a, b)
        return shortest_route_between_segments(self._network, a, b)

    def _collect_traverse_edges(self, references: Sequence[Reference]) -> Set[int]:
        """Lines 1–4 of Algorithm 1: direction-consistent candidate edges of
        all reference points (the archive map-matching approximation)."""
        return set(self._collect_support(references))

    def _collect_support(self, references: Sequence[Reference]) -> Dict[int, int]:
        """Traverse edges with their support count |C_i(r)|."""
        support: Dict[int, int] = {}
        for ref in references:
            if self._engine is not None:
                traversed = self._engine.traversed_segments(
                    ref, self._config.candidate_radius
                )
            else:
                traversed = reference_traversed_segments(
                    self._network, ref, self._config.candidate_radius
                )
            for sid in traversed:
                support[sid] = support.get(sid, 0) + 1
        return support

    def _segment_cost(self, sid: int, support: Dict[int, int]) -> float:
        """Link-cost contribution of one physical segment.

        With support weighting, a segment travelled by c references costs
        ``length / (1 + c)`` — popular corridors look short to the
        K-shortest-path search, untravelled bridges stay expensive.
        """
        length = self._network.segment(sid).length
        if not self._config.support_weighted:
            return length
        return length / (1.0 + support.get(sid, 0))

    def _endpoint_candidates(self, q: Point) -> List[int]:
        """Candidate edges of a query point, nearest first.

        Deliberately NOT filtered by the macro q_i → q_{i+1} heading: a
        time-optimal true route regularly departs against the straight
        line (e.g. backtracking to an arterial), and dropping its first
        segment forces every inferred route into the wrong corridor.  Both
        directions of the nearest street tie on distance and therefore
        both make the cut; the K-shortest-path costs decide between them.
        """
        cfg = self._config
        if self._engine is not None:
            cands = self._engine.candidate_edges(q, cfg.candidate_radius)
        else:
            cands = self._network.candidate_edges(q, cfg.candidate_radius)
        if not cands:
            cands = self._network.nearest_segments(q, cfg.max_endpoint_candidates)
        return [c.segment.segment_id for c in cands[: cfg.max_endpoint_candidates]]

    def _build_links(
        self,
        nodes: Set[int],
        traverse_edges: Set[int],
        sources: Sequence[int],
        support: Dict[int, int],
    ) -> Dict[int, Dict[int, _Link]]:
        """Lines 6–8: link every expandable node to the graph nodes within
        its λ-neighborhood, remembering the physical segments in between.

        Destination-only nodes are never expanded (nothing should leave the
        destination), but they are valid link *targets* because they belong
        to ``nodes``.
        """
        links: Dict[int, Dict[int, _Link]] = {}
        expandable = traverse_edges | set(sources)
        # Per-call memos shared across origins: segment costs are fixed once
        # the support counts are known, and successor lists are a property of
        # the network alone.
        cost_of: Dict[int, float] = {}
        succ_of: Dict[int, List[int]] = {}
        for r in expandable:
            neighborhood = self._hop_bounded_reach(r, support, cost_of, succ_of)
            out: Dict[int, _Link] = {}
            for s, (dist, hops, via) in neighborhood.items():
                if s in nodes and s != r:
                    out[s] = _Link(weight=dist, hops=hops, via=via)
            if out:
                links[r] = out
        return links

    def _hop_bounded_reach(
        self,
        origin: int,
        support: Dict[int, int],
        cost_of: Optional[Dict[int, float]] = None,
        succ_of: Optional[Dict[int, List[int]]] = None,
    ) -> Dict[int, Tuple[float, int, Tuple[int, ...]]]:
        """All segments within λ−1 successor hops of ``origin``.

        Returns:
            Mapping segment → (cheapest cost within the hop budget, hop
            count at which first reached, intermediate segments of the
            cheapest path, exclusive of both endpoints).

        The cost of a link r → s sums the (optionally support-discounted)
        costs of the intermediate segments plus s itself, so traverse-graph
        path costs prefer travelled corridors and approximate physical
        lengths where support is uniform.
        """
        net = self._network
        max_hops = self._config.lam - 1
        if cost_of is None:
            cost_of = {}
        if succ_of is None:
            succ_of = {}
        seg_cost = self._segment_cost
        successors = net.successors
        cost_get = cost_of.get
        succ_get = succ_of.get
        # frontier: segment -> (cost, path-of-intermediates)
        frontier: Dict[int, Tuple[float, Tuple[int, ...]]] = {origin: (0.0, ())}
        best: Dict[int, Tuple[float, int, Tuple[int, ...]]] = {}
        for hop in range(1, max_hops + 1):
            nxt: Dict[int, Tuple[float, Tuple[int, ...]]] = {}
            for sid, (dist, via) in frontier.items():
                succs = succ_get(sid)
                if succs is None:
                    succs = successors(sid)
                    succ_of[sid] = succs
                nvia = via + (sid,) if sid != origin else ()
                for succ in succs:
                    cost = cost_get(succ)
                    if cost is None:
                        cost = seg_cost(succ, support)
                        cost_of[succ] = cost
                    ndist = dist + cost
                    prev = nxt.get(succ)
                    if prev is None or ndist < prev[0]:
                        nxt[succ] = (ndist, nvia)
            for sid, (dist, via) in nxt.items():
                prev = best.get(sid)
                if prev is None or dist < prev[0]:
                    hops_first = prev[1] if prev is not None else hop
                    best[sid] = (dist, hops_first, via)
            frontier = nxt
            if not frontier:
                break
        best.pop(origin, None)
        return best

    # ---------------------------------------------------------- augmentation

    def _augment(self, nodes: Set[int], links: Dict[int, Dict[int, _Link]]) -> int:
        """Graph augmentation: stitch SCCs through closest node pairs.

        Adds a bidirectional bridge between the euclidean-closest node pair
        of two different strongly connected components, repeating until the
        graph is one SCC.  Bridge links carry ``via=None`` and are re-routed
        on the physical network during projection.

        Returns:
            Number of directed links added.
        """
        added = 0
        midpoints = {sid: self._segment_midpoint(sid) for sid in nodes}

        def adjacency(node: int):
            return iter(links.get(node, {}))

        guard = 0
        while guard <= len(nodes):
            guard += 1
            sccs = strongly_connected_components(list(nodes), adjacency)
            if len(sccs) <= 1:
                break
            # Closest pair across the two nearest components (greedy merge).
            best_pair: Optional[Tuple[int, int]] = None
            best_dist = math.inf
            for idx_a in range(len(sccs)):
                for idx_b in range(idx_a + 1, len(sccs)):
                    for a in sccs[idx_a]:
                        pa = midpoints[a]
                        for b in sccs[idx_b]:
                            d = pa.distance_to(midpoints[b])
                            if d < best_dist:
                                best_dist = d
                                best_pair = (a, b)
            if best_pair is None:
                break
            a, b = best_pair
            for u, v in ((a, b), (b, a)):
                if v not in links.setdefault(u, {}):
                    links[u][v] = _Link(
                        weight=best_dist + self._network.segment(v).length,
                        hops=1,
                        via=None,
                    )
                    added += 1
        return added

    def _segment_midpoint(self, sid: int) -> Point:
        poly = self._network.segment(sid).polyline
        return midpoint(poly[0], poly[-1])

    # ------------------------------------------------------------- reduction

    @staticmethod
    def _reduce(links: Dict[int, Dict[int, _Link]]) -> int:
        """Graph reduction: drop hop-redundant direct links.

        The link ``i → k`` is redundant when some intermediate ``j``
        satisfies ``i → j``, ``j → k`` and the two-step hop distance does
        not exceed the direct one — the transitive-reduction criterion of
        the paper on the hop metric.

        Returns:
            Number of links removed.
        """
        removed = 0
        for i, out in links.items():
            targets = list(out.keys())
            redundant: Set[int] = set()
            for j in targets:
                if j in redundant:
                    continue
                j_out = links.get(j)
                if not j_out:
                    continue
                for k in targets:
                    if k == j or k in redundant:
                        continue
                    jk = j_out.get(k)
                    if jk is None:
                        continue
                    if out[j].hops + jk.hops <= out[k].hops:
                        redundant.add(k)
            for k in redundant:
                del out[k]
                removed += 1
        return removed

    # ------------------------------------------------------------ projection

    def _project(
        self, node_path: List[int], links: Dict[int, Dict[int, _Link]]
    ) -> Optional[Route]:
        """Line 14: expand a traverse-graph path to a physical route."""
        ids: List[int] = [node_path[0]]
        for a, b in zip(node_path, node_path[1:]):
            link = links[a][b]
            if link.via is not None:
                ids.extend(link.via)
                ids.append(b)
                continue
            gap, bridge = self._route_between_segments(a, b)
            if math.isinf(gap):
                return None
            ids.extend(bridge.segment_ids[1:])
        return Route.of(ids).dedupe_consecutive()
