"""Network-free route inference (the paper's second future-work item).

"We will also extend our solution to deal with the case where the road
network is not available, which is a more challenging problem."
(Sec. VI.)  This module provides that extension: the inferred "routes" are
representative **polylines** instead of road-segment sequences, so the
system works for hiking trails, open water, unmapped regions or animal
tracks.

Method, per query pair:

1. flatten the references into their sub-trajectory polylines (resampled
   to a fixed spacing so geometry, not sampling cadence, drives distances),
2. cluster the polylines greedily under a discrete-Fréchet-style distance
   threshold (each cluster = one corridor; cluster size = popularity),
3. return one representative per cluster — the *medoid* (smallest summed
   distance to its cluster mates), clipped and anchored to the query pair.

Global inference connects consecutive local corridors with the same
transition-confidence idea as the network version: corridors supported by
the same source trajectories chain preferentially.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from repro.core.reference import Reference
from repro.core.scoring import LOG_EPSILON, transition_confidence
from repro.geo.point import Point
from repro.geo.polyline import polyline_length, resample_polyline
from repro.trajectory.model import Trajectory

__all__ = [
    "FreeRoute",
    "FreeGlobalRoute",
    "FreeSpaceConfig",
    "FreeSpaceInference",
    "discrete_frechet",
]


def discrete_frechet(a: Sequence[Point], b: Sequence[Point]) -> float:
    """Discrete Fréchet distance between two polylines.

    The classic O(n·m) dynamic program ("dog walking" distance); unlike
    Hausdorff it respects the order of traversal, so two corridors that
    overlap spatially but run through it differently stay far apart.

    Raises:
        ValueError: If either polyline is empty.
    """
    if not a or not b:
        raise ValueError("Fréchet distance of an empty polyline is undefined")
    n, m = len(a), len(b)
    prev = [0.0] * m
    prev[0] = a[0].distance_to(b[0])
    for j in range(1, m):
        prev[j] = max(prev[j - 1], a[0].distance_to(b[j]))
    for i in range(1, n):
        cur = [0.0] * m
        cur[0] = max(prev[0], a[i].distance_to(b[0]))
        for j in range(1, m):
            reach = min(prev[j], prev[j - 1], cur[j - 1])
            cur[j] = max(reach, a[i].distance_to(b[j]))
        prev = cur
    return prev[m - 1]


@dataclass(frozen=True, slots=True)
class FreeRoute:
    """A local corridor inferred without a road network.

    Attributes:
        polyline: Representative geometry from ``q_i`` to ``q_{i+1}``.
        support: Ids of the references in the corridor's cluster.
    """

    polyline: Tuple[Point, ...]
    support: FrozenSet[int]

    @property
    def popularity(self) -> float:
        """Cluster size — the corridor's popularity."""
        return float(len(self.support))

    def length(self) -> float:
        return polyline_length(self.polyline)


@dataclass(frozen=True, slots=True)
class FreeGlobalRoute:
    """A scored network-free global route."""

    log_score: float
    polyline: Tuple[Point, ...]
    local_supports: Tuple[FrozenSet[int], ...]


@dataclass(frozen=True, slots=True)
class FreeSpaceConfig:
    """Parameters of the network-free inference.

    Attributes:
        resample_spacing_m: Arc-length spacing used to normalise reference
            polylines before distance computations.
        cluster_distance_m: Fréchet threshold under which two references
            belong to the same corridor.
        max_routes: Corridors returned per pair.
    """

    resample_spacing_m: float = 100.0
    cluster_distance_m: float = 250.0
    max_routes: int = 5

    def __post_init__(self) -> None:
        if self.resample_spacing_m <= 0 or self.cluster_distance_m <= 0:
            raise ValueError("distances must be positive")
        if self.max_routes < 1:
            raise ValueError("max_routes must be at least 1")


class FreeSpaceInference:
    """Route inference that never touches a road network."""

    def __init__(self, config: FreeSpaceConfig = FreeSpaceConfig()) -> None:
        self._config = config

    # ------------------------------------------------------------- local

    def infer_local(
        self, qi: Point, qi1: Point, references: Sequence[Reference]
    ) -> List[FreeRoute]:
        """Corridors between one query pair, most popular first."""
        cfg = self._config
        normalised: List[Tuple[int, List[Point]]] = []
        for ref in references:
            if len(ref.points) < 1:
                continue
            anchored = [qi, *ref.points, qi1]
            normalised.append(
                (ref.ref_id, resample_polyline(anchored, cfg.resample_spacing_m))
            )
        if not normalised:
            return []

        # Greedy leader clustering under the Fréchet threshold.
        clusters: List[List[Tuple[int, List[Point]]]] = []
        for item in normalised:
            placed = False
            for cluster in clusters:
                if (
                    discrete_frechet(item[1], cluster[0][1])
                    <= cfg.cluster_distance_m
                ):
                    cluster.append(item)
                    placed = True
                    break
            if not placed:
                clusters.append([item])

        routes: List[FreeRoute] = []
        for cluster in clusters:
            medoid = self._medoid(cluster)
            routes.append(
                FreeRoute(
                    polyline=tuple(medoid),
                    support=frozenset(ref_id for ref_id, __ in cluster),
                )
            )
        routes.sort(key=lambda r: (-r.popularity, r.length()))
        return routes[: cfg.max_routes]

    @staticmethod
    def _medoid(cluster: List[Tuple[int, List[Point]]]) -> List[Point]:
        if len(cluster) == 1:
            return cluster[0][1]
        best_idx = 0
        best_cost = math.inf
        for i, (__, poly_i) in enumerate(cluster):
            cost = sum(
                discrete_frechet(poly_i, poly_j)
                for j, (__j, poly_j) in enumerate(cluster)
                if j != i
            )
            if cost < best_cost:
                best_cost = cost
                best_idx = i
        return cluster[best_idx][1]

    # ------------------------------------------------------------ global

    def infer(
        self,
        query: Trajectory,
        reference_search,
        k: int = 3,
    ) -> List[FreeGlobalRoute]:
        """Top-``k`` network-free global routes for a whole query.

        Args:
            query: The low-sampling-rate query trajectory.
            reference_search: A :class:`~repro.core.reference.ReferenceSearch`
                (its road network is used only for the V_max speed budget of
                Definition 6 — no routing happens).
            k: Number of global routes.

        Raises:
            ValueError: If the query has fewer than two points.
        """
        if len(query) < 2:
            raise ValueError("a query needs at least two points")
        if k < 1:
            raise ValueError("k must be at least 1")

        stages: List[List[FreeRoute]] = []
        for i in range(len(query) - 1):
            qi, qi1 = query[i], query[i + 1]
            references = reference_search.search(qi, qi1)
            local = self.infer_local(qi.point, qi1.point, references)
            if not local:
                # Data-sparse fallback: the straight line.
                local = [
                    FreeRoute(
                        polyline=(qi.point, qi1.point), support=frozenset()
                    )
                ]
            stages.append(local)

        # Exactly the K-GRI dynamic program, over corridors: per stage and
        # per corridor, keep the k best partial routes ending there.
        def log(x: float) -> float:
            return math.log(max(x, LOG_EPSILON))

        per_j: List[List[Tuple[float, Tuple[int, ...]]]] = [
            [(log(r.popularity), (j,))] for j, r in enumerate(stages[0])
        ]
        for i in range(1, len(stages)):
            nxt: List[List[Tuple[float, Tuple[int, ...]]]] = []
            for j, r in enumerate(stages[i]):
                merged: List[Tuple[float, Tuple[int, ...]]] = []
                for pk, partials in enumerate(per_j):
                    g = transition_confidence(stages[i - 1][pk].support, r.support)
                    for score, indices in partials:
                        merged.append(
                            (score + log(g) + log(r.popularity), indices + (j,))
                        )
                merged.sort(key=lambda pair: pair[0], reverse=True)
                nxt.append(merged[:k])
            per_j = nxt

        final = [item for partials in per_j for item in partials]
        final.sort(key=lambda pair: pair[0], reverse=True)
        out: List[FreeGlobalRoute] = []
        for score, indices in final[:k]:
            polyline: List[Point] = []
            supports: List[FrozenSet[int]] = []
            for stage_idx, route_idx in enumerate(indices):
                r = stages[stage_idx][route_idx]
                pts = list(r.polyline)
                if polyline and pts and polyline[-1] == pts[0]:
                    pts = pts[1:]
                polyline.extend(pts)
                supports.append(r.support)
            out.append(
                FreeGlobalRoute(
                    log_score=score,
                    polyline=tuple(polyline),
                    local_supports=tuple(supports),
                )
            )
        return out
