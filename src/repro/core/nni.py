"""Nearest-neighbor based local route inference — NNI (Sec. III-B.2, Alg. 2).

NNI walks from ``q_i`` towards ``q_{i+1}`` by repeatedly hopping to
constrained nearest-neighbor reference points:

* a candidate next point must not move away from the destination by more
  than the remaining tolerance α (which shrinks by every backward move —
  line 20 of Algorithm 2, guaranteeing eventual arrival), and
* it must not cause a detour: ``(d(p_c, p) + d(p, q_{i+1})) / d(p_c, q_{i+1})``
  must stay within β;
* when the destination itself is among the nearest neighbors it is taken
  exclusively (lines 13–16).

The recursion tree is explored depth-first.  With *substructure sharing*
enabled (the paper's transit-graph optimisation, Fig. 5) each point's
constrained-kNN expansion is computed once and reused by every path that
reaches the point, cutting the number of kNN searches.

Each enumerated point path is densified into a physical route by matching
every point to its best road segment and bridging with shortest paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.reference import Reference
from repro.geo.point import Point
from repro.mapmatching.hmm import HMMConfig, HMMMatcher
from repro.roadnet.cache import LRUCache
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route
from repro.trajectory.model import GPSPoint, Trajectory

__all__ = ["NNIConfig", "NNIStats", "NearestNeighborInference"]

#: Sentinel node ids for the virtual start/destination of the walk.
_START = -1
_DEST = -2


@dataclass(frozen=True, slots=True)
class NNIConfig:
    """NNI parameters (Table II defaults).

    Attributes:
        k: Constrained nearest neighbors kept per recursion (k2, default 4).
        alpha: Initial backward-move tolerance in metres (default 500).
        beta: Detour-ratio tolerance (default 1.5).
        share_substructures: Reuse kNN expansions across paths (Fig. 5).
        candidate_radius: ε for matching walk points onto segments.
        max_paths: Cap on enumerated point paths per pair.
        max_depth: Cap on walk length in points (None: the pool size —
            every pool point may be visited once).
        max_expansions: Budget of DFS node expansions; the recursive search
            over a dense pool enumerates exponentially many partial walks,
            and this bound keeps the (paper-acknowledged) high-density blow
            up finite while preserving the paths found so far.
        max_routes: Cap on distinct local routes returned.
        max_detour_ratio: Local routes longer than this multiple of the
            shortest returned route are discarded.
    """

    k: int = 4
    alpha: float = 500.0
    beta: float = 1.5
    share_substructures: bool = True
    candidate_radius: float = 50.0
    max_paths: int = 32
    max_depth: Optional[int] = None
    max_expansions: int = 50_000
    max_routes: int = 10
    max_detour_ratio: float = 1.5

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.beta < 1.0:
            raise ValueError("beta must be at least 1")


@dataclass(slots=True)
class NNIStats:
    """Instrumentation of one NNI invocation (drives Fig. 13)."""

    n_knn_searches: int = 0
    n_paths: int = 0
    n_reference_points: int = 0


class NearestNeighborInference:
    """Local route inference by constrained nearest-neighbor walking."""

    def __init__(
        self,
        network: RoadNetwork,
        config: NNIConfig = NNIConfig(),
        engine=None,
    ) -> None:
        self._network = network
        self._config = config
        self._engine = engine
        # The paper derives a route from each walk "by applying the
        # map-matching techniques"; an HMM matcher turns the densified walk
        # into a coherent route (greedy per-point snapping would zigzag).
        self._walk_matcher = HMMMatcher(
            network,
            HMMConfig(
                radius=max(2.0 * config.candidate_radius, 100.0),
                max_candidates=4,
            ),
            engine=engine,
        )
        # Cross-query walk memo (engine mode only): reference points come
        # from the shared archive, so distinct queries over the same
        # corridor produce identical monotone walks — the matcher is
        # deterministic, so replaying it is pure waste.
        self._walk_routes: Optional["LRUCache[Tuple[Tuple[float, float], ...], Route]"] = (
            LRUCache(4096) if engine is not None else None
        )

    def infer(
        self, qi: Point, qi1: Point, references: Sequence[Reference]
    ) -> Tuple[List[Route], NNIStats]:
        """Infer the local routes between ``q_i`` and ``q_{i+1}``.

        Returns:
            ``(routes, stats)``; routes deduplicated and capped, preferring
            paths that use more reference points (more evidence).
        """
        cfg = self._config
        stats = NNIStats()
        raw_pool: List[Point] = [p for ref in references for p in ref.points]
        stats.n_reference_points = len(raw_pool)
        pool = self._dedupe_pool(raw_pool)
        if not pool:
            return [], stats

        paths = self._enumerate_paths(qi, qi1, pool, stats)
        stats.n_paths = len(paths)

        # Many enumerated paths collapse to the same monotone walk; the
        # expensive HMM projection runs once per distinct walk.
        seen_walks: Set[Tuple[Tuple[float, float], ...]] = set()
        seen: Set[Tuple[int, ...]] = set()
        scored: List[Tuple[float, Route]] = []
        for path in paths:
            walk = self._monotone_walk(
                [qi] + [pool[i] for i in path] + [qi1]
            )
            walk_key = tuple((p.x, p.y) for p in walk)
            if walk_key in seen_walks:
                continue
            seen_walks.add(walk_key)
            if self._walk_routes is not None:
                route = self._walk_routes.get_or_compute(
                    walk_key, lambda: self._points_to_route(walk)
                )
            else:
                route = self._points_to_route(walk)
            if not route:
                continue
            key = route.segment_ids
            if key in seen:
                continue
            seen.add(key)
            scored.append((route.length(self._network), route))
        # Tightest routes first: all candidates join the same endpoints.
        scored.sort(key=lambda pair: pair[0])
        from repro.core.traverse_graph import _filter_detours

        routes = _filter_detours(
            self._network,
            [route for __, route in scored],
            cfg.max_detour_ratio,
            yardstick=self._endpoint_distance(qi, qi1),
        )
        return routes[: cfg.max_routes], stats

    def _endpoint_distance(self, qi: Point, qi1: Point) -> Optional[float]:
        """Network shortest-path distance between the pair's endpoints."""
        from repro.roadnet.shortest_path import shortest_route_between_segments

        src = self._network.nearest_segments(qi, 1)
        dst = self._network.nearest_segments(qi1, 1)
        if not src or not dst:
            return None
        a = src[0].segment.segment_id
        b = dst[0].segment.segment_id
        if self._engine is not None:
            gap, route = self._engine.shortest_route_between_segments(a, b)
        else:
            gap, route = shortest_route_between_segments(self._network, a, b)
        if math.isinf(gap):
            return None
        return route.length(self._network)

    def _dedupe_pool(self, points: List[Point]) -> List[Point]:
        """One representative per candidate-radius grid cell.

        Reference points from many trips pile up on the same road metres
        apart (GPS noise clusters); walking among them hop-by-hop carries no
        information and starves the recursion.  Points indistinguishable at
        candidate-edge resolution collapse to their first representative.
        """
        cell = max(self._config.candidate_radius, 1.0)
        seen: Set[Tuple[int, int]] = set()
        out: List[Point] = []
        for p in points:
            key = (int(p.x // cell), int(p.y // cell))
            if key in seen:
                continue
            seen.add(key)
            out.append(p)
        return out

    # ------------------------------------------------------------- the walk

    def _enumerate_paths(
        self, qi: Point, qi1: Point, pool: List[Point], stats: NNIStats
    ) -> List[List[int]]:
        """Depth-first recursion of Algorithm 2, collecting point paths.

        A path is the list of pool indices visited strictly between the
        start and the destination.
        """
        cfg = self._config
        transit: Dict[int, List[int]] = {}
        paths: List[List[int]] = []
        # Default depth bound: one visit per pool point, kept under Python's
        # recursion limit.
        max_depth = (
            cfg.max_depth if cfg.max_depth is not None else min(len(pool), 600)
        )
        expansions = 0

        # Distances to the destination, precomputed: used by the α update
        # and to order successors most-progress-first so the depth-first
        # search reaches the destination (and the max_paths cap) quickly.
        dest_dist = [p.distance_to(qi1) for p in pool]

        def position(node: int) -> Point:
            return qi if node == _START else pool[node]

        def fresh_search(node: int, alpha: float, exclude: Optional[Set[int]]) -> List[int]:
            successors = self._constrained_knn(
                position(node), qi1, pool, alpha, exclude
            )
            stats.n_knn_searches += 1
            successors.sort(key=lambda s: -1.0 if s == _DEST else dest_dist[s])
            return successors

        def expand(node: int, alpha: float, visited: Set[int]) -> List[int]:
            if not cfg.share_substructures:
                return fresh_search(node, alpha, visited)
            if node not in transit:
                transit[node] = fresh_search(node, alpha, None)
            shared = transit[node]
            if any(s == _DEST or s not in visited for s in shared):
                return shared
            # Every shared successor is already on the current walk; a
            # fresh non-memoised search keeps the walk alive.
            return fresh_search(node, alpha, visited)

        def dfs(node: int, alpha: float, trace: List[int], visited: Set[int]) -> None:
            nonlocal expansions
            if (
                len(paths) >= cfg.max_paths
                or len(trace) > max_depth
                or expansions >= cfg.max_expansions
            ):
                return
            expansions += 1
            d_here = position(node).distance_to(qi1)
            for succ in expand(node, alpha, visited):
                if len(paths) >= cfg.max_paths or expansions >= cfg.max_expansions:
                    return
                if succ == _DEST:
                    paths.append(list(trace))
                    continue
                if succ in visited:
                    continue
                # Line 20: shrink α by the backward deviation of this move.
                deviation = dest_dist[succ] - d_here
                child_alpha = alpha - max(0.0, deviation)
                visited.add(succ)
                trace.append(succ)
                dfs(succ, child_alpha, trace, visited)
                trace.pop()
                visited.discard(succ)

        dfs(_START, cfg.alpha, [], set())
        return paths

    def _constrained_knn(
        self,
        current: Point,
        dest: Point,
        pool: List[Point],
        alpha: float,
        exclude: Optional[Set[int]] = None,
    ) -> List[int]:
        """One constrained-kNN search (the while-loop of Algorithm 2).

        Scans pool points nearest-first, applying the α and β filters;
        stops at k accepted points, or immediately with only the
        destination when the destination qualifies before k others.
        """
        cfg = self._config
        d_cur_dest = current.distance_to(dest)
        order = sorted(range(len(pool)), key=lambda i: pool[i].squared_distance_to(current))
        accepted: List[int] = []
        dest_rank_dist = current.distance_to(dest)
        for i in order:
            if exclude is not None and i in exclude:
                continue
            p = pool[i]
            d_cp = current.distance_to(p)
            if d_cp == 0.0:
                continue  # the current point itself (or a duplicate)
            # Lines 13–16: take the destination exclusively once it is the
            # nearest remaining option.
            if d_cp >= dest_rank_dist:
                return [_DEST]
            d_p_dest = p.distance_to(dest)
            # α filter (line 9): may not drift beyond the tolerance.
            if d_p_dest - alpha > d_cur_dest:
                continue
            # β filter (line 11): bounded detour.
            if d_cur_dest > 0.0 and (d_cp + d_p_dest) / d_cur_dest > cfg.beta:
                continue
            accepted.append(i)
            if len(accepted) >= cfg.k:
                return accepted
        # Pool exhausted before k hits: the destination is always reachable.
        accepted.append(_DEST)
        return accepted

    # ----------------------------------------------------------- projection

    @staticmethod
    def _monotone_walk(walk: Sequence[Point]) -> List[Point]:
        """The subsequence of a walk making strict progress to the end.

        The α tolerance lets a walk re-visit territory behind itself;
        routing through every such wiggle would charge the route for
        navigation noise, so only strictly progressing points are kept
        (first and last always survive).
        """
        if len(walk) < 2:
            return list(walk)
        dest = walk[-1]
        filtered: List[Point] = [walk[0]]
        for p in walk[1:-1]:
            if p.distance_to(dest) < filtered[-1].distance_to(dest):
                filtered.append(p)
        filtered.append(dest)
        return filtered

    def _points_to_route(self, walk: Sequence[Point]) -> Route:
        """Map a (monotone) walk to a connected route by map matching.

        The walk gets synthetic monotone timestamps and is decoded by the
        shared HMM matcher — the paper's "derive a route ... by applying
        the map-matching techniques" — which yields the coherent corridor
        through the walk rather than a greedy per-point zigzag.
        """
        if len(walk) < 2:
            return Route.empty()
        traj = Trajectory(
            0, tuple(GPSPoint(p, float(i)) for i, p in enumerate(walk))
        )
        return self._walk_matcher.match(traj).route
