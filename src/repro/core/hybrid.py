"""Hybrid local route inference (Sec. III-B.3).

The hybrid estimates the reference-point density ρ (points per km² of
their minimum bounding box) and dispatches to TGI or NNI around the
threshold τ (Table II: 200 points/km²).

The paper is internally inconsistent about the dispatch direction: the
prose of Sec. III-B.3 says "if the density is lower than τ, the TGI will
be selected; otherwise the NNI", while its Fig. 10 analysis says the
opposite ("NNI has better performance when the density is relatively low
… TGI outperforms NNI when ρ > 200/km²").  We resolve the contradiction
empirically: on this implementation's own Fig. 10 reproduction
(benchmarks/test_fig10_density.py), TGI — whose traverse graph is
support-weighted and augmentation-bridged — is the stronger method at low
densities, exactly as the prose states.  The dispatch therefore follows
the prose:

* ρ < τ  → TGI,
* ρ >= τ → NNI,

and either method serves as the fallback when the other returns nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.nni import NearestNeighborInference, NNIConfig
from repro.core.reference import Reference
from repro.core.traverse_graph import TGIConfig, TraverseGraphInference
from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route

__all__ = ["HybridConfig", "HybridInference", "reference_density_per_km2"]


def reference_density_per_km2(references: Sequence[Reference]) -> float:
    """ρ: reference points per km² of their minimum bounding box.

    Tightly clustered points (degenerate zero-area box) count as infinitely
    dense; no points at all count as zero.
    """
    points: List[Point] = [p for ref in references for p in ref.points]
    if not points:
        return 0.0
    box = BBox.from_points(points)
    if box.area == 0.0:
        return math.inf
    return len(points) / (box.area / 1_000_000.0)


@dataclass(frozen=True, slots=True)
class HybridConfig:
    """Hybrid dispatch parameters.

    Attributes:
        tau: Density threshold τ in points/km² (Table II: 200).
        tgi: TGI parameters.
        nni: NNI parameters.
    """

    tau: float = 200.0
    tgi: TGIConfig = TGIConfig()
    nni: NNIConfig = NNIConfig()


class HybridInference:
    """Density-dispatched local route inference."""

    def __init__(
        self,
        network: RoadNetwork,
        config: HybridConfig = HybridConfig(),
        engine=None,
    ) -> None:
        self._config = config
        self._tgi = TraverseGraphInference(network, config.tgi, engine=engine)
        self._nni = NearestNeighborInference(network, config.nni, engine=engine)

    def infer(
        self, qi: Point, qi1: Point, references: Sequence[Reference]
    ) -> Tuple[List[Route], str]:
        """Infer local routes, returning them and the method used.

        Returns:
            ``(routes, method)`` where method is ``"tgi"`` or ``"nni"``.
        """
        density = reference_density_per_km2(references)
        if density < self._config.tau:
            routes, __ = self._tgi.infer(qi, qi1, references)
            if routes:
                return routes, "tgi"
            routes, __ = self._nni.infer(qi, qi1, references)
            return routes, "nni"
        routes, __ = self._nni.infer(qi, qi1, references)
        if routes:
            return routes, "nni"
        routes, __ = self._tgi.infer(qi, qi1, references)
        return routes, "tgi"
