"""Route scoring (Sec. III-C.1): popularity, transition confidence, score.

Implements the paper's two scoring functions:

* equation (1), *local route popularity*
  ``f(R) = |∪_{r∈R} C_i(r)| · Σ_{r∈R} −x(r)·log x(r)`` — the number of
  distinct supporting references scaled by the entropy of their
  distribution over the route's segments (uniform traffic is trusted,
  bursty traffic is discounted), and
* equation (2), *transition confidence*
  ``g(R_a, R_b) = exp(J(C(R_a), C(R_b)) − 1)`` with ``J`` the Jaccard
  overlap of the two supporting-reference sets — 1 when identical,
  ``1/e`` when disjoint.

A note on the entropy term: taken literally, a single-segment local route
has zero entropy and therefore zero popularity, which annihilates every
global score it participates in.  The ``entropy_floor`` knob (0 = strictly
faithful) lower-bounds the entropy factor so degenerate local routes stay
comparable; the HRIS system config enables a small floor by default
(documented in DESIGN.md §5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set

from repro.core.reference import Reference
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route

__all__ = [
    "LocalRoute",
    "compute_segment_support",
    "route_support",
    "popularity",
    "transition_confidence",
    "score_local_routes",
]

#: Numerical floor for logarithms of (near-)zero scores.
LOG_EPSILON = 1e-12


@dataclass(frozen=True, slots=True)
class LocalRoute:
    """A scored local route between one query-point pair.

    Attributes:
        route: The physical route.
        popularity: ``f(R)`` of equation (1).
        support: Ids of the references that travel on the route
            (``C_i(R)``), the input to the transition confidence.
    """

    route: Route
    popularity: float
    support: FrozenSet[int]

    @property
    def log_popularity(self) -> float:
        return math.log(max(self.popularity, LOG_EPSILON))


def compute_segment_support(
    network: RoadNetwork,
    references: Sequence[Reference],
    candidate_radius: float,
    engine=None,
) -> Dict[int, Set[int]]:
    """``C_i(r)`` for every segment: which references travel on it.

    A reference travels on a segment when the segment is a direction-
    consistent candidate edge (Definition 5) of at least one of its points —
    the "traverse edge" criterion of Definition 9, with the archive
    map-matching of the preprocessing stage approximated by a heading
    filter (see :func:`repro.core.reference.reference_traversed_segments`).

    Args:
        engine: Optional :class:`~repro.roadnet.engine.RoutingEngine` whose
            support cache already holds the traversed-segment sets computed
            by the traverse-graph stage for the same references.
    """
    from repro.core.reference import reference_traversed_segments

    support: Dict[int, Set[int]] = {}
    for ref in references:
        if engine is not None:
            traversed = engine.traversed_segments(ref, candidate_radius)
        else:
            traversed = reference_traversed_segments(network, ref, candidate_radius)
        for sid in traversed:
            support.setdefault(sid, set()).add(ref.ref_id)
    return support


def route_support(route: Route, segment_support: Dict[int, Set[int]]) -> FrozenSet[int]:
    """``C_i(R) = ∪_{r∈R} C_i(r)``: references supporting any route segment."""
    refs: Set[int] = set()
    for sid in route.segment_ids:
        refs |= segment_support.get(sid, set())
    return frozenset(refs)


def popularity(
    route: Route,
    segment_support: Dict[int, Set[int]],
    entropy_floor: float = 0.0,
    normalize: bool = True,
) -> float:
    """Equation (1): supporting-reference count times distribution entropy.

    With ``normalize=True`` (default) the entropy factor is divided by its
    maximum ``ln(n_supported_segments)`` so it lies in [0, 1].  The raw
    formula grows with route length for any uniformly supported route
    (entropy of a uniform distribution over n segments is ln n), which
    systematically rewards padding a route with extra supported segments;
    normalisation removes that bias while preserving exactly the property
    equation (1) was designed for — routes with *stable* traffic beat
    routes whose support is bursty (the paper's Fig. 6).  Set
    ``normalize=False`` for the strictly literal formula.

    Args:
        route: The local route to score.
        segment_support: Output of :func:`compute_segment_support`.
        entropy_floor: Lower bound applied to the entropy factor whenever
            the route has any support (0 = strictly the paper's formula).
        normalize: Normalise the entropy factor to [0, 1].

    Raises:
        ValueError: If ``entropy_floor`` is negative.
    """
    if entropy_floor < 0:
        raise ValueError("entropy_floor must be non-negative")
    counts = [
        len(segment_support.get(sid, ())) for sid in route.segment_ids
    ]
    total = sum(counts)
    union = route_support(route, segment_support)
    if not union or total == 0:
        return 0.0
    entropy = 0.0
    for c in counts:
        if c == 0:
            continue  # zero-support segments contribute no entropy ...
        x = c / total
        entropy -= x * math.log(x)
    if normalize:
        # ... but they do count against the maximum: the sum in eq. (1)
        # ranges over every segment of R, so a route padded with untravelled
        # segments can never look uniformly popular.
        n_segments = len(counts)
        if n_segments <= 1:
            entropy = 1.0  # a single-segment route is trivially uniform
        else:
            entropy /= math.log(n_segments)
    return len(union) * max(entropy, entropy_floor)


def transition_confidence(support_a: FrozenSet[int], support_b: FrozenSet[int]) -> float:
    """Equation (2): ``exp(Jaccard − 1)``, in ``[1/e, 1]``.

    Two local routes with no supporting references at all are treated as
    disjoint (confidence ``1/e``), matching the formula's 0/0 → 0 reading.
    """
    union = support_a | support_b
    if not union:
        return math.exp(-1.0)
    jaccard = len(support_a & support_b) / len(union)
    return math.exp(jaccard - 1.0)


def score_local_routes(
    routes: Sequence[Route],
    segment_support: Dict[int, Set[int]],
    entropy_floor: float = 0.0,
    normalize: bool = True,
) -> List[LocalRoute]:
    """Score raw local routes, most popular first."""
    scored = [
        LocalRoute(
            route=r,
            popularity=popularity(r, segment_support, entropy_floor, normalize),
            support=route_support(r, segment_support),
        )
        for r in routes
    ]
    scored.sort(key=lambda lr: lr.popularity, reverse=True)
    return scored
