"""HRIS core: the paper's primary contribution.

Public surface: build a :class:`TrajectoryArchive` from history, construct
:class:`HRIS` over it and a road network, call
:meth:`HRIS.infer_routes` on a low-sampling-rate query.
"""

from repro.core.archive import (
    ArchiveBackend,
    ArchivePoint,
    InMemoryArchive,
    ShardedArchive,
    TrajectoryArchive,
    convert_archive,
    load_archive,
    make_archive,
    save_archive,
)
from repro.core.freespace import (
    FreeGlobalRoute,
    FreeRoute,
    FreeSpaceConfig,
    FreeSpaceInference,
    discrete_frechet,
)
from repro.core.hybrid import HybridConfig, HybridInference, reference_density_per_km2
from repro.core.kgri import GlobalRoute, brute_force_global_routes, k_gri
from repro.core.nni import NearestNeighborInference, NNIConfig, NNIStats
from repro.core.remote import (
    ArchiveShardServer,
    RemoteArchiveError,
    RemoteShardedArchive,
    ShardProtocolError,
    ShardTimeoutError,
    ShardUnavailableError,
)
from repro.core.reference import (
    Reference,
    ReferencePoint,
    ReferenceSearch,
    ReferenceSearchConfig,
)
from repro.core.scoring import (
    LocalRoute,
    compute_segment_support,
    popularity,
    route_support,
    score_local_routes,
    transition_confidence,
)
from repro.core.system import HRIS, HRISConfig, HRISMatcher, InferenceDetail, PairDetail
from repro.core.traverse_graph import TGIConfig, TGIStats, TraverseGraphInference

__all__ = [
    "HRIS",
    "ArchiveBackend",
    "ArchivePoint",
    "InMemoryArchive",
    "ShardedArchive",
    "ArchiveShardServer",
    "RemoteArchiveError",
    "RemoteShardedArchive",
    "ShardProtocolError",
    "ShardTimeoutError",
    "ShardUnavailableError",
    "convert_archive",
    "load_archive",
    "make_archive",
    "save_archive",
    "FreeGlobalRoute",
    "FreeRoute",
    "FreeSpaceConfig",
    "FreeSpaceInference",
    "discrete_frechet",
    "GlobalRoute",
    "HRISConfig",
    "HRISMatcher",
    "HybridConfig",
    "HybridInference",
    "InferenceDetail",
    "LocalRoute",
    "NNIConfig",
    "NNIStats",
    "NearestNeighborInference",
    "PairDetail",
    "Reference",
    "ReferencePoint",
    "ReferenceSearch",
    "ReferenceSearchConfig",
    "TGIConfig",
    "TGIStats",
    "TrajectoryArchive",
    "TraverseGraphInference",
    "brute_force_global_routes",
    "compute_segment_support",
    "k_gri",
    "popularity",
    "reference_density_per_km2",
    "route_support",
    "score_local_routes",
    "transition_confidence",
]
