"""Top-K global route inference — K-GRI (Sec. III-C.2, Algorithm 3).

A global route concatenates one local route per query-point pair; its score
is the product of local popularities and pairwise transition confidences:

    s(R) = Π f(R_i) · Π g(R_i, R_{i+1})

K-GRI is the dynamic program over the matrix ``M[i][j]`` — the K best
partial global routes ending with local route ``R_i^j`` — justified by the
downward-closure property of the score.  Scores are accumulated in log
space so long queries neither underflow nor overflow; the argmax order is
unchanged.

The brute-force enumerator the paper benchmarks against (Fig. 14b) is also
provided.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.scoring import LOG_EPSILON, LocalRoute, transition_confidence
from repro.mapmatching.base import stitch_route
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route

__all__ = ["GlobalRoute", "k_gri", "brute_force_global_routes"]


@dataclass(frozen=True, slots=True)
class GlobalRoute:
    """A scored global route.

    Attributes:
        log_score: ``log s(R)`` (the ranking key).
        local_indices: Index of the chosen local route in each stage.
        route: The stitched physical route.
    """

    log_score: float
    local_indices: Tuple[int, ...]
    route: Route

    @property
    def score(self) -> float:
        """``s(R)`` itself (may underflow to 0 for very long queries)."""
        return math.exp(self.log_score)


def _log(x: float) -> float:
    return math.log(max(x, LOG_EPSILON))


def _validate_stages(stages: Sequence[Sequence[LocalRoute]]) -> None:
    if not stages:
        raise ValueError("at least one stage of local routes is required")
    for i, stage in enumerate(stages):
        if not stage:
            raise ValueError(f"stage {i} has no local routes")


def _assemble(
    network: RoadNetwork,
    stages: Sequence[Sequence[LocalRoute]],
    indices: Tuple[int, ...],
    engine=None,
) -> Route:
    """Concatenate the chosen local routes, bridging any gaps (the paper's
    shortest-path bridge for mismatched junction candidate edges)."""
    segments: List[int] = []
    for stage_idx, route_idx in enumerate(indices):
        segments.extend(stages[stage_idx][route_idx].route.segment_ids)
    return stitch_route(network, segments, engine=engine)


def k_gri(
    network: RoadNetwork,
    stages: Sequence[Sequence[LocalRoute]],
    k: int,
    engine=None,
) -> List[GlobalRoute]:
    """Algorithm 3: the top-``k`` global routes by dynamic programming.

    Args:
        network: Road network (for final route assembly).
        stages: ``(R_1, ..., R_n)`` — the scored local routes per pair.
        k: Number of global routes to return (the paper's k3).
        engine: Optional routing engine for cached assembly bridges.

    Raises:
        ValueError: If ``k < 1`` or any stage is empty.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    _validate_stages(stages)

    lengths = [
        [lr.route.length(network) for lr in stage] for stage in stages
    ]

    def rank_key(item: Tuple[float, float, Tuple[int, ...]]):
        # Highest score first; among score ties, the shortest physical
        # route wins (zero-support padding must not be rewarded).
        return (-item[0], item[1])

    # M[j]: the K best (log_score, total_length, indices) partials ending at
    # local route j of the current stage.
    current: List[List[Tuple[float, float, Tuple[int, ...]]]] = [
        [(_log(lr.popularity), lengths[0][j], (j,))]
        for j, lr in enumerate(stages[0])
    ]

    for i in range(1, len(stages)):
        prev_stage = stages[i - 1]
        stage = stages[i]
        nxt: List[List[Tuple[float, float, Tuple[int, ...]]]] = []
        for j, lr in enumerate(stage):
            log_pop = _log(lr.popularity)
            merged: List[Tuple[float, float, Tuple[int, ...]]] = []
            for pk, partials in enumerate(current):
                if not partials:
                    continue
                log_g = _log(
                    transition_confidence(prev_stage[pk].support, lr.support)
                )
                for log_score, length, indices in partials:
                    merged.append(
                        (
                            log_score + log_g + log_pop,
                            length + lengths[i][j],
                            indices + (j,),
                        )
                    )
            merged.sort(key=rank_key)
            nxt.append(merged[:k])
        current = nxt

    final: List[Tuple[float, float, Tuple[int, ...]]] = [
        item for partials in current for item in partials
    ]
    final.sort(key=rank_key)
    return [
        GlobalRoute(
            log_score=log_score,
            local_indices=indices,
            route=_assemble(network, stages, indices, engine=engine),
        )
        for log_score, __, indices in final[:k]
    ]


def brute_force_global_routes(
    network: RoadNetwork,
    stages: Sequence[Sequence[LocalRoute]],
    k: int,
    max_combinations: int = 2_000_000,
) -> List[GlobalRoute]:
    """Enumerate every combination of local routes and keep the top-``k``.

    The exponential baseline of Fig. 14b.  Refuses to enumerate more than
    ``max_combinations`` combinations.

    Raises:
        ValueError: If the combination count exceeds the cap.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    _validate_stages(stages)
    total = 1
    for stage in stages:
        total *= len(stage)
        if total > max_combinations:
            raise ValueError(
                f"brute force would enumerate more than {max_combinations} "
                "combinations"
            )

    lengths = [
        [lr.route.length(network) for lr in stage] for stage in stages
    ]
    scored: List[Tuple[float, float, Tuple[int, ...]]] = []
    for combo in itertools.product(*(range(len(stage)) for stage in stages)):
        log_score = _log(stages[0][combo[0]].popularity)
        length = lengths[0][combo[0]]
        for i in range(1, len(stages)):
            a = stages[i - 1][combo[i - 1]]
            b = stages[i][combo[i]]
            log_score += _log(transition_confidence(a.support, b.support))
            log_score += _log(b.popularity)
            length += lengths[i][combo[i]]
        scored.append((log_score, length, combo))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [
        GlobalRoute(
            log_score=log_score,
            local_indices=indices,
            route=_assemble(network, stages, indices),
        )
        for log_score, __, indices in scored[:k]
    ]
