"""Unit tests for the time-of-day reference filter (future-work extension)."""

import pytest

from repro.core.archive import TrajectoryArchive
from repro.core.reference import (
    ReferenceSearch,
    ReferenceSearchConfig,
    time_of_day_difference_s,
)
from repro.geo.point import Point
from repro.roadnet.generators import manhattan_line
from repro.trajectory.model import GPSPoint, Trajectory


HOUR = 3_600.0
DAY = 86_400.0


class TestTimeOfDayDifference:
    def test_same_time(self):
        assert time_of_day_difference_s(100.0, 100.0) == 0.0

    def test_plain_difference(self):
        assert time_of_day_difference_s(9 * HOUR, 11 * HOUR) == 2 * HOUR

    def test_wraps_midnight(self):
        # 23:50 vs 00:10 is 20 minutes, not 23:40.
        assert time_of_day_difference_s(23 * HOUR + 50 * 60, 10 * 60) == 20 * 60

    def test_different_days_same_time(self):
        assert time_of_day_difference_s(9 * HOUR, 9 * HOUR + 3 * DAY) == 0.0

    def test_symmetric(self):
        assert time_of_day_difference_s(5 * HOUR, 20 * HOUR) == (
            time_of_day_difference_s(20 * HOUR, 5 * HOUR)
        )

    def test_max_is_half_day(self):
        assert time_of_day_difference_s(0.0, 12 * HOUR) == 12 * HOUR

    def test_wrap_at_day_boundary(self):
        # t_a just before 86400, t_b just after 0: the circular distance is
        # the 20 s across midnight, not 23 h 59 m 40 s.
        assert time_of_day_difference_s(DAY - 10.0, 10.0) == 20.0
        assert time_of_day_difference_s(10.0, DAY - 10.0) == 20.0
        # Exactly on the boundary, and across several whole days.
        assert time_of_day_difference_s(DAY, 0.0) == 0.0
        assert time_of_day_difference_s(4 * DAY - 10.0, 2 * DAY + 10.0) == 20.0


def corridor_traj(tid, start_time):
    pts = [
        GPSPoint(Point(i * 100.0, 10.0), start_time + i * 20.0) for i in range(15)
    ]
    return Trajectory.build(tid, pts)


class TestTemporalFilter:
    @pytest.fixture()
    def line(self):
        return manhattan_line(n_nodes=10, spacing=200.0)

    @pytest.fixture()
    def archive(self):
        # One morning trip (09:00) and one night trip (23:00) on the same
        # corridor.
        return TrajectoryArchive.from_trips(
            [corridor_traj(0, 9 * HOUR), corridor_traj(1, 23 * HOUR)]
        )

    def query_pair(self, t0):
        return (
            GPSPoint(Point(0.0, 0.0), t0),
            GPSPoint(Point(1000.0, 0.0), t0 + 600.0),
        )

    def test_disabled_filter_keeps_all(self, line, archive):
        search = ReferenceSearch(
            archive, line, ReferenceSearchConfig(phi=300.0)
        )
        refs = search.search(*self.query_pair(9 * HOUR))
        assert len(refs) == 2

    def test_morning_query_keeps_morning_history(self, line, archive):
        search = ReferenceSearch(
            archive,
            line,
            ReferenceSearchConfig(phi=300.0, time_of_day_window_s=2 * HOUR),
        )
        refs = search.search(*self.query_pair(9 * HOUR))
        assert len(refs) == 1
        assert refs[0].source_ids == (0,)

    def test_night_query_keeps_night_history(self, line, archive):
        search = ReferenceSearch(
            archive,
            line,
            ReferenceSearchConfig(phi=300.0, time_of_day_window_s=2 * HOUR),
        )
        refs = search.search(*self.query_pair(23 * HOUR))
        assert len(refs) == 1
        assert refs[0].source_ids == (1,)

    def test_window_wraps_midnight(self, line, archive):
        # A 00:30 query must still see the 23:00 trip with a 2 h window.
        search = ReferenceSearch(
            archive,
            line,
            ReferenceSearchConfig(phi=300.0, time_of_day_window_s=2 * HOUR),
        )
        refs = search.search(*self.query_pair(DAY + 0.5 * HOUR))
        assert len(refs) == 1
        assert refs[0].source_ids == (1,)

    def test_hris_config_passthrough(self):
        from repro.core.system import HRISConfig

        cfg = HRISConfig(time_of_day_window_s=3 * HOUR)
        assert cfg.reference_config().time_of_day_window_s == 3 * HOUR
        assert HRISConfig().reference_config().time_of_day_window_s is None
