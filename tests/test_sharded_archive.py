"""Shard-boundary correctness and persistence of the tiled archive layer.

The contract under test: :class:`ShardedArchive` is a drop-in replacement
for :class:`InMemoryArchive` — every query (`points_in_bbox`,
`points_near`, `trajectories_near_pair`) returns *identical* results on
identical trips, including trajectories straddling tile edges, and full
HRIS inference is bit-identical whichever backend serves the reference
search.
"""

import json
import math

import numpy as np
import pytest

from repro.core.archive import (
    InMemoryArchive,
    ShardedArchive,
    convert_archive,
    load_archive,
    make_archive,
    save_archive,
)
from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.trajectory.model import GPSPoint, Trajectory

TILE = 500.0


def random_archives(rng, n_trips=12, extent=4_000.0, tile=TILE):
    """A matched (memory, sharded) archive pair of random trajectories.

    Trajectories take long straight-ish strides (200–900 m), so most of
    them cross several ``tile``-sized tiles — the boundary regime the
    sharded backend must merge correctly.
    """
    mem, sh = InMemoryArchive(), ShardedArchive(tile_size=tile)
    for __ in range(n_trips):
        n = int(rng.integers(2, 12))
        x, y = rng.uniform(0.0, extent, size=2)
        pts = []
        t = 0.0
        for __ in range(n):
            pts.append(GPSPoint(Point(x, y), t))
            heading = rng.uniform(0.0, 2.0 * math.pi)
            step = rng.uniform(200.0, 900.0)
            x += step * math.cos(heading)
            y += step * math.sin(heading)
            t += 30.0
        traj = Trajectory.build(0, pts)
        mem.add(traj)
        sh.add(traj)
    return mem, sh


def straddling_trajectory(tile=TILE):
    """Points alternating across a tile edge, some exactly on it."""
    pts = []
    for i in range(8):
        x = tile + (i % 2 * 2 - 1) * 10.0 * (i + 1)  # hops around x = tile
        if i == 4:
            x = tile  # exactly on the boundary
        pts.append(GPSPoint(Point(x, 40.0 * i), 30.0 * i))
    return Trajectory.build(0, pts)


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomised_queries_identical(self, seed):
        rng = np.random.default_rng(seed)
        mem, sh = random_archives(rng)
        for __ in range(25):
            q = Point(*rng.uniform(-500.0, 4_500.0, size=2))
            radius = float(rng.uniform(50.0, 1_500.0))
            assert mem.points_near(q, radius) == sh.points_near(q, radius)
            x0, y0 = rng.uniform(-500.0, 4_000.0, size=2)
            box = BBox(x0, y0, x0 + rng.uniform(10.0, 2_000.0), y0 + rng.uniform(10.0, 2_000.0))
            assert mem.points_in_bbox(box) == sh.points_in_bbox(box)
            assert mem.density_per_km2(box) == sh.density_per_km2(box)

    @pytest.mark.parametrize("seed", range(6))
    def test_randomised_pair_queries_identical(self, seed):
        rng = np.random.default_rng(100 + seed)
        mem, sh = random_archives(rng)
        for __ in range(15):
            qi = Point(*rng.uniform(0.0, 4_000.0, size=2))
            qi1 = Point(*rng.uniform(0.0, 4_000.0, size=2))
            radius = float(rng.uniform(100.0, 1_200.0))
            assert mem.trajectories_near_pair(qi, qi1, radius) == sh.trajectories_near_pair(qi, qi1, radius)

    def test_straddling_trajectory_and_boundary_queries(self):
        mem, sh = InMemoryArchive(), ShardedArchive(tile_size=TILE)
        traj = straddling_trajectory()
        mem.add(traj)
        sh.add(traj)
        # Probe exactly on the tile edge, just inside, and just outside.
        for x in (TILE, TILE - 1e-9, TILE + 1e-9, 0.0, 2.0 * TILE):
            for radius in (0.0, 15.0, 120.0, 600.0):
                q = Point(x, 100.0)
                assert mem.points_near(q, radius) == sh.points_near(q, radius)
        edge_box = BBox(TILE, 0.0, TILE, 300.0)  # zero-width box on the seam
        assert mem.points_in_bbox(edge_box) == sh.points_in_bbox(edge_box)

    def test_mutations_keep_backends_identical(self):
        rng = np.random.default_rng(7)
        mem, sh = random_archives(rng, n_trips=8)
        probe = Point(2_000.0, 2_000.0)
        # Warm both indexes, then mutate: adds and removes must be visible
        # without a rebuild and keep the backends aligned.
        assert mem.points_near(probe, 1_000.0) == sh.points_near(probe, 1_000.0)
        extra = straddling_trajectory()
        assert mem.add(extra) == sh.add(extra)
        victim = mem.trajectory_ids()[0]
        assert mem.remove(victim) and sh.remove(victim)
        for radius in (200.0, 800.0, 3_000.0):
            assert mem.points_near(probe, radius) == sh.points_near(probe, radius)
        assert mem.num_points == sh.num_points

    def test_convert_preserves_ids_and_results(self):
        rng = np.random.default_rng(11)
        mem, __ = random_archives(rng)
        mem.remove(mem.trajectory_ids()[2])  # leave an id gap
        sh = convert_archive(mem, "sharded", TILE)
        assert sh.trajectory_ids() == mem.trajectory_ids()
        q = Point(1_500.0, 1_500.0)
        assert mem.trajectories_near(q, 2_000.0) == sh.trajectories_near(q, 2_000.0)
        # A later add must not collide with a pre-conversion id.
        new_id = sh.add(straddling_trajectory())
        assert new_id not in mem


class TestTileRouting:
    def test_lazy_materialisation(self):
        rng = np.random.default_rng(3)
        __, sh = random_archives(rng, n_trips=20, extent=8_000.0, tile=400.0)
        assert sh.resident_tiles == 0
        probe = sh.trajectory(0).points[0].point  # guaranteed-occupied area
        assert sh.points_near(probe, 300.0)
        assert 0 < sh.resident_tiles < sh.total_tiles
        assert sh.resident_points < sh.num_points

    def test_prepare_for_fork_builds_no_trees(self):
        rng = np.random.default_rng(4)
        __, sh = random_archives(rng)
        sh.prepare_for_fork()
        assert sh.total_tiles > 0
        assert sh.resident_tiles == 0

    def test_tile_key_and_validation(self):
        sh = ShardedArchive(tile_size=100.0)
        assert sh.tile_key(Point(-0.5, 250.0)) == (-1, 2)
        with pytest.raises(ValueError):
            ShardedArchive(tile_size=0.0)

    def test_make_archive_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown archive backend"):
            make_archive("bogus")


class TestPersistence:
    def test_sharded_round_trip_reuses_tile_index(self, tmp_path):
        rng = np.random.default_rng(21)
        __, sh = random_archives(rng)
        save_archive(sh, tmp_path / "arch")
        restored = load_archive(tmp_path / "arch")
        assert isinstance(restored, ShardedArchive)
        assert restored.tile_size == sh.tile_size
        # The persisted tile index is restored, not re-binned lazily.
        assert restored._assignment is not None
        assert restored.total_tiles == sh.total_tiles
        q = Point(2_000.0, 1_000.0)
        assert restored.points_near(q, 1_500.0) == sh.points_near(q, 1_500.0)
        assert restored.trajectory_ids() == sh.trajectory_ids()

    def test_memory_round_trip(self, tmp_path):
        rng = np.random.default_rng(22)
        mem, __ = random_archives(rng)
        save_archive(mem, tmp_path / "arch")
        restored = load_archive(tmp_path / "arch")
        assert isinstance(restored, InMemoryArchive)
        q = Point(500.0, 500.0)
        assert restored.points_near(q, 2_000.0) == mem.points_near(q, 2_000.0)

    def test_backend_override_on_load(self, tmp_path):
        rng = np.random.default_rng(23)
        mem, __ = random_archives(rng)
        save_archive(mem, tmp_path / "arch")
        restored = load_archive(tmp_path / "arch", backend="sharded", tile_size=250.0)
        assert isinstance(restored, ShardedArchive)
        assert restored.tile_size == 250.0
        q = Point(500.0, 500.0)
        assert restored.points_near(q, 2_000.0) == mem.points_near(q, 2_000.0)

    def test_manifest_version_mismatch_names_found_version(self, tmp_path):
        """A future/foreign manifest fails up front, naming the version it
        found — before any trip parsing (trips.jsonl may not even parse)."""
        rng = np.random.default_rng(24)
        mem, __ = random_archives(rng, n_trips=2)
        save_archive(mem, tmp_path / "arch")
        manifest_path = tmp_path / "arch" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "repro-archive-v999"
        manifest_path.write_text(json.dumps(manifest))
        (tmp_path / "arch" / "trips.jsonl").write_text("not even json\n")
        with pytest.raises(ValueError, match="repro-archive-v999"):
            load_archive(tmp_path / "arch")

    def test_manifest_without_format_field_rejected(self, tmp_path):
        directory = tmp_path / "arch"
        directory.mkdir()
        (directory / "manifest.json").write_text('{"backend": "memory"}')
        with pytest.raises(ValueError, match="no 'format' field"):
            load_archive(directory)

    def test_next_id_survives_round_trip(self, tmp_path):
        mem = InMemoryArchive()
        a = mem.add(straddling_trajectory())
        b = mem.add(straddling_trajectory())
        mem.remove(b)  # next_id must stay past the removed trailing id
        save_archive(mem, tmp_path / "arch")
        restored = load_archive(tmp_path / "arch")
        assert restored.add(straddling_trajectory()) == b + 1
        assert a in restored


class TestCrashSafeSave:
    """``save_archive`` stages into a temp directory and commits by atomic
    rename — a fault *anywhere* mid-save leaves the previous archive
    loadable and no staging debris behind."""

    def test_fault_mid_write_preserves_existing_archive(self, tmp_path, monkeypatch):
        import repro.core.archive as archive_mod

        rng = np.random.default_rng(31)
        mem, __ = random_archives(rng, n_trips=5)
        target = tmp_path / "arch"
        save_archive(mem, target)

        def exploding_save(trips, path):
            # Partial bytes reach the disk before the "crash" — exactly
            # the torn write the staging directory must contain.
            with open(path, "w", encoding="utf-8") as fh:
                fh.write('{"torn":')
            raise OSError("injected fault: device full mid-write")

        bigger, __ = random_archives(np.random.default_rng(32), n_trips=9)
        monkeypatch.setattr(archive_mod, "save_trajectories", exploding_save)
        with pytest.raises(OSError, match="injected fault"):
            save_archive(bigger, target)
        monkeypatch.undo()

        # The previous archive is untouched and loadable, the staging
        # directory was cleaned up on the way out.
        assert not (tmp_path / "arch.saving.tmp").exists()
        assert not (tmp_path / "arch.prev.tmp").exists()
        restored = load_archive(target)
        assert restored.trajectory_ids() == mem.trajectory_ids()
        assert restored.num_points == mem.num_points

    def test_crash_between_renames_recovers_on_next_load(self, tmp_path):
        """The narrowest window: old archive renamed to its stash but the
        staged replacement never committed.  Load finds the stash and
        restores it."""
        import os

        rng = np.random.default_rng(33)
        mem, __ = random_archives(rng, n_trips=4)
        target = tmp_path / "arch"
        save_archive(mem, target)
        os.rename(target, tmp_path / "arch.prev.tmp")  # simulated crash point

        restored = load_archive(target)
        assert target.exists()
        assert not (tmp_path / "arch.prev.tmp").exists()
        assert restored.trajectory_ids() == mem.trajectory_ids()

    def test_successful_resave_replaces_and_leaves_no_debris(self, tmp_path):
        rng = np.random.default_rng(34)
        mem, __ = random_archives(rng, n_trips=3)
        target = tmp_path / "arch"
        save_archive(mem, target)
        mem.add(straddling_trajectory())
        save_archive(mem, target)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["arch"]
        restored = load_archive(target)
        assert restored.trajectory_ids() == mem.trajectory_ids()


class TestInferenceIdentity:
    def test_hris_bit_identical_across_backends(self, corridor_world):
        """Acceptance: routes AND A_L identical between backends."""
        from repro.core.system import HRIS, HRISConfig
        from repro.eval.metrics import route_accuracy
        from repro.trajectory.resample import downsample

        sharded = convert_archive(corridor_world.archive, "sharded", 600.0)
        h_mem = HRIS(corridor_world.network, corridor_world.archive, HRISConfig())
        h_sh = HRIS(corridor_world.network, sharded, HRISConfig())
        query = downsample(corridor_world.query, 240.0)
        r_mem = h_mem.infer_routes(query)
        r_sh = h_sh.infer_routes(query)
        assert [(g.route.segment_ids, g.log_score) for g in r_mem] == [
            (g.route.segment_ids, g.log_score) for g in r_sh
        ]
        net, truth = corridor_world.network, corridor_world.truth
        assert route_accuracy(net, truth, r_mem[0].route) == route_accuracy(
            net, truth, r_sh[0].route
        )

    def test_batch_prepares_shards_before_fork(self, corridor_world):
        from repro.core.system import HRIS, HRISConfig
        from repro.trajectory.resample import downsample

        sharded = convert_archive(corridor_world.archive, "sharded", 600.0)
        hris = HRIS(corridor_world.network, sharded, HRISConfig())
        queries = [
            downsample(corridor_world.query, 240.0),
            downsample(corridor_world.query, 300.0),
        ]
        single = [hris.infer_routes(q) for q in queries]
        batch = hris.infer_routes_batch(queries, workers=2, use_processes=True)
        assert sharded._assignment is not None  # binned pre-fork
        assert [
            [(g.route.segment_ids, g.log_score) for g in rs] for rs in batch
        ] == [[(g.route.segment_ids, g.log_score) for g in rs] for rs in single]
