"""Shared fixtures for the HRIS core tests.

``corridor_world`` builds a small deterministic world: a 10x6 grid city, an
archive of simulated trips over two alternative routes of one OD pair
(heavily skewed towards the first), and a high-rate query driven on the
popular route.
"""

from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.core.archive import TrajectoryArchive
from repro.datasets.synthetic import alternative_routes
from repro.roadnet.generators import GridCityConfig, grid_city
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import Route
from repro.trajectory.model import Trajectory
from repro.trajectory.simulate import DriveConfig, drive_route


@dataclass
class CorridorWorld:
    network: RoadNetwork
    archive: TrajectoryArchive
    routes: List[Route]          # alternative routes, most popular first
    query: Trajectory            # high-rate noisy drive on routes[0]
    truth: Route


@pytest.fixture(scope="session")
def corridor_world() -> CorridorWorld:
    rng = np.random.default_rng(1234)
    network = grid_city(
        GridCityConfig(nx=10, ny=6, drop_fraction=0.05, arterial_every=3), rng
    )
    source, target = 0, 59
    routes = alternative_routes(network, source, target, 3, rng)
    assert routes, "corridor world needs at least one route"

    archive = TrajectoryArchive()
    counts = [14, 4, 2][: len(routes)]
    tid = 0
    for route, n in zip(routes, counts):
        for __ in range(n):
            drive = drive_route(
                network,
                route,
                tid,
                start_time=float(rng.uniform(0, 86_400)),
                config=DriveConfig(sample_interval_s=60.0, gps_sigma_m=12.0),
                rng=rng,
            )
            archive.add(drive.trajectory)
            tid += 1

    query_drive = drive_route(
        network,
        routes[0],
        9999,
        config=DriveConfig(sample_interval_s=15.0, gps_sigma_m=12.0),
        rng=rng,
    )
    return CorridorWorld(
        network=network,
        archive=archive,
        routes=routes,
        query=query_drive.trajectory,
        truth=query_drive.route,
    )
