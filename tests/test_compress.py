"""Unit and property tests for trajectory compression."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.trajectory.compress import (
    compression_error,
    douglas_peucker,
    uniform_compress,
)
from repro.trajectory.model import GPSPoint, Trajectory


def traj_from_xy(coords, tid=1):
    return Trajectory.build(
        tid, [GPSPoint(Point(x, y), float(i)) for i, (x, y) in enumerate(coords)]
    )


class TestDouglasPeucker:
    def test_negative_tolerance_raises(self):
        with pytest.raises(ValueError):
            douglas_peucker(traj_from_xy([(0, 0), (1, 0)]), -1.0)

    def test_short_trajectory_unchanged(self):
        t = traj_from_xy([(0, 0), (1, 0)])
        assert douglas_peucker(t, 10.0) is t

    def test_collinear_collapses_to_endpoints(self):
        t = traj_from_xy([(float(i), 0.0) for i in range(20)])
        c = douglas_peucker(t, 0.1)
        assert len(c) == 2
        assert c[0].point == Point(0, 0)
        assert c[1].point == Point(19, 0)

    def test_corner_retained(self):
        t = traj_from_xy([(0, 0), (50, 0), (100, 0), (100, 50), (100, 100)])
        c = douglas_peucker(t, 5.0)
        assert Point(100, 0) in [p.point for p in c.points]

    def test_zero_tolerance_keeps_shape_points(self):
        zigzag = traj_from_xy([(0, 0), (1, 1), (2, 0), (3, 1), (4, 0)])
        c = douglas_peucker(zigzag, 0.0)
        assert len(c) == 5

    def test_error_bounded_by_tolerance(self):
        rng = np.random.default_rng(5)
        coords = np.cumsum(rng.normal(0, 30, size=(60, 2)), axis=0)
        t = traj_from_xy([(float(x), float(y)) for x, y in coords])
        for tol in (10.0, 50.0, 200.0):
            c = douglas_peucker(t, tol)
            assert compression_error(t, c) <= tol + 1e-6

    def test_monotone_in_tolerance(self):
        rng = np.random.default_rng(6)
        coords = np.cumsum(rng.normal(0, 30, size=(60, 2)), axis=0)
        t = traj_from_xy([(float(x), float(y)) for x, y in coords])
        sizes = [len(douglas_peucker(t, tol)) for tol in (1.0, 10.0, 100.0)]
        assert sizes == sorted(sizes, reverse=True)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-500, 500), st.floats(-500, 500)),
            min_size=2,
            max_size=25,
        ),
        st.floats(0.5, 100.0),
    )
    def test_property_error_bound(self, coords, tol):
        t = traj_from_xy(coords)
        c = douglas_peucker(t, tol)
        assert compression_error(t, c) <= tol + 1e-6
        assert c[0].point == t[0].point
        assert c[len(c) - 1].point == t[len(t) - 1].point


class TestUniformCompress:
    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_compress(traj_from_xy([(0, 0), (1, 0)]), 0)

    def test_identity(self):
        t = traj_from_xy([(float(i), 0.0) for i in range(10)])
        assert uniform_compress(t, 1) is t

    def test_every_third(self):
        t = traj_from_xy([(float(i), 0.0) for i in range(10)])
        c = uniform_compress(t, 3)
        xs = [p.point.x for p in c.points]
        assert xs == [0.0, 3.0, 6.0, 9.0]

    def test_endpoints_kept(self):
        t = traj_from_xy([(float(i), 0.0) for i in range(11)])
        c = uniform_compress(t, 4)
        assert c[0].point == t[0].point
        assert c[len(c) - 1].point == t[10].point
