"""Unit tests for the synthetic scenario builder."""

import math

import numpy as np
import pytest

from repro.datasets.synthetic import (
    ScenarioConfig,
    alternative_routes,
    build_scenario,
    zipf_weights,
)
from repro.roadnet.generators import GridCityConfig, grid_city
from repro.trajectory.model import LOW_SAMPLING_THRESHOLD_S


SMALL = ScenarioConfig(
    grid=GridCityConfig(nx=8, ny=8),
    n_od_pairs=4,
    n_archive_trips=40,
    n_background_trips=5,
    min_od_distance=2000.0,
    n_queries=3,
    seed=5,
)


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(SMALL)


class TestZipf:
    def test_invalid(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_normalised(self):
        w = zipf_weights(5, 1.3)
        assert math.isclose(w.sum(), 1.0)

    def test_skewed_and_sorted(self):
        w = zipf_weights(4, 1.5)
        assert all(a > b for a, b in zip(w, w[1:]))
        assert w[0] > 0.5

    def test_higher_s_more_skew(self):
        assert zipf_weights(3, 2.0)[0] > zipf_weights(3, 1.0)[0]


class TestAlternativeRoutes:
    def test_distinct_connected(self):
        rng = np.random.default_rng(3)
        net = grid_city(GridCityConfig(nx=8, ny=8), rng)
        routes = alternative_routes(net, 0, 63, 3, rng)
        assert 1 <= len(routes) <= 3
        keys = {r.segment_ids for r in routes}
        assert len(keys) == len(routes)
        for r in routes:
            assert r.is_connected(net)
            assert r.start_node(net) == 0
            assert r.end_node(net) == 63

    def test_first_route_is_time_optimal(self):
        rng = np.random.default_rng(4)
        net = grid_city(GridCityConfig(nx=8, ny=8, arterial_every=3), rng)
        routes = alternative_routes(net, 0, 63, 3, rng)
        times = [
            sum(net.segment(s).travel_time for s in r.segment_ids) for r in routes
        ]
        assert times[0] == min(times)


class TestConfigValidation:
    def test_interval_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ScenarioConfig(
                archive_intervals=(30.0, 60.0),
                archive_interval_weights=(0.5, 0.6),
            )

    def test_mixture_lengths_must_match(self):
        with pytest.raises(ValueError):
            ScenarioConfig(
                archive_intervals=(30.0,),
                archive_interval_weights=(0.5, 0.5),
            )

    def test_need_positive_counts(self):
        with pytest.raises(ValueError):
            ScenarioConfig(n_od_pairs=0)


class TestBuildScenario:
    def test_sizes(self, scenario):
        assert len(scenario.archive) == SMALL.n_archive_trips + SMALL.n_background_trips
        assert len(scenario.queries) == SMALL.n_queries
        assert len(scenario.od_routes) >= 1

    def test_route_probabilities_normalised(self, scenario):
        for probs in scenario.route_probabilities:
            assert math.isclose(probs.sum(), 1.0)

    def test_queries_have_exact_truth(self, scenario):
        for case in scenario.queries:
            assert case.truth.is_connected(scenario.network)
            # The high-rate query starts near the truth's start.
            start = case.truth.start_point(scenario.network)
            assert case.query[0].point.distance_to(start) < 100.0

    def test_queries_are_high_rate(self, scenario):
        for case in scenario.queries:
            assert case.query.mean_sampling_interval < LOW_SAMPLING_THRESHOLD_S

    def test_archive_mixes_sampling_rates(self, scenario):
        intervals = [t.mean_sampling_interval for t in scenario.archive.trajectories()]
        assert any(i <= 60.0 for i in intervals)
        assert any(i >= 100.0 for i in intervals)

    def test_deterministic(self):
        a = build_scenario(SMALL)
        b = build_scenario(SMALL)
        assert a.archive.num_points == b.archive.num_points
        for qa, qb in zip(a.queries, b.queries):
            assert qa.truth.segment_ids == qb.truth.segment_ids
            assert [p.point for p in qa.query.points] == [
                p.point for p in qb.query.points
            ]

    def test_od_separation_respected(self, scenario):
        net = scenario.network
        for routes in scenario.od_routes:
            start = routes[0].start_point(net)
            end = routes[0].end_point(net)
            assert start.distance_to(end) >= SMALL.min_od_distance
