"""Unit tests for the traverse-graph inference (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.reference import Reference, ReferenceSearch, ReferenceSearchConfig
from repro.core.traverse_graph import TGIConfig, TraverseGraphInference, _filter_detours
from repro.geo.point import Point
from repro.roadnet.generators import manhattan_line
from repro.roadnet.route import Route
from repro.trajectory.model import GPSPoint


def make_ref(points, ref_id=0, tid=0):
    return Reference(
        ref_id=ref_id, source_ids=(tid,), points=tuple(points), spliced=False
    )


@pytest.fixture()
def line():
    return manhattan_line(n_nodes=10, spacing=200.0)


def corridor_reference(ref_id=0, offset_y=8.0):
    return make_ref(
        [Point(i * 100.0, offset_y) for i in range(19)], ref_id=ref_id
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TGIConfig(lam=0)
        with pytest.raises(ValueError):
            TGIConfig(k_shortest=0)
        with pytest.raises(ValueError):
            TGIConfig(candidate_radius=0)


class TestFilterDetours:
    def test_empty(self, line):
        assert _filter_detours(line, [], 1.5) == []

    def test_relative_mode_keeps_shortest(self, line):
        routes = [Route.of([0]), Route.of([0, 2, 4, 6, 8])]
        kept = _filter_detours(line, routes, 1.5)
        assert Route.of([0]) in kept
        assert Route.of([0, 2, 4, 6, 8]) not in kept

    def test_yardstick_mode_strict(self, line):
        routes = [Route.of([0, 2, 4, 6, 8])]  # 1000 m
        kept = _filter_detours(line, routes, 1.5, yardstick=200.0)
        assert kept == []


class TestInference:
    def test_no_references_empty(self, line):
        tgi = TraverseGraphInference(line)
        routes, stats = tgi.infer(Point(0, 0), Point(1000, 0), [])
        assert routes == []
        assert stats.n_traverse_edges == 0

    def test_recovers_corridor(self, line):
        tgi = TraverseGraphInference(line, TGIConfig(candidate_radius=50.0))
        refs = [corridor_reference(i) for i in range(3)]
        routes, stats = tgi.infer(Point(0, 0), Point(1000, 0), refs)
        assert routes
        best = routes[0]
        # The best local route runs east along the corridor.
        assert best.start_point(line).x <= 200.0
        assert best.end_point(line).x >= 800.0
        assert stats.n_traverse_edges > 0
        assert stats.n_ksp_calls >= 1

    def test_routes_are_connected(self, line):
        tgi = TraverseGraphInference(line)
        refs = [corridor_reference(i) for i in range(2)]
        routes, __ = tgi.infer(Point(0, 0), Point(1000, 0), refs)
        for r in routes:
            assert r.is_connected(line)

    def test_max_routes_cap(self, line):
        cfg = TGIConfig(max_routes=2)
        tgi = TraverseGraphInference(line, cfg)
        refs = [corridor_reference(i) for i in range(3)]
        routes, __ = tgi.infer(Point(0, 0), Point(1000, 0), refs)
        assert len(routes) <= 2

    def test_reduction_counts_removals(self, line):
        refs = [corridor_reference(i) for i in range(2)]
        with_red = TraverseGraphInference(line, TGIConfig(lam=4, use_reduction=True))
        without = TraverseGraphInference(line, TGIConfig(lam=4, use_reduction=False))
        __, stats_red = with_red.infer(Point(0, 0), Point(1000, 0), refs)
        __, stats_no = without.infer(Point(0, 0), Point(1000, 0), refs)
        assert stats_red.n_links_removed > 0
        assert stats_no.n_links_removed == 0

    def test_reduction_preserves_best_route(self, line):
        refs = [corridor_reference(i) for i in range(2)]
        with_red = TraverseGraphInference(line, TGIConfig(use_reduction=True))
        without = TraverseGraphInference(line, TGIConfig(use_reduction=False))
        r1, __ = with_red.infer(Point(0, 0), Point(1000, 0), refs)
        r2, __ = without.infer(Point(0, 0), Point(1000, 0), refs)
        assert r1 and r2
        assert r1[0].segment_ids == r2[0].segment_ids

    def test_augmentation_bridges_gap(self, line):
        # References cover x in [0, 300] and [700, 1000] with a hole in the
        # middle larger than λ hops: without augmentation no path exists.
        left = make_ref([Point(x, 8.0) for x in (0.0, 100.0, 200.0, 300.0)], 0)
        right = make_ref([Point(x, 8.0) for x in (1400.0, 1500.0, 1600.0, 1700.0)], 1)
        qi, qi1 = Point(0, 0), Point(1700, 0)
        no_aug = TraverseGraphInference(
            line, TGIConfig(lam=2, use_augmentation=False, max_detour_ratio=3.0)
        )
        with_aug = TraverseGraphInference(
            line, TGIConfig(lam=2, use_augmentation=True, max_detour_ratio=3.0)
        )
        routes_no, __ = no_aug.infer(qi, qi1, [left, right])
        routes_yes, stats = with_aug.infer(qi, qi1, [left, right])
        assert routes_no == []
        assert routes_yes
        assert stats.n_links_augmented > 0

    def test_larger_lambda_more_links(self, line):
        refs = [corridor_reference(i) for i in range(2)]
        small = TraverseGraphInference(line, TGIConfig(lam=2, use_reduction=False))
        large = TraverseGraphInference(line, TGIConfig(lam=5, use_reduction=False))
        __, s_small = small.infer(Point(0, 0), Point(1000, 0), refs)
        __, s_large = large.infer(Point(0, 0), Point(1000, 0), refs)
        assert s_large.n_links > s_small.n_links

    def test_directional_traverse_edges(self, line):
        # Eastbound references must not produce westbound traverse edges.
        tgi = TraverseGraphInference(line)
        refs = [corridor_reference(0)]
        edges = tgi._collect_traverse_edges(refs)
        for sid in edges:
            seg = line.segment(sid)
            assert (seg.polyline[-1] - seg.polyline[0]).x > 0


class TestOnCity:
    def test_city_inference(self, corridor_world):
        world = corridor_world
        cfg = ReferenceSearchConfig(phi=500.0)
        search = ReferenceSearch(world.archive, world.network, cfg)
        q = world.query
        mid = len(q) // 2
        qi, qi1 = q[0], q[mid]
        refs = search.search(qi, qi1)
        assert refs
        tgi = TraverseGraphInference(world.network)
        routes, __ = tgi.infer(qi.point, qi1.point, refs)
        assert routes
        truth_ids = set(world.truth.segment_ids)
        overlap = max(
            len(set(r.segment_ids) & truth_ids) / max(len(r), 1) for r in routes
        )
        assert overlap > 0.5
