"""Unit tests for downsampling and GPS noise."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.trajectory.model import GPSPoint, Trajectory
from repro.trajectory.resample import add_gps_noise, downsample, shift_time


def uniform_traj(n=20, dt=15.0):
    pts = [GPSPoint(Point(i * 10.0, 0.0), i * dt) for i in range(n)]
    return Trajectory.build(7, pts)


class TestDownsample:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            downsample(uniform_traj(), 0.0)

    def test_keeps_endpoints(self):
        t = uniform_traj(20)
        d = downsample(t, 60.0)
        assert d[0] == t[0]
        assert d[len(d) - 1] == t[19]

    def test_target_interval_respected(self):
        t = uniform_traj(100, dt=15.0)
        d = downsample(t, 120.0)
        gaps = [b.t - a.t for a, b in zip(d.points, d.points[1:-1])]
        assert all(g >= 120.0 for g in gaps)

    def test_short_trajectory_unchanged(self):
        t = uniform_traj(2)
        assert downsample(t, 1000.0) is t

    def test_interval_larger_than_duration(self):
        t = uniform_traj(10, dt=10.0)
        d = downsample(t, 10_000.0)
        assert len(d) == 2  # just the endpoints

    def test_preserves_id(self):
        assert downsample(uniform_traj(), 60.0).traj_id == 7

    @given(st.floats(20.0, 500.0))
    @settings(max_examples=20)
    def test_mean_interval_increases(self, interval):
        t = uniform_traj(100, dt=15.0)
        d = downsample(t, interval)
        if len(d) > 2:
            assert d.mean_sampling_interval >= t.mean_sampling_interval


class TestNoise:
    def test_negative_sigma_raises(self):
        with pytest.raises(ValueError):
            add_gps_noise(uniform_traj(), -1.0)

    def test_zero_sigma_identity(self):
        t = uniform_traj()
        assert add_gps_noise(t, 0.0) is t

    def test_preserves_timestamps(self):
        t = uniform_traj()
        noisy = add_gps_noise(t, 10.0, np.random.default_rng(3))
        assert [p.t for p in noisy.points] == [p.t for p in t.points]

    def test_noise_magnitude_reasonable(self):
        t = uniform_traj(500)
        noisy = add_gps_noise(t, 10.0, np.random.default_rng(5))
        offsets = [a.point.distance_to(b.point) for a, b in zip(t.points, noisy.points)]
        mean_offset = sum(offsets) / len(offsets)
        # Mean of a Rayleigh(10) is ~12.5.
        assert 8.0 < mean_offset < 18.0

    def test_deterministic_given_rng(self):
        t = uniform_traj()
        a = add_gps_noise(t, 10.0, np.random.default_rng(42))
        b = add_gps_noise(t, 10.0, np.random.default_rng(42))
        assert all(p.point == q.point for p, q in zip(a.points, b.points))


class TestShiftTime:
    def test_shift(self):
        t = uniform_traj()
        s = shift_time(t, 100.0)
        assert s[0].t == t[0].t + 100.0
        assert s.duration == t.duration

    def test_positions_unchanged(self):
        t = uniform_traj()
        s = shift_time(t, -50.0)
        assert [p.point for p in s.points] == [p.point for p in t.points]
