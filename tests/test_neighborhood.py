"""Unit tests for λ-neighborhoods (Definition 8)."""

import numpy as np
import pytest

from repro.roadnet.generators import GridCityConfig, grid_city, manhattan_line
from repro.roadnet.neighborhood import hop_distance, hop_distances, lambda_neighborhood


@pytest.fixture(scope="module")
def line():
    # Eastbound segments 0,2,4,6,8; westbound 1,3,5,7,9 (6 nodes).
    return manhattan_line(n_nodes=6, spacing=100.0)


class TestHopDistances:
    def test_source_is_zero(self, line):
        assert hop_distances(line, 0, 3)[0] == 0

    def test_chain_hops(self, line):
        d = hop_distances(line, 0, 4)
        assert d[2] == 1
        assert d[4] == 2
        assert d[6] == 3

    def test_reverse_twin_is_one_hop(self, line):
        # From eastbound segment 0 (node0->node1) the westbound segment
        # 1 (node1->node0) is an immediate successor (a U-turn).
        d = hop_distances(line, 0, 2)
        assert d[1] == 1

    def test_bounded(self, line):
        d = hop_distances(line, 0, 1)
        assert 4 not in d

    def test_negative_raises(self, line):
        with pytest.raises(ValueError):
            hop_distances(line, 0, -1)


class TestLambdaNeighborhood:
    def test_lambda_zero_empty(self, line):
        assert lambda_neighborhood(line, 0, 0) == set()

    def test_lambda_one_excludes_source(self, line):
        # h(r, s) < 1 means only the source itself, which is excluded.
        assert lambda_neighborhood(line, 0, 1) == set()

    def test_lambda_two_is_immediate_successors(self, line):
        # Matches the paper's Fig. 4: λ=2 connects "within one hop".
        n = lambda_neighborhood(line, 0, 2)
        assert n == {1, 2}

    def test_monotone_in_lambda(self, line):
        prev = set()
        for lam in range(1, 6):
            cur = lambda_neighborhood(line, 0, lam)
            assert prev <= cur
            prev = cur

    def test_grid_city_neighborhood_grows(self):
        net = grid_city(GridCityConfig(nx=6, ny=6), np.random.default_rng(2))
        sid = next(iter(net.segments())).segment_id
        sizes = [len(lambda_neighborhood(net, sid, lam)) for lam in (2, 3, 4)]
        assert sizes[0] < sizes[1] < sizes[2]


class TestHopDistance:
    def test_direct(self, line):
        assert hop_distance(line, 0, 2, 5) == 1

    def test_sentinel_beyond_bound(self, line):
        assert hop_distance(line, 0, 8, 2) == 3  # max_hops + 1 sentinel

    def test_self(self, line):
        assert hop_distance(line, 0, 0, 3) == 0
