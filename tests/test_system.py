"""Unit tests for the HRIS system facade."""

import pytest

from repro.core.system import HRIS, HRISConfig, HRISMatcher
from repro.eval.metrics import precision_recall, route_accuracy
from repro.trajectory.model import Trajectory
from repro.trajectory.resample import downsample


@pytest.fixture(scope="module")
def hris(corridor_world):
    return HRIS(corridor_world.network, corridor_world.archive, HRISConfig())


@pytest.fixture(scope="module")
def low_query(corridor_world):
    return downsample(corridor_world.query, 180.0)


class TestConfig:
    def test_invalid_method(self):
        with pytest.raises(ValueError):
            HRISConfig(local_method="bogus")

    def test_table2_defaults(self):
        # Table II of the paper.
        cfg = HRISConfig()
        assert cfg.phi == 500.0
        assert cfg.tau == 200.0
        assert cfg.lam == 4
        assert cfg.k1 == 5
        assert cfg.k2 == 4
        assert cfg.k3 == 5
        assert cfg.alpha == 500.0
        assert cfg.beta == 1.5

    def test_subconfig_derivation(self):
        cfg = HRISConfig(lam=6, k1=3, k2=2, alpha=100.0, beta=2.0)
        assert cfg.tgi_config().lam == 6
        assert cfg.tgi_config().k_shortest == 3
        assert cfg.nni_config().k == 2
        assert cfg.nni_config().alpha == 100.0
        assert cfg.reference_config().phi == cfg.phi


class TestInference:
    def test_short_query_raises(self, hris, corridor_world):
        single = corridor_world.query.slice(0, 0)
        with pytest.raises(ValueError):
            hris.infer_routes(single)

    def test_returns_k_routes(self, hris, low_query):
        routes = hris.infer_routes(low_query, 3)
        assert 1 <= len(routes) <= 3
        scores = [r.log_score for r in routes]
        assert scores == sorted(scores, reverse=True)

    def test_default_k_is_k3(self, hris, low_query):
        routes = hris.infer_routes(low_query)
        assert len(routes) <= hris.config.k3

    def test_routes_connected(self, hris, low_query, corridor_world):
        for g in hris.infer_routes(low_query, 3):
            assert g.route.is_connected(corridor_world.network)

    def test_top1_recovers_truth(self, hris, low_query, corridor_world):
        top = hris.infer_routes(low_query, 1)[0]
        acc = route_accuracy(corridor_world.network, corridor_world.truth, top.route)
        assert acc > 0.7
        __, recall = precision_recall(
            corridor_world.network, corridor_world.truth, top.route
        )
        assert recall > 0.8

    def test_details_populated(self, hris, low_query):
        routes, detail = hris.infer_routes_with_details(low_query, 2)
        assert routes
        assert len(detail.pairs) == len(low_query) - 1
        assert detail.total_time_s > 0.0
        for pair in detail.pairs:
            assert pair.method in ("tgi", "nni", "hybrid", "fallback")
            assert pair.n_local_routes >= 1

    def test_deterministic(self, hris, low_query):
        a = hris.infer_routes(low_query, 2)
        b = hris.infer_routes(low_query, 2)
        assert [r.route.segment_ids for r in a] == [r.route.segment_ids for r in b]

    def test_local_method_forcing(self, corridor_world, low_query):
        for method in ("tgi", "nni"):
            hris = HRIS(
                corridor_world.network,
                corridor_world.archive,
                HRISConfig(local_method=method),
            )
            routes = hris.infer_routes(low_query, 1)
            assert routes

    def test_no_history_falls_back_to_shortest_path(self, corridor_world, low_query):
        from repro.core.archive import TrajectoryArchive

        hris = HRIS(corridor_world.network, TrajectoryArchive(), HRISConfig())
        routes, detail = hris.infer_routes_with_details(low_query, 1)
        assert routes
        assert all(p.fallback for p in detail.pairs)


class TestMatcherAdapter:
    def test_match_interface(self, hris, low_query, corridor_world):
        matcher = HRISMatcher(hris)
        result = matcher.match(low_query)
        assert result.route.is_connected(corridor_world.network)
        assert len(result.matched) == len(low_query)
