"""Unit tests for the hybrid local inference dispatch."""

import math

import pytest

from repro.core.hybrid import HybridConfig, HybridInference, reference_density_per_km2
from repro.core.nni import NNIConfig
from repro.core.reference import Reference
from repro.core.traverse_graph import TGIConfig
from repro.geo.point import Point
from repro.roadnet.generators import manhattan_line


def make_ref(points, ref_id=0):
    return Reference(
        ref_id=ref_id, source_ids=(ref_id,), points=tuple(points), spliced=False
    )


class TestDensity:
    def test_empty_is_zero(self):
        assert reference_density_per_km2([]) == 0.0

    def test_degenerate_box_is_infinite(self):
        ref = make_ref([Point(5, 5), Point(5, 5)])
        assert math.isinf(reference_density_per_km2([ref]))

    def test_known_density(self):
        # 10 points spread over a 1 km x 1 km box -> 10 per km^2.
        pts = [Point(0, 0), Point(1000, 1000)] + [
            Point(100.0 * i, 500.0) for i in range(1, 9)
        ]
        ref = make_ref(pts)
        assert math.isclose(reference_density_per_km2([ref]), 10.0)

    def test_density_additive_in_points(self):
        base = [Point(0, 0), Point(1000, 1000)]
        a = make_ref(base + [Point(500, 500)])
        b = make_ref(base + [Point(500, 500), Point(400, 400), Point(600, 600)])
        assert reference_density_per_km2([b]) > reference_density_per_km2([a])


class TestDispatch:
    @pytest.fixture()
    def line(self):
        return manhattan_line(n_nodes=10, spacing=200.0)

    def dense_refs(self):
        # Hundreds of points inside a small box -> very high density.
        refs = []
        for k in range(6):
            pts = [Point(i * 60.0, 6.0 * k) for i in range(18)]
            refs.append(make_ref(pts, ref_id=k))
        return refs

    def sparse_refs(self):
        # A handful of points over a wide 2-D area -> low density.  (A
        # perfectly collinear pool would have a zero-area bounding box and
        # count as infinitely dense.)
        return [
            make_ref(
                [Point(i * 250.0, 8.0 + 30.0 * (i % 2)) for i in range(5)],
                ref_id=0,
            )
        ]

    def test_dense_uses_nni(self, line):
        # Prose-literal dispatch (see repro.core.hybrid docstring): dense
        # reference pools go to NNI, sparse ones to TGI.
        hybrid = HybridInference(line, HybridConfig(tau=200.0))
        routes, method = hybrid.infer(Point(0, 0), Point(1000, 0), self.dense_refs())
        assert method == "nni"
        assert routes

    def test_sparse_uses_tgi(self, line):
        hybrid = HybridInference(line, HybridConfig(tau=200.0))
        routes, method = hybrid.infer(Point(0, 0), Point(1000, 0), self.sparse_refs())
        assert method == "tgi"
        assert routes

    def test_tau_extremes_flip_dispatch(self, line):
        refs = self.sparse_refs()
        always_nni = HybridInference(line, HybridConfig(tau=0.0))
        __, method = always_nni.infer(Point(0, 0), Point(1000, 0), refs)
        assert method == "nni"

    def test_fallback_to_other_method(self, line):
        # No references at all: NNI yields nothing, hybrid tries TGI, both
        # empty — the caller gets an empty result rather than an error.
        hybrid = HybridInference(line, HybridConfig(tau=200.0))
        routes, method = hybrid.infer(Point(0, 0), Point(1000, 0), [])
        assert routes == []
