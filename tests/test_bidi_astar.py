"""Bidirectional ALT correctness: distances, canonical paths, edge cases.

The repository's identity gates rest on the bidirectional search being a
drop-in for the unidirectional one — not merely "a shortest path" but the
*same* path (canonical min-id tie-break) with the *same* float distance.
These tests pin both, on structured grids and on randomly generated
networks including disconnected pairs and zero-length edges.
"""

import math
import random

import numpy as np
import pytest

from repro.geo.point import Point
from repro.roadnet.generators import GridCityConfig, grid_city, manhattan_line
from repro.roadnet.network import RoadNetwork, RoadNode, RoadSegment
from repro.roadnet.shortest_path import (
    LandmarkIndex,
    SearchStats,
    astar,
    bidi_astar,
    combined_heuristic,
    dijkstra,
)


def random_network(seed: int, n: int = 30, extra_edges: int = 50) -> RoadNetwork:
    """A random directed network: scattered nodes, random directed edges.

    Deliberately *not* strongly connected — plenty of unreachable pairs —
    and seeded so failures reproduce.
    """
    rng = random.Random(seed)
    nodes = [
        RoadNode(i, Point(rng.uniform(0, 5_000), rng.uniform(0, 5_000)))
        for i in range(n)
    ]
    net = RoadNetwork()
    for node in nodes:
        net.add_node(node)
    sid = 0
    seen = set()
    for __ in range(extra_edges):
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b or (a, b) in seen:
            continue
        seen.add((a, b))
        net.add_segment(
            RoadSegment.build(
                sid, a, b, [nodes[a].point, nodes[b].point], speed_limit=13.9
            )
        )
        sid += 1
    return net


@pytest.fixture(scope="module")
def city():
    return grid_city(
        GridCityConfig(nx=8, ny=8, drop_fraction=0.1, one_way_fraction=0.15),
        np.random.default_rng(11),
    )


@pytest.fixture(scope="module")
def city_landmarks(city):
    return LandmarkIndex.build(city, 6)


class TestDistanceIdentity:
    def test_matches_dijkstra_on_city(self, city, city_landmarks):
        rng = np.random.default_rng(5)
        nodes = [n.node_id for n in city.nodes()]
        for __ in range(60):
            a, b = (int(x) for x in rng.choice(nodes, size=2))
            d_uni, p_uni = dijkstra(city, a, b)
            d_plain, p_plain = bidi_astar(city, a, b)
            d_alt, p_alt = bidi_astar(city, a, b, landmarks=city_landmarks)
            assert d_plain == d_uni
            assert d_alt == d_uni
            assert p_plain == p_uni
            assert p_alt == p_uni

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_dijkstra_on_random_networks(self, seed):
        net = random_network(seed)
        node_ids = [n.node_id for n in net.nodes()]
        rng = random.Random(seed + 100)
        disconnected = 0
        for __ in range(40):
            a, b = rng.choice(node_ids), rng.choice(node_ids)
            d_uni, p_uni = dijkstra(net, a, b)
            d_bidi, p_bidi = bidi_astar(net, a, b)
            if math.isinf(d_uni):
                disconnected += 1
                assert math.isinf(d_bidi)
                assert p_bidi == []
            else:
                assert d_bidi == d_uni
                assert p_bidi == p_uni
        # The generator must actually have produced unreachable pairs,
        # otherwise this test silently stopped covering them.
        assert disconnected > 0

    def test_source_equals_target(self, city):
        assert bidi_astar(city, 3, 3) == (0.0, [3])

    def test_unreachable_isolated_node(self):
        net = manhattan_line(4)
        net.add_node(RoadNode(99, Point(0, 9_999)))
        d, path = bidi_astar(net, 0, 99)
        assert math.isinf(d)
        assert path == []

    def test_bounded_distance_semantics(self, city, city_landmarks):
        """``max_distance`` bounds the *returned* distance, like the oracle
        tables: reachable-but-far pairs read as inf."""
        rng = np.random.default_rng(6)
        nodes = [n.node_id for n in city.nodes()]
        for __ in range(40):
            a, b = (int(x) for x in rng.choice(nodes, size=2))
            d_full, __p = dijkstra(city, a, b)
            d_bound, p_bound = bidi_astar(
                city, a, b, max_distance=1_200.0, landmarks=city_landmarks
            )
            if d_full <= 1_200.0:
                assert d_bound == d_full
            else:
                assert math.isinf(d_bound)
                assert p_bound == []


class TestCanonicalTieBreak:
    def test_identical_node_paths_on_tie_heavy_grid(self):
        """A jitter-free grid is packed with equal-length alternatives; the
        bidirectional search must still return the unidirectional search's
        canonical (min-id predecessor) path, node for node."""
        net = grid_city(
            GridCityConfig(nx=6, ny=6, jitter=0.0, drop_fraction=0.0),
            np.random.default_rng(0),
        )
        landmarks = LandmarkIndex.build(net, 4)
        nodes = sorted(n.node_id for n in net.nodes())
        for a in nodes[::5]:
            for b in nodes[::7]:
                d_uni, p_uni = dijkstra(net, a, b)
                d_astar, p_astar = astar(
                    net, a, b, heuristic=combined_heuristic(net, b, landmarks)
                )
                d_bidi, p_bidi = bidi_astar(net, a, b, landmarks=landmarks)
                assert p_astar == p_uni
                assert p_bidi == p_uni
                assert d_bidi == d_uni == d_astar

    def test_zero_length_edges(self):
        """Coincident nodes joined by zero-length segments create zero-cost
        cycles; the search must terminate and stay canonical."""
        p0, p1 = Point(0, 0), Point(100, 0)
        net = RoadNetwork()
        net.add_node(RoadNode(0, p0))
        net.add_node(RoadNode(1, p0))  # coincident with node 0
        net.add_node(RoadNode(2, p1))
        net.add_segment(RoadSegment.build(0, 0, 1, [p0, p0], speed_limit=10.0))
        net.add_segment(RoadSegment.build(1, 1, 0, [p0, p0], speed_limit=10.0))
        net.add_segment(RoadSegment.build(2, 1, 2, [p0, p1], speed_limit=10.0))
        net.add_segment(RoadSegment.build(3, 2, 1, [p1, p0], speed_limit=10.0))
        for a in (0, 1, 2):
            for b in (0, 1, 2):
                d_uni, p_uni = dijkstra(net, a, b)
                d_bidi, p_bidi = bidi_astar(net, a, b)
                assert d_bidi == d_uni
                assert p_bidi == p_uni

    def test_parallel_segments_keep_cheapest(self):
        """Parallel edges of different lengths: the path must thread the
        cheapest, exactly as the unidirectional search does."""
        p0, p1 = Point(0, 0), Point(100, 0)
        detour = Point(50, 80)
        net = RoadNetwork()
        net.add_node(RoadNode(0, p0))
        net.add_node(RoadNode(1, p1))
        net.add_segment(RoadSegment.build(0, 0, 1, [p0, detour, p1], speed_limit=10.0))
        net.add_segment(RoadSegment.build(1, 0, 1, [p0, p1], speed_limit=10.0))
        d_uni, p_uni = dijkstra(net, 0, 1)
        d_bidi, p_bidi = bidi_astar(net, 0, 1)
        assert d_bidi == d_uni == 100.0
        assert p_bidi == p_uni == [0, 1]


class TestStats:
    def test_settles_fewer_nodes_than_dijkstra(self, city, city_landmarks):
        """The point of the exercise: meet-in-the-middle with ALT potentials
        must search a smaller volume than plain Dijkstra on long pairs."""
        nodes = sorted(n.node_id for n in city.nodes())
        pairs = [(nodes[0], nodes[-1]), (nodes[2], nodes[-3]), (nodes[5], nodes[-1])]
        s_uni, s_bidi = SearchStats(), SearchStats()
        for a, b in pairs:
            dijkstra(city, a, b, stats=s_uni)
            bidi_astar(city, a, b, landmarks=city_landmarks, stats=s_bidi)
        assert s_bidi.settled < s_uni.settled
