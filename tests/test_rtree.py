"""Unit and property tests for the R-tree."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.spatial.rtree import RTree


def _random_points(n, seed=0, extent=1000.0):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, extent, size=(n, 2))]


def _brute_range(points, box):
    return {i for i, p in enumerate(points) if box.contains_point(p)}


def _brute_knn(points, q, k):
    order = sorted(range(len(points)), key=lambda i: points[i].distance_to(q))
    return order[:k]


class TestConstruction:
    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_empty_tree(self):
        t: RTree[int] = RTree()
        assert len(t) == 0
        assert t.search_bbox(BBox(0, 0, 1, 1)) == []
        assert t.nearest(Point(0, 0), 3) == []

    def test_len_after_inserts(self):
        t: RTree[int] = RTree(max_entries=4)
        for i, p in enumerate(_random_points(50)):
            t.insert_point(p, i)
        assert len(t) == 50
        t.check_invariants()

    def test_bulk_load_sizes(self):
        pts = _random_points(257, seed=3)
        t = RTree.bulk_load(
            ((BBox.from_point(p), i) for i, p in enumerate(pts)), max_entries=8
        )
        assert len(t) == 257
        t.check_invariants()

    def test_bulk_load_empty(self):
        t: RTree[int] = RTree.bulk_load([])
        assert len(t) == 0

    def test_height_grows_logarithmically(self):
        pts = _random_points(1000, seed=4)
        t = RTree.bulk_load(
            ((BBox.from_point(p), i) for i, p in enumerate(pts)), max_entries=8
        )
        assert t.height <= 5

    def test_items_roundtrip(self):
        pts = _random_points(30, seed=5)
        t: RTree[int] = RTree(max_entries=4)
        for i, p in enumerate(pts):
            t.insert_point(p, i)
        got = sorted(item for __, item in t.items())
        assert got == list(range(30))


class TestRangeQueries:
    @pytest.mark.parametrize("builder", ["insert", "bulk"])
    def test_matches_brute_force(self, builder):
        pts = _random_points(300, seed=7)
        if builder == "insert":
            t: RTree[int] = RTree(max_entries=8)
            for i, p in enumerate(pts):
                t.insert_point(p, i)
        else:
            t = RTree.bulk_load(
                ((BBox.from_point(p), i) for i, p in enumerate(pts)), max_entries=8
            )
        for box in (BBox(0, 0, 200, 200), BBox(400, 400, 600, 900), BBox(999, 999, 1000, 1000)):
            assert set(t.search_bbox(box)) == _brute_range(pts, box)

    def test_radius_query_exact_for_points(self):
        pts = _random_points(200, seed=8)
        t: RTree[int] = RTree(max_entries=8)
        for i, p in enumerate(pts):
            t.insert_point(p, i)
        center = Point(500, 500)
        got = set(t.search_radius(center, 150))
        expected = {i for i, p in enumerate(pts) if p.distance_to(center) <= 150}
        assert got == expected

    def test_radius_negative_raises(self):
        t: RTree[int] = RTree()
        with pytest.raises(ValueError):
            t.search_radius(Point(0, 0), -1)

    def test_radius_with_position_extractor(self):
        t: RTree[tuple] = RTree(max_entries=4)
        pts = _random_points(50, seed=9)
        for i, p in enumerate(pts):
            t.insert_point(p, (i, p))
        got = t.search_radius(Point(500, 500), 200, position=lambda item: item[1])
        for __, p in got:
            assert p.distance_to(Point(500, 500)) <= 200

    def test_radius_many_matches_single_queries(self):
        pts = _random_points(300, seed=21)
        t: RTree[int] = RTree(max_entries=8)
        for i, p in enumerate(pts):
            t.insert_point(p, i)
        queries = [
            (Point(200, 200), 150.0),
            (Point(500, 500), 90.0),
            (Point(210, 210), 150.0),  # overlaps the first circle
            (Point(900, 100), 0.0),
        ]
        many = t.search_radius_many(queries)
        assert len(many) == len(queries)
        for (center, radius), got in zip(queries, many):
            assert got == t.search_radius(center, radius)

    def test_radius_many_empty_queries(self):
        t: RTree[int] = RTree()
        assert t.search_radius_many([]) == []


class TestNearest:
    def test_knn_matches_brute_force(self):
        pts = _random_points(400, seed=11)
        t = RTree.bulk_load(
            ((BBox.from_point(p), i) for i, p in enumerate(pts)), max_entries=8
        )
        q = Point(321, 654)
        for k in (1, 5, 17):
            got = [item for __, item in t.nearest(q, k)]
            assert got == _brute_knn(pts, q, k)

    def test_knn_distances_sorted(self):
        pts = _random_points(100, seed=12)
        t = RTree.bulk_load(((BBox.from_point(p), i) for i, p in enumerate(pts)))
        dists = [d for d, __ in t.nearest(Point(0, 0), 20)]
        assert dists == sorted(dists)

    def test_knn_k_larger_than_size(self):
        pts = _random_points(5, seed=13)
        t: RTree[int] = RTree()
        for i, p in enumerate(pts):
            t.insert_point(p, i)
        assert len(t.nearest(Point(0, 0), 100)) == 5

    def test_knn_zero_k(self):
        t: RTree[int] = RTree()
        t.insert_point(Point(0, 0), 0)
        assert t.nearest(Point(0, 0), 0) == []


class TestInvariantProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
            min_size=1,
            max_size=120,
        ),
        st.sampled_from([4, 6, 16]),
    )
    def test_insert_preserves_invariants(self, raw, fanout):
        t: RTree[int] = RTree(max_entries=fanout)
        for i, (x, y) in enumerate(raw):
            t.insert_point(Point(x, y), i)
        t.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
            min_size=1,
            max_size=120,
        ),
        st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
        st.floats(10, 400),
    )
    def test_range_differential_vs_brute(self, raw, center, half):
        pts = [Point(x, y) for x, y in raw]
        t: RTree[int] = RTree(max_entries=6)
        for i, p in enumerate(pts):
            t.insert_point(p, i)
        box = BBox.around(Point(*center), half)
        assert set(t.search_bbox(box)) == _brute_range(pts, box)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
            min_size=1,
            max_size=80,
        ),
        st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
        st.integers(1, 10),
    )
    def test_knn_differential_vs_brute(self, raw, q, k):
        pts = [Point(x, y) for x, y in raw]
        t = RTree.bulk_load(
            ((BBox.from_point(p), i) for i, p in enumerate(pts)), max_entries=6
        )
        query = Point(*q)
        got = [d for d, __ in t.nearest(query, k)]
        expected = sorted(p.distance_to(query) for p in pts)[:k]
        assert len(got) == len(expected)
        for a, b in zip(got, expected):
            assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


class TestRemoval:
    def test_remove_missing_returns_false(self):
        t: RTree[int] = RTree()
        t.insert_point(Point(1, 1), 1)
        assert not t.remove_point(Point(2, 2), 2)
        assert not t.remove_point(Point(1, 1), 99)  # right box, wrong item
        assert len(t) == 1

    def test_remove_to_empty(self):
        t: RTree[int] = RTree()
        t.insert_point(Point(1, 1), 1)
        assert t.remove_point(Point(1, 1), 1)
        assert len(t) == 0
        assert t.search_bbox(BBox(0, 0, 10, 10)) == []
        t.insert_point(Point(3, 3), 3)  # reusable after emptying
        assert len(t) == 1

    def test_remove_half_preserves_queries(self):
        pts = _random_points(300, seed=21)
        t: RTree[int] = RTree(max_entries=6)
        for i, p in enumerate(pts):
            t.insert_point(p, i)
        for i in range(0, 300, 2):
            assert t.remove_point(pts[i], i)
        t.check_invariants()
        survivors = {i for i in range(300) if i % 2 == 1}
        box = BBox(100, 100, 800, 800)
        expected = {i for i in survivors if box.contains_point(pts[i])}
        assert set(t.search_bbox(box)) == expected

    def test_remove_then_knn_exact(self):
        pts = _random_points(120, seed=22)
        t: RTree[int] = RTree(max_entries=5)
        for i, p in enumerate(pts):
            t.insert_point(p, i)
        removed = set(range(0, 120, 3))
        for i in removed:
            t.remove_point(pts[i], i)
        q = Point(500, 500)
        got = [item for __, item in t.nearest(q, 7)]
        expected = sorted(
            (i for i in range(120) if i not in removed),
            key=lambda i: pts[i].distance_to(q),
        )[:7]
        assert got == expected

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
            min_size=4,
            max_size=60,
            unique=True,
        ),
        st.data(),
    )
    def test_random_insert_remove_invariants(self, raw, data):
        pts = [Point(x, y) for x, y in raw]
        t: RTree[int] = RTree(max_entries=4)
        for i, p in enumerate(pts):
            t.insert_point(p, i)
        n_remove = data.draw(st.integers(0, len(pts)))
        order = data.draw(st.permutations(range(len(pts))))
        removed = set(order[:n_remove])
        for i in order[:n_remove]:
            assert t.remove_point(pts[i], i)
        t.check_invariants()
        assert len(t) == len(pts) - n_remove
        got = sorted(item for __, item in t.items())
        assert got == sorted(set(range(len(pts))) - removed)
