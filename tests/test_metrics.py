"""Unit and property tests for the A_L accuracy metric."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    lcr_length,
    overlap_accuracy,
    overlap_length,
    precision_recall,
    route_accuracy,
)
from repro.roadnet.generators import manhattan_line
from repro.roadnet.route import Route


@pytest.fixture(scope="module")
def line():
    # Segments 0..9 alternate east/west; each 100 m long.
    return manhattan_line(n_nodes=6, spacing=100.0)


class TestLCR:
    def test_empty_routes(self, line):
        assert lcr_length(line, Route.empty(), Route.of([0])) == 0.0
        assert lcr_length(line, Route.of([0]), Route.empty()) == 0.0

    def test_identical(self, line):
        r = Route.of([0, 2, 4])
        assert lcr_length(line, r, r) == 300.0

    def test_disjoint(self, line):
        assert lcr_length(line, Route.of([0, 2]), Route.of([6, 8])) == 0.0

    def test_partial_overlap(self, line):
        assert lcr_length(line, Route.of([0, 2, 4]), Route.of([2, 4, 6])) == 200.0

    def test_order_matters(self, line):
        # Common segments out of order do not form a common subsequence.
        a = Route.of([0, 2])
        b = Route.of([2, 0])
        assert lcr_length(line, a, b) == 100.0  # only one can align


class TestRouteAccuracy:
    def test_perfect(self, line):
        r = Route.of([0, 2, 4])
        assert route_accuracy(line, r, r) == 1.0

    def test_empty_is_zero(self, line):
        assert route_accuracy(line, Route.empty(), Route.of([0])) == 0.0
        assert route_accuracy(line, Route.of([0]), Route.empty()) == 0.0

    def test_denominator_is_longer_route(self, line):
        truth = Route.of([0, 2])
        bloated = Route.of([0, 2, 4, 6])
        assert math.isclose(route_accuracy(line, truth, bloated), 200.0 / 400.0)

    def test_missing_coverage_penalised(self, line):
        truth = Route.of([0, 2, 4, 6])
        partial = Route.of([0, 2])
        assert math.isclose(route_accuracy(line, truth, partial), 0.5)

    def test_symmetric(self, line):
        a = Route.of([0, 2, 4])
        b = Route.of([2, 4, 6])
        assert math.isclose(
            route_accuracy(line, a, b), route_accuracy(line, b, a)
        )

    @given(
        st.lists(st.sampled_from([0, 2, 4, 6, 8]), min_size=1, max_size=5),
        st.lists(st.sampled_from([0, 2, 4, 6, 8]), min_size=1, max_size=5),
    )
    @settings(max_examples=40)
    def test_bounded_unit_interval(self, a, b):
        line = manhattan_line(n_nodes=6, spacing=100.0)
        acc = route_accuracy(line, Route.of(a), Route.of(b))
        assert 0.0 <= acc <= 1.0 + 1e-12

    @given(st.lists(st.sampled_from([0, 2, 4, 6, 8]), min_size=1, max_size=5))
    @settings(max_examples=20)
    def test_self_accuracy_is_one(self, ids):
        line = manhattan_line(n_nodes=6, spacing=100.0)
        r = Route.of(ids)
        assert math.isclose(route_accuracy(line, r, r), 1.0)


class TestOverlap:
    def test_overlap_upper_bounds_lcs(self, line):
        a = Route.of([0, 2, 4])
        b = Route.of([4, 2, 0])
        assert overlap_accuracy(line, a, b) >= route_accuracy(line, a, b)

    def test_overlap_length(self, line):
        assert overlap_length(line, Route.of([0, 2]), Route.of([2, 4])) == 100.0


class TestPrecisionRecall:
    def test_empty(self, line):
        assert precision_recall(line, Route.empty(), Route.of([0])) == (0.0, 0.0)

    def test_perfect(self, line):
        r = Route.of([0, 2])
        assert precision_recall(line, r, r) == (1.0, 1.0)

    def test_bloated_inferred(self, line):
        truth = Route.of([0, 2])
        bloated = Route.of([0, 2, 4, 6])
        p, r = precision_recall(line, truth, bloated)
        assert math.isclose(p, 0.5)
        assert math.isclose(r, 1.0)

    def test_partial_inferred(self, line):
        truth = Route.of([0, 2, 4, 6])
        partial = Route.of([0, 2])
        p, r = precision_recall(line, truth, partial)
        assert math.isclose(p, 1.0)
        assert math.isclose(r, 0.5)
