"""Round-trip tests for road-network and landmark-index serialisation."""

import numpy as np
import pytest

from repro.roadnet.generators import GridCityConfig, grid_city
from repro.roadnet.io import (
    landmarks_from_dict,
    landmarks_to_dict,
    load_landmarks,
    load_network,
    network_from_dict,
    network_to_dict,
    save_landmarks,
    save_network,
)
from repro.roadnet.shortest_path import LandmarkIndex, shortest_route_between_nodes


@pytest.fixture(scope="module")
def city():
    return grid_city(GridCityConfig(nx=5, ny=5), np.random.default_rng(31))


class TestRoundTrip:
    def test_dict_round_trip(self, city):
        restored = network_from_dict(network_to_dict(city))
        assert restored.num_nodes == city.num_nodes
        assert restored.num_segments == city.num_segments
        for seg in city.segments():
            other = restored.segment(seg.segment_id)
            assert other.start == seg.start
            assert other.end == seg.end
            assert other.polyline == seg.polyline
            assert other.speed_limit == seg.speed_limit

    def test_file_round_trip(self, city, tmp_path):
        path = tmp_path / "net.json"
        save_network(city, path)
        restored = load_network(path)
        assert restored.num_segments == city.num_segments
        assert restored.max_speed == city.max_speed

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown network format"):
            network_from_dict({"format": "bogus", "nodes": [], "segments": []})

    def test_adjacency_preserved(self, city):
        restored = network_from_dict(network_to_dict(city))
        for seg in city.segments():
            assert sorted(restored.successors(seg.segment_id)) == sorted(
                city.successors(seg.segment_id)
            )


class TestLandmarkRoundTrip:
    def test_dict_round_trip_exact(self, city):
        index = LandmarkIndex.build(city, 4)
        restored = landmarks_from_dict(landmarks_to_dict(index))
        assert restored.landmarks == index.landmarks
        assert restored.forward_tables == index.forward_tables
        assert restored.backward_tables == index.backward_tables

    def test_file_round_trip_routes_identical(self, city, tmp_path):
        index = LandmarkIndex.build(city, 4)
        path = tmp_path / "landmarks.json"
        save_landmarks(index, path)
        restored = load_landmarks(path)
        # The reloaded tables must drive A* to the exact same routes.
        node_ids = sorted(n.node_id for n in city.nodes())
        pairs = [(node_ids[0], node_ids[-1]), (node_ids[3], node_ids[-5])]
        for s, t in pairs:
            d_a, r_a = shortest_route_between_nodes(city, s, t, landmarks=index)
            d_b, r_b = shortest_route_between_nodes(city, s, t, landmarks=restored)
            assert d_a == d_b
            assert r_a.segment_ids == r_b.segment_ids

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown landmarks format"):
            landmarks_from_dict({"format": "bogus"})
