"""Round-trip tests for road-network serialisation."""

import numpy as np
import pytest

from repro.roadnet.generators import GridCityConfig, grid_city
from repro.roadnet.io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


@pytest.fixture(scope="module")
def city():
    return grid_city(GridCityConfig(nx=5, ny=5), np.random.default_rng(31))


class TestRoundTrip:
    def test_dict_round_trip(self, city):
        restored = network_from_dict(network_to_dict(city))
        assert restored.num_nodes == city.num_nodes
        assert restored.num_segments == city.num_segments
        for seg in city.segments():
            other = restored.segment(seg.segment_id)
            assert other.start == seg.start
            assert other.end == seg.end
            assert other.polyline == seg.polyline
            assert other.speed_limit == seg.speed_limit

    def test_file_round_trip(self, city, tmp_path):
        path = tmp_path / "net.json"
        save_network(city, path)
        restored = load_network(path)
        assert restored.num_segments == city.num_segments
        assert restored.max_speed == city.max_speed

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown network format"):
            network_from_dict({"format": "bogus", "nodes": [], "segments": []})

    def test_adjacency_preserved(self, city):
        restored = network_from_dict(network_to_dict(city))
        for seg in city.segments():
            assert sorted(restored.successors(seg.segment_id)) == sorted(
                city.successors(seg.segment_id)
            )
