"""Unit tests for the nearest-neighbor inference (Algorithm 2)."""

import pytest

from repro.core.nni import NearestNeighborInference, NNIConfig
from repro.core.reference import Reference, ReferenceSearch, ReferenceSearchConfig
from repro.geo.point import Point
from repro.roadnet.generators import manhattan_line


def make_ref(points, ref_id=0):
    return Reference(
        ref_id=ref_id, source_ids=(ref_id,), points=tuple(points), spliced=False
    )


@pytest.fixture()
def line():
    return manhattan_line(n_nodes=10, spacing=200.0)


def corridor_reference(ref_id=0, offset_y=8.0, spacing=150.0, n=12):
    return make_ref(
        [Point(i * spacing, offset_y) for i in range(n)], ref_id=ref_id
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NNIConfig(k=0)
        with pytest.raises(ValueError):
            NNIConfig(alpha=-1.0)
        with pytest.raises(ValueError):
            NNIConfig(beta=0.9)


class TestPoolDedup:
    def test_near_duplicates_collapse(self, line):
        nni = NearestNeighborInference(line, NNIConfig(candidate_radius=50.0))
        cluster = [Point(10.0 + i, 10.0 + i) for i in range(5)]
        assert len(nni._dedupe_pool(cluster)) == 1

    def test_distant_points_kept(self, line):
        nni = NearestNeighborInference(line, NNIConfig(candidate_radius=50.0))
        spread = [Point(i * 500.0, 0.0) for i in range(5)]
        assert len(nni._dedupe_pool(spread)) == 5


class TestInference:
    def test_no_references_empty(self, line):
        nni = NearestNeighborInference(line)
        routes, stats = nni.infer(Point(0, 0), Point(1000, 0), [])
        assert routes == []
        assert stats.n_reference_points == 0

    def test_recovers_corridor(self, line):
        nni = NearestNeighborInference(line)
        refs = [corridor_reference(i) for i in range(2)]
        routes, stats = nni.infer(Point(0, 0), Point(1000, 0), refs)
        assert routes
        assert stats.n_paths > 0
        best = routes[0]
        assert best.is_connected(line)
        assert best.start_point(line).x <= 200.0
        assert best.end_point(line).x >= 800.0

    def test_routes_within_detour_bound(self, line):
        nni = NearestNeighborInference(line, NNIConfig(max_detour_ratio=1.5))
        refs = [corridor_reference(i) for i in range(2)]
        routes, __ = nni.infer(Point(0, 0), Point(1000, 0), refs)
        for r in routes:
            assert r.length(line) <= 1.5 * 1400.0  # generous: endpoint overhang

    def test_sharing_reduces_knn_searches(self, line):
        refs = [corridor_reference(i, offset_y=float(6 * i)) for i in range(4)]
        shared = NearestNeighborInference(
            line, NNIConfig(share_substructures=True, max_paths=16)
        )
        unshared = NearestNeighborInference(
            line, NNIConfig(share_substructures=False, max_paths=16)
        )
        __, s1 = shared.infer(Point(0, 0), Point(1600, 0), refs)
        __, s2 = unshared.infer(Point(0, 0), Point(1600, 0), refs)
        assert s1.n_knn_searches <= s2.n_knn_searches

    def test_expansion_budget_respected(self, line):
        refs = [corridor_reference(i, offset_y=float(10 * i), spacing=60.0, n=30) for i in range(5)]
        nni = NearestNeighborInference(
            line, NNIConfig(max_expansions=100, max_paths=1000)
        )
        routes, stats = nni.infer(Point(0, 0), Point(1600, 0), refs)
        assert stats.n_knn_searches <= 110  # budget plus slack for re-searches

    def test_max_paths_cap(self, line):
        refs = [corridor_reference(i, offset_y=float(8 * i)) for i in range(4)]
        nni = NearestNeighborInference(line, NNIConfig(max_paths=5))
        __, stats = nni.infer(Point(0, 0), Point(1000, 0), refs)
        assert stats.n_paths <= 5

    def test_alpha_zero_still_reaches_destination(self, line):
        # With no backward tolerance, strictly-progressing walks remain.
        nni = NearestNeighborInference(line, NNIConfig(alpha=0.0))
        refs = [corridor_reference(0)]
        routes, __ = nni.infer(Point(0, 0), Point(1000, 0), refs)
        assert routes


class TestOnCity:
    def test_city_inference(self, corridor_world):
        world = corridor_world
        search = ReferenceSearch(
            world.archive, world.network, ReferenceSearchConfig(phi=500.0)
        )
        q = world.query
        mid = len(q) // 2
        qi, qi1 = q[0], q[mid]
        refs = search.search(qi, qi1)
        nni = NearestNeighborInference(world.network)
        routes, stats = nni.infer(qi.point, qi1.point, refs)
        assert stats.n_reference_points > 0
        # NNI may legitimately return nothing when all walks detour, but on
        # this dense corridor it should find at least one plausible route.
        assert routes
        truth_ids = set(world.truth.segment_ids)
        overlap = max(
            len(set(r.segment_ids) & truth_ids) / max(len(r), 1) for r in routes
        )
        assert overlap > 0.4
