"""Unit tests for the OSM XML importer, against a handcrafted extract.

The sample models a T-junction town: an east-west residential street, a
one-way primary road crossing it, and an unrelated footpath that must be
filtered out.
"""

import math

import pytest

from repro.roadnet.osm import (
    DEFAULT_SPEEDS_KMH,
    OSMImportConfig,
    _parse_maxspeed,
    parse_osm_network,
)

# A 0.01-degree extent around (116.40, 39.90): roughly 850 x 1100 m.
SAMPLE_OSM = """<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="handcrafted">
  <node id="1" lat="39.9000" lon="116.4000"/>
  <node id="2" lat="39.9000" lon="116.4050"/>
  <node id="3" lat="39.9000" lon="116.4100"/>
  <node id="4" lat="39.9050" lon="116.4050"/>
  <node id="5" lat="39.8950" lon="116.4050"/>
  <node id="6" lat="39.9025" lon="116.4075"/>
  <way id="100">
    <nd ref="1"/><nd ref="2"/><nd ref="3"/>
    <tag k="highway" v="residential"/>
    <tag k="name" v="Main Street"/>
  </way>
  <way id="101">
    <nd ref="4"/><nd ref="2"/><nd ref="5"/>
    <tag k="highway" v="primary"/>
    <tag k="oneway" v="yes"/>
    <tag k="maxspeed" v="70"/>
  </way>
  <way id="102">
    <nd ref="3"/><nd ref="6"/>
    <tag k="highway" v="footway"/>
  </way>
</osm>
"""


class TestMaxspeedParsing:
    def test_plain_number(self):
        assert _parse_maxspeed("50") == 50.0

    def test_kmh_suffix(self):
        assert _parse_maxspeed("50 km/h") == 50.0

    def test_mph(self):
        assert math.isclose(_parse_maxspeed("30 mph"), 48.28032)

    def test_garbage(self):
        assert _parse_maxspeed("walk") is None
        assert _parse_maxspeed(None) is None
        assert _parse_maxspeed("") is None


class TestImport:
    @pytest.fixture(scope="class")
    def network(self):
        return parse_osm_network(SAMPLE_OSM)

    def test_footway_excluded(self, network):
        # Node 6 belongs only to the footway: never becomes a vertex.
        # Vertices: 1, 2, 3 (Main St, split at 2), 4, 5 (primary).
        assert network.num_nodes == 5

    def test_way_split_at_junction(self, network):
        # Main Street splits into 1-2 and 2-3, bidirectional -> 4 segments;
        # the one-way primary splits into 4-2 and 2-5 -> 2 segments.
        assert network.num_segments == 6

    def test_oneway_respected(self, network):
        oneway_count = 0
        for seg in network.segments():
            if network.reverse_of(seg.segment_id) is None:
                oneway_count += 1
        assert oneway_count == 2

    def test_maxspeed_applied(self, network):
        speeds = {round(s.speed_limit * 3.6) for s in network.segments()}
        assert 70 in speeds  # the primary's maxspeed tag
        assert round(DEFAULT_SPEEDS_KMH["residential"]) in speeds

    def test_geometry_scale_sane(self, network):
        # 0.005 degrees of longitude at 39.9N is ~427 m.
        lengths = sorted(s.length for s in network.segments())
        assert 380 < lengths[0] < 480

    def test_network_routable(self, network):
        from repro.roadnet.shortest_path import dijkstra

        # From the west end of Main Street to the primary's south end.
        west = network.nearest_node(network.bbox().center.translate(-400, 0))
        d, path = dijkstra(network, west.node_id, 4)
        assert path or math.isinf(d)  # routable or explicitly unreachable

    def test_highway_class_filter(self):
        net = parse_osm_network(
            SAMPLE_OSM, OSMImportConfig(highway_classes={"primary"})
        )
        # With Main Street filtered out, node 2 stops being a junction, so
        # the one-way primary remains one unsplit segment whose polyline
        # keeps node 2 as an interior shape point.
        assert net.num_segments == 1
        only = next(iter(net.segments()))
        assert len(only.polyline) == 3

    def test_no_usable_ways_raises(self):
        with pytest.raises(ValueError, match="no usable highway"):
            parse_osm_network(
                SAMPLE_OSM, OSMImportConfig(highway_classes={"motorway"})
            )

    def test_explicit_origin(self):
        net = parse_osm_network(
            SAMPLE_OSM, OSMImportConfig(origin=(116.4000, 39.9000))
        )
        # Node 1 sits at the origin.
        closest = net.nearest_node(net.node(0).point)
        assert net.node(0).point.norm() < 1.0 or closest is not None

    def test_file_loading(self, tmp_path):
        from repro.roadnet.osm import load_osm_network

        path = tmp_path / "town.osm"
        path.write_text(SAMPLE_OSM, encoding="utf-8")
        net = load_osm_network(path)
        assert net.num_segments == 6


class TestEndToEndOnOSM:
    def test_hris_runs_on_imported_map(self):
        """The whole pipeline must run on an OSM-imported network."""
        import numpy as np

        from repro.core.archive import TrajectoryArchive
        from repro.core.system import HRIS, HRISConfig
        from repro.roadnet.shortest_path import shortest_route_between_nodes
        from repro.trajectory.model import GPSPoint, Trajectory
        from repro.trajectory.simulate import DriveConfig, drive_route

        network = parse_osm_network(SAMPLE_OSM)
        rng = np.random.default_rng(1)
        # Drive along Main Street a few times to build history.
        archive = TrajectoryArchive()
        d, route = shortest_route_between_nodes(network, 0, 2)
        if math.isinf(d):
            pytest.skip("sample map not routable end to end")
        for k in range(4):
            drive = drive_route(
                network,
                route,
                k,
                config=DriveConfig(sample_interval_s=20.0, gps_sigma_m=8.0),
                rng=rng,
            )
            archive.add(drive.trajectory)

        hris = HRIS(network, archive, HRISConfig(candidate_radius=80.0))
        start = network.node(0).point
        end = network.node(2).point
        query = Trajectory.build(
            99, [GPSPoint(start, 0.0), GPSPoint(end, 240.0)]
        )
        routes = hris.infer_routes(query, 2)
        assert routes
        assert routes[0].route.is_connected(network)
