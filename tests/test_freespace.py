"""Unit tests for the network-free route inference extension."""

import math

import pytest

from repro.core.freespace import (
    FreeSpaceConfig,
    FreeSpaceInference,
    discrete_frechet,
)
from repro.core.reference import Reference
from repro.geo.point import Point


def make_ref(points, ref_id=0):
    return Reference(
        ref_id=ref_id, source_ids=(ref_id,), points=tuple(points), spliced=False
    )


def corridor(offset_y, n=11, spacing=100.0):
    return [Point(i * spacing, offset_y) for i in range(n)]


class TestFrechet:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            discrete_frechet([], [Point(0, 0)])

    def test_identical_is_zero(self):
        poly = corridor(0.0)
        assert discrete_frechet(poly, poly) == 0.0

    def test_parallel_lines(self):
        assert discrete_frechet(corridor(0.0), corridor(50.0)) == 50.0

    def test_symmetry(self):
        a = corridor(0.0)
        b = [Point(0, 0), Point(500, 300), Point(1000, 0)]
        assert math.isclose(discrete_frechet(a, b), discrete_frechet(b, a))

    def test_order_sensitive(self):
        # Same point set, opposite traversal order: Fréchet is large,
        # unlike Hausdorff which would be 0.
        a = corridor(0.0, n=5)
        b = list(reversed(a))
        assert discrete_frechet(a, b) > 100.0

    def test_lower_bounded_by_endpoint_gap(self):
        a = corridor(0.0, n=5)
        b = [p.translate(0.0, 200.0) for p in a]
        assert discrete_frechet(a, b) >= 200.0


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FreeSpaceConfig(resample_spacing_m=0)
        with pytest.raises(ValueError):
            FreeSpaceConfig(cluster_distance_m=-1)
        with pytest.raises(ValueError):
            FreeSpaceConfig(max_routes=0)


class TestLocalInference:
    def test_no_references(self):
        fsi = FreeSpaceInference()
        assert fsi.infer_local(Point(0, 0), Point(1000, 0), []) == []

    def test_single_corridor_cluster(self):
        fsi = FreeSpaceInference()
        refs = [make_ref(corridor(float(10 * i)), ref_id=i) for i in range(4)]
        routes = fsi.infer_local(Point(0, 0), Point(1000, 0), refs)
        assert len(routes) == 1
        assert routes[0].support == frozenset({0, 1, 2, 3})
        assert routes[0].popularity == 4.0

    def test_two_corridors_split(self):
        fsi = FreeSpaceInference(FreeSpaceConfig(cluster_distance_m=200.0))
        north = [make_ref(corridor(0.0), ref_id=i) for i in range(3)]
        # A genuinely different corridor: a 600 m southern detour.
        south_poly = [
            Point(i * 100.0, -600.0) if 2 <= i <= 8 else Point(i * 100.0, 0.0)
            for i in range(11)
        ]
        south = [make_ref(south_poly, ref_id=10 + i) for i in range(2)]
        routes = fsi.infer_local(Point(0, 0), Point(1000, 0), north + south)
        assert len(routes) == 2
        # Popularity ordering: the 3-strong corridor first.
        assert routes[0].popularity == 3.0
        assert routes[1].popularity == 2.0

    def test_polylines_anchored_to_query(self):
        fsi = FreeSpaceInference()
        refs = [make_ref(corridor(20.0), ref_id=0)]
        routes = fsi.infer_local(Point(0, 0), Point(1000, 0), refs)
        assert routes[0].polyline[0].distance_to(Point(0, 0)) < 1.0
        assert routes[0].polyline[-1].distance_to(Point(1000, 0)) < 1.0

    def test_max_routes_cap(self):
        fsi = FreeSpaceInference(
            FreeSpaceConfig(cluster_distance_m=10.0, max_routes=2)
        )
        refs = [make_ref(corridor(float(200 * i)), ref_id=i) for i in range(5)]
        routes = fsi.infer_local(Point(0, 0), Point(1000, 0), refs)
        assert len(routes) == 2


class TestGlobalInference:
    def test_end_to_end_on_scenario(self):
        import numpy as np

        from repro import build_scenario, HRISConfig
        from repro.core.reference import ReferenceSearch
        from repro.datasets import ScenarioConfig
        from repro.roadnet import GridCityConfig
        from repro.trajectory import downsample, hausdorff_distance

        sc = build_scenario(
            ScenarioConfig(
                grid=GridCityConfig(nx=10, ny=10),
                n_od_pairs=4,
                min_od_distance=3000.0,
                n_archive_trips=80,
                n_background_trips=5,
                n_queries=2,
                seed=17,
            )
        )
        search = ReferenceSearch(
            sc.archive, sc.network, HRISConfig().reference_config()
        )
        fsi = FreeSpaceInference()
        case = sc.queries[0]
        q = downsample(case.query, 240.0)
        routes = fsi.infer(q, search, k=3)
        assert routes
        scores = [g.log_score for g in routes]
        assert scores == sorted(scores, reverse=True)
        truth_poly = case.truth.points(sc.network)
        best = min(
            hausdorff_distance(list(g.polyline), truth_poly) for g in routes
        )
        # Within roughly one block of the true geometry, with no network.
        assert best < 800.0

    def test_short_query_raises(self):
        fsi = FreeSpaceInference()
        from repro.trajectory.model import GPSPoint, Trajectory

        single = Trajectory.build(1, [GPSPoint(Point(0, 0), 0.0)])
        with pytest.raises(ValueError):
            fsi.infer(single, None, k=1)

    def test_invalid_k_raises(self):
        fsi = FreeSpaceInference()
        from repro.trajectory.model import GPSPoint, Trajectory

        t = Trajectory.build(
            1, [GPSPoint(Point(0, 0), 0.0), GPSPoint(Point(1, 0), 10.0)]
        )
        with pytest.raises(ValueError):
            fsi.infer(t, None, k=0)
