"""Unit tests for stay-point detection and trip partitioning."""

import pytest

from repro.geo.point import Point
from repro.trajectory.model import GPSPoint, Trajectory
from repro.trajectory.staypoint import detect_stay_points, partition_trips


def make_traj(segments):
    """Build a trajectory from (x, y, t) triples."""
    return Trajectory.build(1, [GPSPoint(Point(x, y), t) for x, y, t in segments])


def moving_then_stay_then_moving():
    pts = []
    t = 0.0
    # Drive east at 10 m/s for 5 samples.
    for i in range(5):
        pts.append((i * 300.0, 0.0, t))
        t += 30.0
    # Park for 30 minutes (samples every 5 min within 20 m).
    for i in range(7):
        pts.append((1500.0 + (i % 2) * 10.0, 5.0, t))
        t += 300.0
    # Drive on.
    for i in range(5):
        pts.append((1600.0 + i * 300.0, 0.0, t))
        t += 30.0
    return make_traj(pts)


class TestDetectStayPoints:
    def test_invalid_thresholds(self):
        t = make_traj([(0, 0, 0.0), (1, 0, 1.0)])
        with pytest.raises(ValueError):
            detect_stay_points(t, distance_threshold=0)
        with pytest.raises(ValueError):
            detect_stay_points(t, time_threshold=0)

    def test_no_stays_while_driving(self):
        pts = [(i * 400.0, 0.0, i * 30.0) for i in range(20)]
        assert detect_stay_points(make_traj(pts)) == []

    def test_detects_parking(self):
        stays = detect_stay_points(moving_then_stay_then_moving())
        assert len(stays) == 1
        s = stays[0]
        assert s.duration >= 20 * 60.0
        assert 1490 <= s.center.x <= 1520

    def test_stay_indices_cover_cluster(self):
        stays = detect_stay_points(moving_then_stay_then_moving())
        s = stays[0]
        # The 7 parked samples plus the arrival and departure samples that
        # fall within the 200 m anchor radius.
        assert s.end_index - s.start_index + 1 == 8

    def test_stay_at_end_of_log(self):
        pts = [(i * 400.0, 0.0, i * 30.0) for i in range(5)]
        t0 = pts[-1][2]
        pts += [(2000.0, 0.0, t0 + 300.0 * (i + 1)) for i in range(8)]
        stays = detect_stay_points(make_traj(pts))
        assert len(stays) == 1

    def test_brief_stop_not_a_stay(self):
        pts = [(i * 400.0, 0.0, i * 30.0) for i in range(5)]
        # Stop for only 5 minutes.
        t0 = pts[-1][2]
        pts += [(2000.0, 0.0, t0 + 60.0 * (i + 1)) for i in range(5)]
        t1 = pts[-1][2]
        pts += [(2000.0 + (i + 1) * 400.0, 0.0, t1 + 30.0 * (i + 1)) for i in range(5)]
        assert detect_stay_points(make_traj(pts)) == []


class TestPartitionTrips:
    def test_splits_at_stay(self):
        trips = partition_trips(moving_then_stay_then_moving())
        assert len(trips) == 2
        assert all(len(t) >= 2 for t in trips)
        # First trip is the eastbound drive, second the continuation.
        assert trips[0][0].x == 0.0
        assert trips[1][0].x >= 1500.0

    def test_splits_at_recording_gap(self):
        pts = [(i * 400.0, 0.0, i * 30.0) for i in range(5)]
        t0 = pts[-1][2]
        # Recording resumes two hours later somewhere else.
        pts += [(9000.0 + i * 400.0, 0.0, t0 + 7200.0 + i * 30.0) for i in range(5)]
        trips = partition_trips(make_traj(pts), max_gap_s=30 * 60.0)
        assert len(trips) == 2

    def test_min_points_filter(self):
        pts = [(0.0, 0.0, 0.0), (400.0, 0.0, 30.0)]
        trips = partition_trips(make_traj(pts), min_points=3)
        assert trips == []

    def test_continuous_drive_is_one_trip(self):
        pts = [(i * 400.0, 0.0, i * 30.0) for i in range(30)]
        trips = partition_trips(make_traj(pts))
        assert len(trips) == 1
        assert len(trips[0]) == 30

    def test_trip_timestamps_monotone(self):
        for trip in partition_trips(moving_then_stay_then_moving()):
            times = [p.t for p in trip.points]
            assert times == sorted(times)
