"""Scale soak test: the pipeline on a larger world.

Not a micro-benchmark — a bounded end-to-end run on a 900-node city with a
400-trip archive, asserting the system stays correct and tractable as the
world grows (the paper's Beijing setting is ~100x this; pure Python scales
linearly in the same places).
"""

import time

import pytest

from repro.core.system import HRIS, HRISConfig
from repro.datasets.synthetic import ScenarioConfig, build_scenario
from repro.eval.metrics import route_accuracy
from repro.roadnet.generators import GridCityConfig
from repro.trajectory.resample import downsample


@pytest.fixture(scope="module")
def big_world():
    t0 = time.perf_counter()
    scenario = build_scenario(
        ScenarioConfig(
            grid=GridCityConfig(nx=30, ny=30),
            n_od_pairs=12,
            min_od_distance=8_000.0,
            n_archive_trips=400,
            n_background_trips=40,
            n_queries=4,
            seed=77,
        )
    )
    build_time = time.perf_counter() - t0
    return scenario, build_time


class TestScale:
    def test_generation_tractable(self, big_world):
        scenario, build_time = big_world
        assert scenario.network.num_nodes == 900
        assert scenario.archive.num_points > 3_000
        assert build_time < 30.0

    def test_inference_tractable_and_accurate(self, big_world):
        scenario, __ = big_world
        hris = HRIS(scenario.network, scenario.archive, HRISConfig())
        accs = []
        t0 = time.perf_counter()
        for case in scenario.queries:
            query = downsample(case.query, 300.0)
            routes = hris.infer_routes(query, 3)
            accs.append(
                route_accuracy(scenario.network, case.truth, routes[0].route)
            )
        elapsed = time.perf_counter() - t0
        assert elapsed < 60.0, f"4 inferences took {elapsed:.1f}s"
        assert sum(accs) / len(accs) > 0.6

    def test_archive_index_scales(self, big_world):
        scenario, __ = big_world
        from repro.geo.point import Point

        t0 = time.perf_counter()
        center = scenario.network.bbox().center
        for __i in range(200):
            scenario.archive.points_near(center, 500.0)
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0, f"200 range queries took {elapsed:.1f}s"
