"""Replication and failover: replica sets, health routing, scripted chaos.

Every test here is deterministic by construction: faults are injected on
scripted request ordinals (:mod:`repro.core.chaos`), replicas are killed
at chosen points in the query stream, retry jitter comes from seeded
RNGs, and the only clocks involved are bounded request timeouts.  The
invariant under attack is the acceptance criterion of the replication
layer: with R=2, killing any single replica mid-run must leave every
query result bit-identical to :class:`InMemoryArchive` with zero errors
surfaced to the caller.
"""

import math
import random
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.archive import InMemoryArchive
from repro.core.chaos import (
    BLACKHOLE,
    DELAY,
    DROP,
    TRUNCATE,
    ChaosProxy,
    ChaosSchedule,
    CrashAfter,
    Fault,
)
from repro.core.remote import (
    _WIRE_V,
    ArchiveShardServer,
    RemoteShardedArchive,
    ShardExhaustedError,
    ShardProtocolError,
    ShardUnavailableError,
    _ShardConnection,
    _recv_frame,
    _send_frame,
)
from repro.geo.bbox import BBox
from repro.geo.point import Point
from tests.test_remote_archive import NUM_SHARDS, TILE, random_trips

R = 2  # replica count under test


@pytest.fixture
def replicated_cluster():
    """NUM_SHARDS shards × R replicas, every server on a loopback port."""
    servers = []
    for index in range(NUM_SHARDS):
        for rid in range(R):
            servers.append(
                ArchiveShardServer(index, NUM_SHARDS, TILE, replica_id=rid).start()
            )
    addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
    yield servers, addrs
    for server in servers:
        server.stop()


def replicated_pair(addrs, rng, n_trips=12, **kwargs):
    """An InMemoryArchive and a replicated remote fed identical trips."""
    kwargs.setdefault("replication", R)
    kwargs.setdefault("retries", 0)
    kwargs.setdefault("backoff_s", 0.0)
    kwargs.setdefault("breaker_cooldown_s", 60.0)
    kwargs.setdefault("jitter_seed", 0)
    mem = InMemoryArchive()
    remote = RemoteShardedArchive(addrs, **kwargs)
    for trip in random_trips(rng, n_trips):
        assert mem.add(trip) == remote.add(trip)
    return mem, remote


def assert_identical_queries(mem, remote, rng, n_queries=10):
    for __ in range(n_queries):
        q = Point(*rng.uniform(-500.0, 4_500.0, size=2))
        radius = float(rng.uniform(100.0, 2_000.0))
        assert mem.points_near(q, radius) == remote.points_near(q, radius)
        x0, y0 = rng.uniform(-500.0, 4_000.0, size=2)
        box = BBox(x0, y0, x0 + 1_500.0, y0 + 1_500.0)
        assert mem.points_in_bbox(box) == remote.points_in_bbox(box)
        qi1 = Point(*rng.uniform(0.0, 4_000.0, size=2))
        assert mem.trajectories_near_pair(q, qi1, radius) == (
            remote.trajectories_near_pair(q, qi1, radius)
        )


class TestReplicaSets:
    def test_replicated_fleet_equivalent_to_memory(self, replicated_cluster):
        __, addrs = replicated_cluster
        rng = np.random.default_rng(0)
        mem, remote = replicated_pair(addrs, rng)
        assert remote.replication == [R] * NUM_SHARDS
        stats = remote.backend_stats()
        assert stats["backend"] == "remote"
        assert stats["total_replicas"] == NUM_SHARDS * R
        assert stats["healthy_replicas"] == NUM_SHARDS * R
        assert_identical_queries(mem, remote, rng)
        # Mutations reached every replica: counts agree within each set.
        for health in remote.replica_health():
            assert all(r["state"] == "closed" for r in health["replicas"])
        remote.close()

    def test_replication_count_enforced(self, replicated_cluster):
        __, addrs = replicated_cluster
        with pytest.raises(ShardProtocolError, match="--replication 3"):
            RemoteShardedArchive(addrs, replication=3)

    def test_diverged_replicas_rejected_at_handshake(self):
        a = ArchiveShardServer(0, 1, TILE).start()
        b = ArchiveShardServer(0, 1, TILE).start()
        # Seed one replica only: their point counts disagree up front.
        conn = _ShardConnection(a.address, 5.0, 0, 0.0, [])
        conn.request(
            {"op": "insert", "v": _WIRE_V, "points": [[0, 0, 100.0, 100.0]]}
        )
        conn.close()
        addrs = [f"127.0.0.1:{s.address[1]}" for s in (a, b)]
        try:
            with pytest.raises(ShardProtocolError, match="diverge"):
                RemoteShardedArchive(addrs)
        finally:
            a.stop()
            b.stop()


class TestFailover:
    @pytest.mark.parametrize("victim", range(NUM_SHARDS * R))
    def test_killing_any_single_replica_is_invisible(
        self, replicated_cluster, victim
    ):
        """Acceptance criterion: one replica death mid-run, zero surfaced
        errors, results bit-identical to the in-memory seed backend."""
        servers, addrs = replicated_cluster
        rng = np.random.default_rng(1_000 + victim)
        mem, remote = replicated_pair(addrs, rng)
        assert_identical_queries(mem, remote, rng, n_queries=5)
        servers[victim].stop()  # mid-run process death
        assert_identical_queries(mem, remote, rng, n_queries=10)
        remote.close()

    def test_dead_replica_is_demoted_and_reads_continue(self, replicated_cluster):
        servers, addrs = replicated_cluster
        rng = np.random.default_rng(5)
        mem, remote = replicated_pair(addrs, rng)
        servers[0].stop()  # replica 0 of shard 0
        assert_identical_queries(mem, remote, rng, n_queries=8)
        demoted = [
            r
            for health in remote.replica_health()
            for r in health["replicas"]
            if r["state"] != "closed"
        ]
        assert len(demoted) == 1  # exactly the victim
        assert remote.failover_count >= 1
        assert remote.backend_stats()["healthy_replicas"] == NUM_SHARDS * R - 1
        remote.close()

    def test_crash_mid_request_fails_over(self, replicated_cluster):
        """Kill the replica *between* receiving the query frame and the
        reply (server-side hook) — the client must treat the half-done
        request as a replica failure and re-ask a healthy peer."""
        servers, addrs = replicated_cluster
        rng = np.random.default_rng(9)
        mem, remote = replicated_pair(addrs, rng, timeout_s=2.0)
        # Arm replica 0 of every shard: reads route there first (fresh
        # round-robin), so the first fan-out query hits every trap.
        hooks = []
        for index in range(NUM_SHARDS):
            server = servers[index * R]
            hook = CrashAfter(server, op="search_circles")
            server.fault_hook = hook
            hooks.append(hook)
        q = Point(2_000.0, 2_000.0)
        assert mem.points_near(q, 6_000.0) == remote.points_near(q, 6_000.0)
        assert any(h.crashed for h in hooks)
        assert remote.failover_count >= 1
        assert_identical_queries(mem, remote, rng, n_queries=6)
        remote.close()

    def test_partial_mutation_failure_degrades_capacity_not_results(
        self, replicated_cluster
    ):
        servers, addrs = replicated_cluster
        rng = np.random.default_rng(13)
        mem, remote = replicated_pair(addrs, rng)
        servers[1].stop()  # replica 1 of shard 0 dies before the write
        extra = random_trips(rng, 2)
        for trip in extra:
            assert mem.add(trip) == remote.add(trip)  # no error surfaced
        victim_id = mem.trajectory_ids()[0]
        assert mem.remove(victim_id) and remote.remove(victim_id)
        # The dead replica missed writes → demoted out of rotation (the
        # half-open probe would repair it by log replay if it came back;
        # dead, it stays out) and reads keep serving healthy peers.
        states = [
            r["state"]
            for health in remote.replica_health()
            for r in health["replicas"]
        ]
        assert states.count("open") == 1
        assert states.count("closed") == len(states) - 1
        assert_identical_queries(mem, remote, rng, n_queries=8)
        remote.close()

    def test_all_replicas_dead_raises_exhausted(self):
        servers = [
            ArchiveShardServer(0, 1, TILE, replica_id=r).start() for r in range(R)
        ]
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        rng = np.random.default_rng(17)
        mem, remote = replicated_pair(addrs, rng, n_trips=4)
        for server in servers:
            server.stop()
        with pytest.raises(ShardExhaustedError, match="shard 0") as excinfo:
            remote.points_near(Point(0.0, 0.0), 500.0)
        # The exhausted surface subclasses the v1 unavailability error and
        # accounts for every replica attempt.
        assert isinstance(excinfo.value, ShardUnavailableError)
        assert excinfo.value.op == "search_circles"
        assert excinfo.value.attempts == R
        remote.close()


class TestCircuitBreaker:
    def _single_shard_with_proxy(self, schedule=None, cooldown_s=0.0):
        direct = ArchiveShardServer(0, 1, TILE, replica_id=0).start()
        behind = ArchiveShardServer(0, 1, TILE, replica_id=1).start()
        proxy = ChaosProxy(behind.address, schedule=schedule).start()
        addrs = [
            f"127.0.0.1:{direct.address[1]}",
            f"127.0.0.1:{proxy.address[1]}",
        ]
        rng = np.random.default_rng(21)
        mem, remote = replicated_pair(
            addrs, rng, n_trips=6, breaker_cooldown_s=cooldown_s, timeout_s=1.0
        )
        return direct, behind, proxy, mem, remote, rng

    def test_recovered_replica_is_probed_and_restored(self):
        direct, behind, proxy, mem, remote, rng = self._single_shard_with_proxy()
        try:
            probe = Point(1_000.0, 1_000.0)
            remote.points_near(probe, 500.0)  # round-robin: direct replica
            proxy.kill()
            # Routed to the proxied replica → refused → breaker opens →
            # transparent failover; no error reaches the caller.
            assert mem.points_near(probe, 800.0) == remote.points_near(probe, 800.0)
            health = remote.replica_health()[0]
            assert [r["state"] for r in health["replicas"]] == ["closed", "open"]
            proxy.revive()  # same upstream, no data missed
            # Next read serves from the healthy replica, then half-open
            # probes the survivor: stats count matches → restored.
            assert mem.points_near(probe, 900.0) == remote.points_near(probe, 900.0)
            health = remote.replica_health()[0]
            assert [r["state"] for r in health["replicas"]] == ["closed", "closed"]
            assert remote.backend_stats()["restorations"] == 1
            assert_identical_queries(mem, remote, rng, n_queries=6)
        finally:
            remote.close()
            proxy.stop()
            direct.stop()
            behind.stop()

    def test_replica_restarted_empty_is_repaired_by_log_replay(self):
        """A probe must verify data currency, not just liveness — and since
        the healthy peer retains the full mutation log, a replica that
        restarts *empty* is repaired by replaying it (``log_since`` on the
        donor, ``apply_log`` on the laggard) before re-entering rotation."""
        direct, behind, proxy, mem, remote, rng = self._single_shard_with_proxy()
        empty = None
        try:
            probe = Point(1_000.0, 1_000.0)
            remote.points_near(probe, 500.0)
            proxy.kill()
            remote.points_near(probe, 800.0)  # demotes the proxied replica
            port = behind.address[1]
            behind.stop()
            empty = ArchiveShardServer(0, 1, TILE, replica_id=1, port=port).start()
            proxy.revive()
            # The replica is reachable again but lost its data: the
            # half-open probe sees num_points=0 ≠ expected, fetches the
            # missing suffix (lsn 0 → head) from the healthy peer and
            # replays it onto the laggard, then restores it.
            assert mem.points_near(probe, 900.0) == remote.points_near(probe, 900.0)
            health = remote.replica_health()[0]
            assert [r["state"] for r in health["replicas"]] == ["closed", "closed"]
            assert health["catchups"] == 1
            assert health["catchup_records"] >= 1
            assert remote.backend_stats()["restorations"] == 1
            assert remote.backend_stats()["catchups"] == 1
            assert empty.num_points == direct.num_points
            assert_identical_queries(mem, remote, rng, n_queries=6)
        finally:
            remote.close()
            proxy.stop()
            direct.stop()
            if empty is not None:
                empty.stop()

    def test_restarted_replica_stays_stale_when_log_compacted(self, tmp_path):
        """Catch-up needs the donor to still hold the laggard's missing
        records.  When compaction trimmed them into a snapshot, the probe
        must mark the replica stale — honest demotion over silent
        divergence — and keep serving from the healthy peer."""
        direct = ArchiveShardServer(
            0, 1, TILE, replica_id=0, wal_dir=tmp_path / "wal0", compact_every=4
        ).start()
        behind = ArchiveShardServer(0, 1, TILE, replica_id=1).start()
        proxy = ChaosProxy(behind.address).start()
        addrs = [
            f"127.0.0.1:{direct.address[1]}",
            f"127.0.0.1:{proxy.address[1]}",
        ]
        rng = np.random.default_rng(33)
        empty = None
        try:
            # 6 trips → 6 insert records → the WAL compacts at record 4,
            # so the donor's retained tail starts past an empty replica.
            mem, remote = replicated_pair(
                addrs, rng, n_trips=6, breaker_cooldown_s=0.0, timeout_s=1.0
            )
            probe = Point(1_000.0, 1_000.0)
            remote.points_near(probe, 500.0)
            proxy.kill()
            remote.points_near(probe, 800.0)
            port = behind.address[1]
            behind.stop()
            empty = ArchiveShardServer(0, 1, TILE, replica_id=1, port=port).start()
            proxy.revive()
            assert mem.points_near(probe, 900.0) == remote.points_near(probe, 900.0)
            health = remote.replica_health()[0]
            assert [r["state"] for r in health["replicas"]] == ["closed", "stale"]
            assert health["catchups"] == 0
            assert remote.backend_stats()["restorations"] == 0
            assert_identical_queries(mem, remote, rng, n_queries=6)
        finally:
            remote.close()
            proxy.stop()
            direct.stop()
            behind.stop()
            if empty is not None:
                empty.stop()

    def test_lagging_replica_caught_up_after_missed_writes(self):
        """The tentpole scenario: a replica misses live mutations while
        down, comes back, and the probe replays exactly the missed suffix
        — results stay bit-identical and the replica serves reads again."""
        direct, behind, proxy, mem, remote, rng = self._single_shard_with_proxy()
        try:
            probe = Point(1_000.0, 1_000.0)
            remote.points_near(probe, 500.0)
            proxy.kill()
            remote.points_near(probe, 800.0)  # breaker opens
            # Writes continue while the replica is down: it lags the
            # stream by these records.
            for trip in random_trips(rng, 3):
                assert mem.add(trip) == remote.add(trip)
            victim_id = mem.trajectory_ids()[0]
            assert mem.remove(victim_id) and remote.remove(victim_id)
            before = behind.num_points
            proxy.revive()
            assert mem.points_near(probe, 900.0) == remote.points_near(probe, 900.0)
            health = remote.replica_health()[0]
            assert [r["state"] for r in health["replicas"]] == ["closed", "closed"]
            assert health["catchups"] == 1
            # 3 inserts + 1 delete missed → exactly 4 records replayed.
            assert health["catchup_records"] == 4
            assert behind.num_points == direct.num_points != before
            assert_identical_queries(mem, remote, rng, n_queries=6)
        finally:
            remote.close()
            proxy.stop()
            direct.stop()
            behind.stop()

    def test_scripted_drop_opens_breaker_deterministically(self):
        # Ordinals through the proxy: 0 = hello, 1..6 = the six inserts,
        # 7 = the first read routed to the proxied replica.  Drop it.
        schedule = ChaosSchedule([Fault(7, DROP)])
        direct, behind, proxy, mem, remote, rng = self._single_shard_with_proxy(
            schedule=schedule, cooldown_s=60.0
        )
        try:
            probe = Point(1_000.0, 1_000.0)
            remote.points_near(probe, 500.0)  # rotation 0 → direct replica
            # rotation 1 → proxied replica → scripted drop → failover.
            assert mem.points_near(probe, 800.0) == remote.points_near(probe, 800.0)
            health = remote.replica_health()[0]
            assert [r["state"] for r in health["replicas"]] == ["closed", "open"]
            assert remote.failover_count == 1
        finally:
            remote.close()
            proxy.stop()
            direct.stop()
            behind.stop()


class TestTransportHardening:
    def test_truncated_reply_reconnects_transparently(self):
        """Satellite: a malformed/teared frame must never poison the
        persistent connection — the client drops the socket and the
        bounded retry resends on a fresh one."""
        server = ArchiveShardServer(0, 1, TILE).start()
        # Ordinals: 0 = hello, 1 = the single insert, 2 = first read —
        # whose reply is cut mid-frame.
        proxy = ChaosProxy(
            server.address, schedule=ChaosSchedule([Fault(2, TRUNCATE)])
        ).start()
        rng = np.random.default_rng(23)
        mem = InMemoryArchive()
        remote = RemoteShardedArchive(
            [f"127.0.0.1:{proxy.address[1]}"],
            retries=1,
            backoff_s=0.0,
            jitter_seed=0,
        )
        try:
            trip = random_trips(rng, 1)[0]
            assert mem.add(trip) == remote.add(trip)
            probe = trip.points[0].point
            # The truncated reply surfaces nowhere: the retry resends the
            # idempotent read over a fresh connection (ordinal 3).
            assert mem.points_near(probe, 700.0) == remote.points_near(probe, 700.0)
            assert proxy.requests_seen == 4
            assert mem.points_near(probe, 900.0) == remote.points_near(probe, 900.0)
        finally:
            remote.close()
            proxy.stop()
            server.stop()

    def test_malformed_reply_drops_socket(self):
        """First reply is undecodable garbage → typed protocol error AND a
        torn-down socket, so the next request starts from a clean stream."""
        connections = []

        def serve(listener):
            while True:
                try:
                    sock, __ = listener.accept()
                except OSError:
                    return
                connections.append(sock)
                try:
                    if _recv_frame(sock) is None:
                        continue
                    if len(connections) == 1:
                        payload = b"this is not json"
                        sock.sendall(len(payload).to_bytes(4, "big") + payload)
                    else:
                        _send_frame(sock, {"ok": True})
                except OSError:
                    pass

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        threading.Thread(target=serve, args=(listener,), daemon=True).start()
        conn = _ShardConnection(listener.getsockname(), 2.0, 0, 0.0, [])
        try:
            with pytest.raises(ShardProtocolError, match="malformed"):
                conn.request({"op": "ping", "v": _WIRE_V})
            assert conn._sock is None  # desynced stream was torn down
            assert conn.request({"op": "ping", "v": _WIRE_V}) == {"ok": True}
            assert len(connections) == 2  # second request reconnected
        finally:
            conn.close()
            listener.close()
            for sock in connections:
                sock.close()

    def test_backoff_uses_full_jitter(self, monkeypatch):
        """Satellite: retry waits are drawn from [0, backoff·2^(n−1)], so
        two seeded connections produce the seeded uniform stream — not the
        deterministic lockstep schedule."""
        sleeps = []
        monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead = probe.getsockname()
        probe.close()  # nothing listens here any more
        conn = _ShardConnection(
            dead, 0.2, retries=3, backoff_s=0.05, latencies=[],
            rng=random.Random(123),
        )
        with pytest.raises(ShardUnavailableError):
            conn.request({"op": "ping", "v": _WIRE_V})
        expected_rng = random.Random(123)
        expected = [
            expected_rng.uniform(0.0, 0.05 * (2 ** (attempt - 1)))
            for attempt in (1, 2, 3)
        ]
        assert sleeps == expected
        assert all(0.0 <= s <= 0.05 * 4 for s in sleeps)

    def test_request_latencies_bounded(self):
        server = ArchiveShardServer(0, 1, TILE).start()
        remote = RemoteShardedArchive(
            [f"127.0.0.1:{server.address[1]}"], latency_window=8, jitter_seed=0
        )
        try:
            for __ in range(12):
                remote.ping()
            assert len(remote.request_latencies) == 8  # capped, not leaking
            assert remote.request_latencies.maxlen == 8
            assert remote.backend_stats()["latencies_recorded"] == 8
        finally:
            remote.close()
            server.stop()

    def test_hello_is_version_agnostic(self):
        """A v1 client asking `hello` must get a clean protocol answer —
        not a mis-parse — so mixed fleets fail with a clear message."""
        server = ArchiveShardServer(0, 1, TILE).start()
        sock = socket.create_connection(server.address, timeout=2.0)
        try:
            for advertised in (1, None):
                request = {"op": "hello"}
                if advertised is not None:
                    request["v"] = advertised
                _send_frame(sock, request)
                reply = _recv_frame(sock)
                assert reply["ok"] is True
                assert reply["protocol"] == "repro-remote-v4"
                assert reply["replica_id"] == 0
        finally:
            sock.close()
            server.stop()


class TestChaosDeterminism:
    def test_seeded_schedule_is_reproducible(self):
        kwargs = dict(
            n_requests=200,
            p_drop=0.08,
            p_blackhole=0.04,
            p_truncate=0.04,
            p_delay=0.10,
        )
        a = ChaosSchedule.seeded(7, **kwargs)
        b = ChaosSchedule.seeded(7, **kwargs)
        assert a.faults() == b.faults()
        assert len(a.faults()) > 0
        assert {f.action for f in a.faults()} <= {DROP, BLACKHOLE, TRUNCATE, DELAY}
        assert a.fault_for(0).action == "pass"  # handshake protected
        c = ChaosSchedule.seeded(8, **kwargs)
        assert a.faults() != c.faults()

    def test_schedule_rejects_conflicts_and_bad_actions(self):
        with pytest.raises(ValueError, match="two faults"):
            ChaosSchedule([Fault(3, DROP), Fault(3, TRUNCATE)])
        with pytest.raises(ValueError, match="unknown chaos action"):
            Fault(1, "explode")
        with pytest.raises(ValueError, match="sum to at most 1"):
            ChaosSchedule.seeded(1, 10, p_drop=0.8, p_delay=0.4)

    def test_seeded_chaos_run_stays_identical(self):
        """End-to-end: a seeded drop/delay schedule against one replica of
        an R=2 set leaves every result bit-identical to the seed backend."""
        direct = ArchiveShardServer(0, 1, TILE, replica_id=0).start()
        behind = ArchiveShardServer(0, 1, TILE, replica_id=1).start()
        schedule = ChaosSchedule.seeded(
            42, n_requests=120, p_drop=0.15, p_delay=0.15, delay_s=0.002
        )
        proxy = ChaosProxy(behind.address, schedule=schedule).start()
        addrs = [
            f"127.0.0.1:{direct.address[1]}",
            f"127.0.0.1:{proxy.address[1]}",
        ]
        rng = np.random.default_rng(29)
        mem, remote = replicated_pair(
            addrs, rng, n_trips=6, breaker_cooldown_s=0.0, timeout_s=1.0, retries=1
        )
        try:
            assert_identical_queries(mem, remote, rng, n_queries=12)
        finally:
            remote.close()
            proxy.stop()
            direct.stop()
            behind.stop()
