"""Shard-side reference assembly (``repro-remote-v4``) identity tests.

The contract: :func:`repro.core.reference.assemble_references` over a
:class:`~repro.core.remote.RemoteTripSource` must return *float-identical*
references to the in-process :class:`~repro.core.reference.ArchiveTripSource`
over an :class:`InMemoryArchive` fed the same trips — same ref_ids, same
source_ids, same point coordinates to the last bit, same splice choices.
The scenarios deliberately cross tile-ownership boundaries: splice pairs
whose tail and head trajectories live on different shards, and single
trajectories straddling tiles so the client must stitch ``fetch_spans``
replies from several owners back into canonical index order.
"""

import math

import numpy as np
import pytest

from repro.core.archive import InMemoryArchive
from repro.core.reference import (
    ArchiveTripSource,
    ReferenceSearch,
    ReferenceSearchConfig,
    assemble_references,
)
from repro.core.remote import (
    ArchiveShardServer,
    RemoteShardedArchive,
    shard_of_tile,
)
from repro.core.system import HRIS, HRISConfig
from repro.geo.point import Point
from repro.roadnet.generators import manhattan_line
from repro.trajectory.model import GPSPoint, Trajectory
from tests.test_remote_archive import NUM_SHARDS, TILE, random_trips


@pytest.fixture
def cluster():
    servers = [ArchiveShardServer(i, NUM_SHARDS, TILE).start() for i in range(NUM_SHARDS)]
    addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
    yield servers, addrs
    for server in servers:
        server.stop()


@pytest.fixture
def line():
    return manhattan_line(n_nodes=10, spacing=200.0)


def traj(coords_times, tid=0):
    return Trajectory.build(
        tid, [GPSPoint(Point(x, y), t) for (x, y, t) in coords_times]
    )


def query_pair(x0=0.0, x1=1000.0, dt=600.0):
    return GPSPoint(Point(x0, 0.0), 0.0), GPSPoint(Point(x1, 0.0), dt)


def owners_of(trip):
    """The set of shards owning at least one observation of ``trip``."""
    return {
        shard_of_tile(
            (math.floor(o.point.x / TILE), math.floor(o.point.y / TILE)), NUM_SHARDS
        )
        for o in trip
    }


def matched_pair(addrs, trips):
    """An InMemoryArchive and a remote archive fed identical trips."""
    mem = InMemoryArchive()
    remote = RemoteShardedArchive(addrs, timeout_s=5.0)
    for trip in trips:
        assert mem.add(trip) == remote.add(trip)
    return mem, remote


def assert_identical_references(local_refs, shard_refs):
    assert len(local_refs) == len(shard_refs)
    for a, b in zip(local_refs, shard_refs):
        assert a.ref_id == b.ref_id
        assert a.source_ids == b.source_ids
        assert a.spliced == b.spliced
        assert len(a.points) == len(b.points)
        for p, q in zip(a.points, b.points):
            assert p.x == q.x and p.y == q.y  # exact, not approx


class TestCrossShardIdentity:
    def test_single_trajectory_straddling_tiles(self, cluster, line):
        """A simple reference whose observations live on several shards:
        the client must stitch per-owner spans back into index order."""
        __, addrs = cluster
        # Eastbound corridor trip spanning tiles (0,0), (1,0), (2,0) —
        # with 3 shards those tiles hash to owners 0, 2, 1.
        trip = traj([(i * 100.0, 10.0, i * 20.0) for i in range(13)])
        assert len(owners_of(trip)) >= 2
        mem, remote = matched_pair(addrs, [trip])
        cfg = ReferenceSearchConfig(phi=300.0)
        qi, qi1 = query_pair()
        local = assemble_references(ArchiveTripSource(mem), line, qi, qi1, cfg)
        shard = assemble_references(remote.trip_source(), line, qi, qi1, cfg)
        assert len(local) == 1 and not local[0].spliced
        assert_identical_references(local, shard)
        remote.close()

    def test_splice_tail_and_head_on_different_shards(self, cluster, line):
        """Definition-7 pair whose halves live on disjoint shard sets."""
        __, addrs = cluster
        # Tail on y=+10 (tile row 0 -> shards {0, 2}), head on y=-10
        # (tile row -1 -> shards {1, 2}); neither reaches both endpoints.
        t_a = traj([(i * 100.0, 10.0, i * 20.0) for i in range(7)], tid=0)
        t_b = traj([(400.0 + i * 100.0, -10.0, i * 20.0) for i in range(7)], tid=1)
        assert owners_of(t_a) != owners_of(t_b)
        mem, remote = matched_pair(addrs, [t_a, t_b])
        cfg = ReferenceSearchConfig(phi=150.0, splice_epsilon=150.0)
        qi, qi1 = query_pair()
        local = assemble_references(ArchiveTripSource(mem), line, qi, qi1, cfg)
        shard = assemble_references(remote.trip_source(), line, qi, qi1, cfg)
        spliced = [r for r in shard if r.spliced]
        assert len(spliced) == 1
        assert set(spliced[0].source_ids) == {0, 1}
        assert_identical_references(local, shard)
        remote.close()

    def test_randomized_queries_match_memory(self, cluster, line):
        """Seeded sweep: every query pair yields bit-identical references
        from the shard fleet and the in-memory ground truth."""
        __, addrs = cluster
        rng = np.random.default_rng(7)
        mem, remote = matched_pair(addrs, random_trips(rng, n_trips=16))
        cfg = ReferenceSearchConfig(phi=500.0, splice_epsilon=300.0)
        local_src = ArchiveTripSource(mem)
        shard_src = remote.trip_source()
        for __q in range(8):
            x0, y0 = rng.uniform(0.0, 3_500.0, size=2)
            heading = rng.uniform(0.0, 2.0 * math.pi)
            gap = rng.uniform(400.0, 1_500.0)
            qi = GPSPoint(Point(x0, y0), 0.0)
            qi1 = GPSPoint(
                Point(x0 + gap * math.cos(heading), y0 + gap * math.sin(heading)),
                600.0,
            )
            local = assemble_references(local_src, line, qi, qi1, cfg)
            shard = assemble_references(shard_src, line, qi, qi1, cfg)
            assert_identical_references(local, shard)
        remote.close()

    def test_shard_mode_never_reads_client_trip_store(self, cluster, line):
        """With ``reference_mode="shard"`` the client-side trip store is
        dead weight: clearing it must not change a single reference."""
        __, addrs = cluster
        t_a = traj([(i * 100.0, 10.0, i * 20.0) for i in range(7)], tid=0)
        t_b = traj([(400.0 + i * 100.0, -10.0, i * 20.0) for i in range(7)], tid=1)
        mem, remote = matched_pair(addrs, [t_a, t_b])
        remote._trajectories.clear()  # shard mode must not notice
        cfg = ReferenceSearchConfig(phi=150.0, splice_epsilon=150.0)
        qi, qi1 = query_pair()
        local = assemble_references(ArchiveTripSource(mem), line, qi, qi1, cfg)
        shard = assemble_references(remote.trip_source(), line, qi, qi1, cfg)
        assert local
        assert_identical_references(local, shard)
        remote.close()

    def test_search_through_reference_search_facade(self, cluster, line):
        """ReferenceSearch(source=...) runs the same kernel unchanged."""
        __, addrs = cluster
        trip = traj([(i * 100.0, 10.0, i * 20.0) for i in range(13)])
        mem, remote = matched_pair(addrs, [trip])
        cfg = ReferenceSearchConfig(phi=300.0)
        qi, qi1 = query_pair()
        local = ReferenceSearch(mem, line, cfg).search(qi, qi1)
        shard = ReferenceSearch(
            remote, line, cfg, source=remote.trip_source()
        ).search(qi, qi1)
        assert_identical_references(local, shard)
        remote.close()


class TestDegradedFleet:
    R = 2

    @pytest.fixture
    def replicated_cluster(self):
        servers = []
        for index in range(NUM_SHARDS):
            for rid in range(self.R):
                servers.append(
                    ArchiveShardServer(index, NUM_SHARDS, TILE, replica_id=rid).start()
                )
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        yield servers, addrs
        for server in servers:
            server.stop()

    def test_replica_killed_mid_run_stays_identical(self, replicated_cluster, line):
        """One replica process death between queries must be invisible:
        failover reroutes the v3 reference ops and the floats match."""
        servers, addrs = replicated_cluster
        rng = np.random.default_rng(11)
        mem = InMemoryArchive()
        remote = RemoteShardedArchive(
            addrs,
            replication=self.R,
            retries=0,
            backoff_s=0.0,
            breaker_cooldown_s=60.0,
            jitter_seed=0,
        )
        for trip in random_trips(rng, n_trips=14):
            assert mem.add(trip) == remote.add(trip)
        cfg = ReferenceSearchConfig(phi=500.0, splice_epsilon=300.0)
        local_src = ArchiveTripSource(mem)
        shard_src = remote.trip_source()

        def compare(n_queries):
            for __q in range(n_queries):
                x0, y0 = rng.uniform(0.0, 3_500.0, size=2)
                qi = GPSPoint(Point(x0, y0), 0.0)
                qi1 = GPSPoint(Point(x0 + 800.0, y0 + 200.0), 600.0)
                assert_identical_references(
                    assemble_references(local_src, line, qi, qi1, cfg),
                    assemble_references(shard_src, line, qi, qi1, cfg),
                )

        compare(3)
        servers[0].stop()  # mid-run process death
        compare(6)
        remote.close()


class TestReferenceModePlumbing:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="reference_mode"):
            HRISConfig(reference_mode="psychic")

    def test_shard_mode_needs_shard_capable_backend(self, line):
        with pytest.raises(ValueError, match="trip_source"):
            HRIS(line, InMemoryArchive(), HRISConfig(reference_mode="shard"))

    def test_hris_shard_mode_routes_match_local(self, cluster, line):
        """End-to-end: HRIS(reference_mode="shard") infers the same routes
        and scores as the local-mode seed on the same fleet."""
        __, addrs = cluster
        trips = [
            traj([(i * 100.0, 10.0 + k * 5.0, i * 20.0) for i in range(13)], tid=k)
            for k in range(3)
        ]
        mem, remote = matched_pair(addrs, trips)
        query = Trajectory.build(
            99,
            [
                GPSPoint(Point(0.0, 0.0), 0.0),
                GPSPoint(Point(1000.0, 0.0), 600.0),
            ],
        )
        local_routes = HRIS(line, mem, HRISConfig()).infer_routes(query)
        shard_routes = HRIS(
            line, remote, HRISConfig(reference_mode="shard")
        ).infer_routes(query)
        assert local_routes and len(local_routes) == len(shard_routes)
        for a, b in zip(local_routes, shard_routes):
            assert a.route.segment_ids == b.route.segment_ids
            assert a.log_score == b.log_score  # exact
        remote.close()
