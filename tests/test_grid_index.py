"""Unit and property tests for the uniform grid index."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.spatial.grid import GridIndex


def _random_points(n, seed=0, extent=1000.0):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, extent, size=(n, 2))]


class TestBasics:
    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(0.0)

    def test_len_and_extend(self):
        g: GridIndex[int] = GridIndex(100.0)
        g.extend((p, i) for i, p in enumerate(_random_points(30)))
        assert len(g) == 30
        assert g.cell_size == 100.0

    def test_negative_radius_raises(self):
        g: GridIndex[int] = GridIndex(10.0)
        with pytest.raises(ValueError):
            g.search_radius(Point(0, 0), -1.0)

    def test_negative_coordinates_supported(self):
        g: GridIndex[int] = GridIndex(50.0)
        g.insert(Point(-120, -10), 1)
        assert g.search_radius(Point(-120, -10), 1.0) == [1]


class TestQueries:
    def test_bbox_matches_brute(self):
        pts = _random_points(250, seed=1)
        g: GridIndex[int] = GridIndex(80.0)
        g.extend((p, i) for i, p in enumerate(pts))
        box = BBox(100, 100, 420, 700)
        expected = {i for i, p in enumerate(pts) if box.contains_point(p)}
        assert set(g.search_bbox(box)) == expected

    def test_radius_matches_brute(self):
        pts = _random_points(250, seed=2)
        g: GridIndex[int] = GridIndex(60.0)
        g.extend((p, i) for i, p in enumerate(pts))
        c = Point(400, 600)
        expected = {i for i, p in enumerate(pts) if p.distance_to(c) <= 130}
        assert set(g.search_radius(c, 130)) == expected

    def test_nearest_empty(self):
        g: GridIndex[int] = GridIndex(10.0)
        assert g.nearest(Point(0, 0), 3) == []

    def test_nearest_matches_brute(self):
        pts = _random_points(150, seed=3)
        g: GridIndex[int] = GridIndex(90.0)
        g.extend((p, i) for i, p in enumerate(pts))
        q = Point(512, 219)
        got = [i for __, i in g.nearest(q, 7)]
        expected = sorted(range(len(pts)), key=lambda i: pts[i].distance_to(q))[:7]
        assert got == expected

    def test_nearest_distant_query(self):
        # Query far outside the data extent must still find the points.
        g: GridIndex[int] = GridIndex(50.0)
        g.insert(Point(0, 0), 0)
        g.insert(Point(10, 0), 1)
        got = [i for __, i in g.nearest(Point(5000, 5000), 2)]
        assert set(got) == {0, 1}


class TestDensity:
    def test_zero_area_region(self):
        g: GridIndex[int] = GridIndex(10.0)
        assert g.density_per_km2(BBox(0, 0, 0, 0)) == 0.0

    def test_density_computation(self):
        g: GridIndex[int] = GridIndex(100.0)
        # 10 points inside a 1 km x 1 km box.
        for i in range(10):
            g.insert(Point(i * 90.0 + 10, 500.0), i)
        box = BBox(0, 0, 1000, 1000)
        assert math.isclose(g.density_per_km2(box), 10.0)


class TestDifferentialProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-500, 500), st.floats(-500, 500)),
            min_size=0,
            max_size=100,
        ),
        st.tuples(st.floats(-500, 500), st.floats(-500, 500)),
        st.floats(1, 300),
        st.sampled_from([13.0, 57.0, 250.0]),
    )
    def test_radius_differential(self, raw, center, radius, cell):
        pts = [Point(x, y) for x, y in raw]
        g: GridIndex[int] = GridIndex(cell)
        g.extend((p, i) for i, p in enumerate(pts))
        c = Point(*center)
        expected = {i for i, p in enumerate(pts) if p.distance_to(c) <= radius}
        assert set(g.search_radius(c, radius)) == expected

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-500, 500), st.floats(-500, 500)),
            min_size=1,
            max_size=60,
        ),
        st.tuples(st.floats(-500, 500), st.floats(-500, 500)),
        st.integers(1, 8),
        st.sampled_from([20.0, 110.0]),
    )
    def test_nearest_differential(self, raw, q, k, cell):
        pts = [Point(x, y) for x, y in raw]
        g: GridIndex[int] = GridIndex(cell)
        g.extend((p, i) for i, p in enumerate(pts))
        query = Point(*q)
        got = [d for d, __ in g.nearest(query, k)]
        expected = sorted(p.distance_to(query) for p in pts)[:k]
        assert len(got) == len(expected)
        for a, b in zip(got, expected):
            assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
