"""Focused tests of algorithm internals the figure benchmarks only graze.

These pin down behaviours of the paper's algorithms at the unit level:
the transitive-reduction criterion of TGI, the α budget of NNI, Viterbi
restart paths in the matchers, and K-GRI's tie handling.
"""

import math

import pytest

from repro.core.nni import NearestNeighborInference, NNIConfig, NNIStats
from repro.core.reference import Reference
from repro.core.scoring import LocalRoute
from repro.core.traverse_graph import TGIConfig, TraverseGraphInference, _Link
from repro.geo.point import Point
from repro.roadnet.generators import manhattan_line
from repro.roadnet.route import Route


def make_ref(points, ref_id=0):
    return Reference(
        ref_id=ref_id, source_ids=(ref_id,), points=tuple(points), spliced=False
    )


class TestGraphReduction:
    """The hop-metric transitive reduction of Algorithm 1 line 10."""

    @staticmethod
    def links_from(spec):
        """Build a links dict from {(u, v): hops}."""
        links = {}
        for (u, v), hops in spec.items():
            links.setdefault(u, {})[v] = _Link(weight=float(hops), hops=hops, via=())
        return links

    def test_removes_redundant_shortcut(self):
        # 1->2 (1 hop), 2->3 (1 hop), 1->3 (2 hops): the direct 1->3 link is
        # exactly the two-step path and must go.
        links = self.links_from({(1, 2): 1, (2, 3): 1, (1, 3): 2})
        removed = TraverseGraphInference._reduce(links)
        assert removed == 1
        assert 3 not in links[1]
        assert 2 in links[1]

    def test_keeps_genuinely_shorter_direct_link(self):
        # The direct link is FEWER hops than the two-step path: keep it.
        links = self.links_from({(1, 2): 2, (2, 3): 2, (1, 3): 3})
        removed = TraverseGraphInference._reduce(links)
        assert removed == 0
        assert 3 in links[1]

    def test_chain_collapses_to_successive_links(self):
        # Complete "forward" graph over a 4-chain: only the immediate links
        # survive.
        spec = {}
        for i in range(1, 5):
            for j in range(i + 1, 5):
                spec[(i, j)] = j - i
        links = self.links_from(spec)
        TraverseGraphInference._reduce(links)
        for i in range(1, 4):
            assert set(links[i]) == {i + 1}

    def test_reduction_never_disconnects_reachability(self):
        spec = {(1, 2): 1, (2, 3): 1, (1, 3): 2, (3, 4): 1, (2, 4): 2, (1, 4): 3}
        links = self.links_from(spec)
        TraverseGraphInference._reduce(links)

        # 4 must still be reachable from 1.
        frontier, seen = [1], set()
        while frontier:
            n = frontier.pop()
            seen.add(n)
            frontier.extend(v for v in links.get(n, {}) if v not in seen)
        assert 4 in seen


class TestNNIAlphaBudget:
    """Line 20 of Algorithm 2: α shrinks by each backward move."""

    @pytest.fixture()
    def line(self):
        return manhattan_line(n_nodes=10, spacing=200.0)

    def test_alpha_zero_blocks_backward_points(self, line):
        nni = NearestNeighborInference(line, NNIConfig(alpha=0.0, k=4))
        # Pool: a point behind the start (backward) and one ahead.
        pool = [Point(-300.0, 0.0), Point(500.0, 0.0)]
        succ = nni._constrained_knn(Point(0.0, 0.0), Point(1000.0, 0.0), pool, 0.0)
        # Index 0 (backward: d_dest 1300 > 1000) must be filtered.
        assert 0 not in succ
        assert 1 in succ

    def test_alpha_admits_small_backtrack(self, line):
        # β must be loose enough that only the α budget is under test.
        nni = NearestNeighborInference(line, NNIConfig(alpha=500.0, beta=2.5, k=4))
        pool = [Point(-300.0, 0.0), Point(500.0, 0.0)]
        succ = nni._constrained_knn(
            Point(0.0, 0.0), Point(1000.0, 0.0), pool, 500.0
        )
        assert 0 in succ  # 300 m of drift is inside the 500 m budget

    def test_beta_blocks_detours(self, line):
        nni = NearestNeighborInference(line, NNIConfig(beta=1.2, k=4))
        # A lateral point closer than the destination (so the take-the-
        # destination shortcut stays out of play) whose detour ratio
        # (640 + 781) / 1000 ≈ 1.42 exceeds β = 1.2.
        pool = [Point(400.0, 500.0), Point(500.0, 0.0)]
        succ = nni._constrained_knn(
            Point(0.0, 0.0), Point(1000.0, 0.0), pool, 500.0
        )
        assert 1 in succ
        assert 0 not in succ

    def test_destination_taken_exclusively(self, line):
        nni = NearestNeighborInference(line, NNIConfig(k=4))
        # Current point is 60 m from the destination; the only pool points
        # are farther away than the destination itself.
        from repro.core.nni import _DEST

        pool = [Point(800.0, 0.0), Point(700.0, 0.0)]
        succ = nni._constrained_knn(
            Point(940.0, 0.0), Point(1000.0, 0.0), pool, 500.0
        )
        assert succ == [_DEST]


class TestKGRITies:
    def test_equal_scores_prefer_shorter_route(self):
        from repro.core.kgri import k_gri

        line = manhattan_line(n_nodes=10, spacing=100.0)
        # Two local routes with identical popularity and support but
        # different physical length.
        long_route = LocalRoute(
            route=Route.of([0, 2, 4, 6]), popularity=5.0, support=frozenset({1})
        )
        short_route = LocalRoute(
            route=Route.of([0, 2]), popularity=5.0, support=frozenset({1})
        )
        got = k_gri(line, [[long_route, short_route]], 1)
        assert got[0].route.segment_ids == (0, 2)


class TestViterbiRestart:
    def test_st_matching_survives_unreachable_layer(self):
        """A candidate layer unreachable from its predecessor must restart
        the DP rather than zero out the whole query."""
        from repro.geo.point import Point as P
        from repro.mapmatching import STMatcher
        from repro.roadnet.generators import manhattan_line
        from repro.trajectory.model import GPSPoint, Trajectory

        line = manhattan_line(n_nodes=10, spacing=200.0)
        # Second point is teleported far off the corridor: the route
        # distance bound makes the transition impossible.
        traj = Trajectory.build(
            1,
            [
                GPSPoint(P(100.0, 0.0), 0.0),
                GPSPoint(P(100.0, 200_000.0), 30.0),
                GPSPoint(P(900.0, 0.0), 60.0),
            ],
        )
        result = STMatcher(line).match(traj)
        assert result.route  # still produces something usable
        assert result.route.is_connected(line)
