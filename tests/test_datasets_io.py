"""Round-trip tests for scenario persistence."""

import pytest

from repro.datasets.io import load_scenario, save_scenario
from repro.datasets.synthetic import ScenarioConfig, build_scenario
from repro.roadnet.generators import GridCityConfig


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(
        ScenarioConfig(
            grid=GridCityConfig(nx=8, ny=8),
            n_od_pairs=3,
            min_od_distance=2000.0,
            n_archive_trips=30,
            n_background_trips=4,
            n_queries=3,
            seed=19,
        )
    )


class TestScenarioRoundTrip:
    def test_round_trip(self, scenario, tmp_path):
        save_scenario(scenario, tmp_path / "world")
        loaded = load_scenario(tmp_path / "world")
        assert loaded.network.num_segments == scenario.network.num_segments
        assert len(loaded.archive) == len(scenario.archive)
        assert loaded.archive.num_points == scenario.archive.num_points
        assert len(loaded.queries) == len(scenario.queries)
        for a, b in zip(scenario.queries, loaded.queries):
            assert a.truth.segment_ids == b.truth.segment_ids
            assert a.query.points == b.query.points

    def test_loaded_scenario_is_inferable(self, scenario, tmp_path):
        from repro.core.system import HRIS, HRISConfig
        from repro.trajectory.resample import downsample

        save_scenario(scenario, tmp_path / "world")
        loaded = load_scenario(tmp_path / "world")
        hris = HRIS(loaded.network, loaded.archive, HRISConfig())
        q = downsample(loaded.queries[0].query, 240.0)
        assert hris.infer_routes(q, 1)

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_scenario(tmp_path / "nowhere")

    def test_bad_queries_format(self, scenario, tmp_path):
        import json

        save_scenario(scenario, tmp_path / "world")
        with open(tmp_path / "world" / "queries.json", "w") as f:
            json.dump({"format": "bogus", "cases": []}, f)
        with pytest.raises(ValueError, match="queries format"):
            load_scenario(tmp_path / "world")
