"""Unit and property tests for repro.roadnet.shortest_path."""

import math

import numpy as np
import pytest

from repro.roadnet.generators import GridCityConfig, grid_city, manhattan_line
from repro.roadnet.shortest_path import (
    DistanceOracle,
    astar,
    dijkstra,
    dijkstra_all,
    node_path_to_route,
    shortest_route_between_nodes,
    shortest_route_between_segments,
)


@pytest.fixture(scope="module")
def city():
    return grid_city(GridCityConfig(nx=8, ny=8, drop_fraction=0.1), np.random.default_rng(3))


@pytest.fixture(scope="module")
def line():
    return manhattan_line(n_nodes=6, spacing=100.0)


class TestDijkstra:
    def test_source_equals_target(self, line):
        assert dijkstra(line, 2, 2) == (0.0, [2])

    def test_simple_chain(self, line):
        d, path = dijkstra(line, 0, 5)
        assert d == 500.0
        assert path == [0, 1, 2, 3, 4, 5]

    def test_unreachable(self):
        net = manhattan_line(3)
        # Add an isolated node.
        from repro.geo.point import Point
        from repro.roadnet.network import RoadNode

        net.add_node(RoadNode(99, Point(0, 999)))
        d, path = dijkstra(net, 0, 99)
        assert math.isinf(d)
        assert path == []

    def test_max_distance_cutoff(self, line):
        d, path = dijkstra(line, 0, 5, max_distance=200.0)
        assert math.isinf(d)

    def test_dijkstra_all_contains_source(self, line):
        table = dijkstra_all(line, 0)
        assert table[0] == 0.0
        assert table[5] == 500.0

    def test_dijkstra_all_bounded(self, line):
        table = dijkstra_all(line, 0, max_distance=250.0)
        assert 5 not in table
        assert table[2] == 200.0


class TestAStar:
    def test_matches_dijkstra_distances(self, city):
        rng = np.random.default_rng(9)
        nodes = [n.node_id for n in city.nodes()]
        for __ in range(25):
            a, b = rng.choice(nodes, size=2, replace=False)
            d1, __p = dijkstra(city, int(a), int(b))
            d2, __p = astar(city, int(a), int(b))
            assert math.isclose(d1, d2, rel_tol=1e-9, abs_tol=1e-6)

    def test_path_length_consistent(self, city):
        d, path = astar(city, 0, 63)
        total = 0.0
        for u, v in zip(path, path[1:]):
            seg_len = min(
                city.segment(s).length
                for s in city.out_segments(u)
                if city.segment(s).end == v
            )
            total += seg_len
        assert math.isclose(total, d, rel_tol=1e-9)


class TestRouteConversion:
    def test_node_path_to_route(self, line):
        r = node_path_to_route(line, [0, 1, 2])
        assert r.is_connected(line)
        assert r.start_node(line) == 0
        assert r.end_node(line) == 2

    def test_non_adjacent_raises(self, line):
        with pytest.raises(ValueError):
            node_path_to_route(line, [0, 2])

    def test_shortest_route_between_nodes(self, city):
        d, route = shortest_route_between_nodes(city, 0, 63)
        assert route.is_connected(city)
        assert math.isclose(route.length(city), d, rel_tol=1e-9)

    def test_shortest_route_between_segments_same(self, line):
        gap, route = shortest_route_between_segments(line, 0, 0)
        assert gap == 0.0
        assert route.segment_ids == (0,)

    def test_shortest_route_between_segments_adjacent(self, line):
        gap, route = shortest_route_between_segments(line, 0, 2)
        assert gap == 0.0
        assert route.segment_ids == (0, 2)

    def test_shortest_route_between_segments_far(self, line):
        gap, route = shortest_route_between_segments(line, 0, 6)
        assert gap == 200.0
        assert route.first == 0
        assert route.last == 6
        assert route.is_connected(line)

    def test_route_reverse_needs_detour(self, line):
        # Going from eastbound segment 0 to westbound segment 1 requires
        # driving to the end of 0 and coming back.
        gap, route = shortest_route_between_segments(line, 0, 1)
        assert route.is_connected(line)
        assert route.first == 0
        assert route.last == 1


class TestDistanceOracle:
    def test_cached_equals_direct(self, city):
        oracle = DistanceOracle(city)
        rng = np.random.default_rng(4)
        nodes = [n.node_id for n in city.nodes()]
        for __ in range(15):
            a, b = rng.choice(nodes, size=2, replace=False)
            expected, __p = dijkstra(city, int(a), int(b))
            assert math.isclose(oracle.distance(int(a), int(b)), expected, rel_tol=1e-9)
            # Second call hits the cache and must agree.
            assert math.isclose(oracle.distance(int(a), int(b)), expected, rel_tol=1e-9)

    def test_bounded_oracle_returns_inf(self, line):
        oracle = DistanceOracle(line, max_distance=150.0)
        assert math.isinf(oracle.distance(0, 5))

    def test_projection_distance_same_segment_forward(self, line):
        oracle = DistanceOracle(line)
        d = oracle.route_distance_between_projections(0, 10.0, 0, 60.0)
        assert d == 50.0

    def test_projection_distance_same_segment_backward(self, line):
        # Going backwards on a directed segment requires a detour (here via
        # the reverse twin): tail + via + offset.
        oracle = DistanceOracle(line)
        d = oracle.route_distance_between_projections(0, 60.0, 0, 10.0)
        assert d > 0.0
        assert not math.isinf(d)

    def test_projection_distance_between_segments(self, line):
        oracle = DistanceOracle(line)
        # Segment 0 is node0->node1, segment 2 is node1->node2.
        d = oracle.route_distance_between_projections(0, 50.0, 2, 25.0)
        assert d == 75.0

    def test_clear(self, city):
        oracle = DistanceOracle(city)
        oracle.distance(0, 1)
        oracle.clear()
        assert oracle.distance(0, 1) >= 0.0
